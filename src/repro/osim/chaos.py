"""Crash-point sweep harness: FoundationDB-style simulation testing.

The pieces:

* :func:`chaos_workload` — a deterministic multi-user file-server
  workload that crosses **every** fault-injection site the kernel and
  filesystem define (logins, persistent capability grants, labeled
  creates, multi-block data writes, a batched ``sys_submit``, a
  journaled revocation relabel, unlinks, and a scheduler-driven labeled
  pipe segment);
* :func:`enumerate_crash_points` — run the workload once under a
  *recording* :class:`~repro.osim.faults.FaultPlan` to list every
  ``(site, occurrence)`` crossing; determinism makes the list a complete
  address space of crash points;
* :func:`run_crash_sweep` — re-run the workload once per point,
  crashing there, then recover and audit
  (:func:`~repro.osim.recovery.check_recovery_invariants`); and
* :func:`run_random_sweep` — the nightly-CI variant: ``count`` plans
  derived purely from a seed, mixing all five fault kinds, so a failure
  is replayed locally from the printed seed alone
  (``lamc fsck --seed N``).

Everything here is also the engine behind ``lamc fsck`` and
``tests/test_crash_consistency.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core import Label, LabelPair, LabelType
from .faults import FaultKind, FaultPlan, KernelCrash
from .kernel import Kernel, Sqe
from .persistence import grant_persistent, login, revoke_by_relabel
from .recovery import RecoveryReport, check_recovery_invariants
from .sched import Scheduler, read_blocking, syscall, yield_
from .task import SyscallError

#: Site families the workload must cross for the sweep to count as
#: covering "every injected site".  ``syscall:*`` expands to one concrete
#: site per opcode; these are the non-syscall families.
REQUIRED_SITES = (
    "submit.boundary",
    "fs.block_write",
    "xattr.write",
    "caps.block_write",
    "journal.append",
    "create.link",
)


def chaos_workload(kernel: Kernel) -> None:
    """One deterministic pass of labeled file-server activity.

    Interrupted anywhere — a :class:`KernelCrash` or an injected
    :class:`SyscallError` — the prefix it completed is exactly what the
    recovery invariants are audited against.  No randomness: byte-for-byte
    identical crossings on every run, which is what lets a recorded
    ``(site, occurrence)`` pair address the same machine state later.
    """
    alice = login(kernel, "alice")
    bob = login(kernel, "bob")
    a_tag, a_caps = kernel.sys_alloc_tag(alice, "alice-data")
    grant_persistent(kernel, "alice", a_caps)
    b_tag, b_caps = kernel.sys_alloc_tag(bob, "bob-data")
    grant_persistent(kernel, "bob", b_caps)

    secret = LabelPair(Label.of(a_tag), Label.EMPTY)
    fd = kernel.sys_create_file_labeled(alice, "/tmp/ledger", secret)
    kernel.sys_write(alice, fd, b"credit:100;" * 20)  # multi-block, write-up
    kernel.sys_mkdir_labeled(alice, "/tmp/vault", secret)

    # Raise alice's secrecy so she can read her own data and walk into the
    # vault (no read-down below this point).
    kernel.sys_set_task_label(alice, LabelType.SECRECY, Label.of(a_tag))
    vfd = kernel.sys_create_file_labeled(alice, "/tmp/vault/keys", secret)
    kernel.sys_write(alice, vfd, b"k" * 130)
    kernel.sys_close(alice, vfd)

    # Batched submission: a seek, reads, an append, a create-then-unlink,
    # all in one crossing of the submit machinery.
    kernel.sys_submit(
        alice,
        [
            Sqe("lseek", fd, 0),
            Sqe("read", fd, 64),
            Sqe("write", fd, b"audit:ok;" * 10),
            Sqe("creat", "/tmp/vault/scratch"),
            Sqe("read", fd, -1),
        ],
    )
    kernel.sys_unlink(alice, "/tmp/vault/scratch")

    # Revocation: journaled relabel plus a persistent-store overwrite
    # (exercises the capwrite pre-image path, old is not None).
    new_tag = revoke_by_relabel(kernel, alice, "/tmp/ledger", a_tag)
    grant_persistent(kernel, "alice", alice.capabilities)

    # Bob's parallel world, then a labeled pipe driven by the scheduler.
    bfd = kernel.sys_create_file_labeled(
        bob, "/tmp/bob-notes", LabelPair(Label.of(b_tag), Label.EMPTY)
    )
    kernel.sys_write(bob, bfd, b"note;" * 30)

    sched = Scheduler(kernel)
    pipe_label = LabelPair(Label.of(new_tag), Label.EMPTY)

    def producer(task):
        rfd, wfd = yield syscall("pipe", pipe_label)
        holder.extend((rfd, wfd))
        for i in range(3):
            yield syscall("write", wfd, b"msg%d" % i)
        yield syscall("close", wfd)

    def consumer(task):
        while len(holder) < 2:
            yield yield_()
        rfd = kernel.share_fd(ptask, holder[0], task)
        drained = b""
        while True:
            data = yield read_blocking(rfd)
            if not data:
                break
            drained += data

    holder: list[int] = []
    ptask = sched.spawn(
        producer, name="producer", labels=pipe_label, caps=alice.capabilities
    )
    sched.spawn(
        consumer, name="consumer", labels=pipe_label, caps=alice.capabilities
    )
    sched.run()

    kernel.sys_unlink(alice, "/tmp/vault/keys")
    kernel.sys_close(alice, fd)


def enumerate_crash_points(
    workload: Callable[[Kernel], None] = chaos_workload,
) -> list[tuple[str, int]]:
    """Run ``workload`` once under a recording plan; return every
    ``(site, occurrence)`` crossing, in execution order."""
    kernel = Kernel()
    plan = kernel.install_faults(FaultPlan(record=True))
    workload(kernel)
    return list(plan.trace)


def sample_crash_points(
    points: Sequence[tuple[str, int]], target: int = 60
) -> list[tuple[str, int]]:
    """Pick a sweep schedule: every site represented, high-frequency sites
    stride-sampled (always keeping each site's first and last crossing),
    at least ``min(target, len(points))`` points total."""
    by_site: dict[str, list[tuple[str, int]]] = {}
    for point in points:
        by_site.setdefault(point[0], []).append(point)
    floor = min(target, len(points))
    per_site = max(1, target // max(1, len(by_site)))
    while True:
        sample: list[tuple[str, int]] = []
        for site in sorted(by_site):
            crossings = by_site[site]
            if len(crossings) <= per_site:
                sample.extend(crossings)
                continue
            stride = len(crossings) / per_site
            picked = {int(i * stride) for i in range(per_site)}
            picked |= {0, len(crossings) - 1}
            sample.extend(crossings[i] for i in sorted(picked))
        if len(sample) >= floor:
            return sample
        per_site += 1


@dataclass
class CrashPointResult:
    """Outcome of one faulted run + recovery + audit."""

    site: str
    nth: int
    kind: FaultKind
    #: "crash" (KernelCrash reached the harness), "error" (an injected
    #: SyscallError aborted the workload), or "completed" (the fault was
    #: survivable — e.g. a submit-boundary EIO — or never fired).
    outcome: str
    fired: bool
    report: Optional[RecoveryReport]
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class SweepResult:
    results: list[CrashPointResult]

    @property
    def violations(self) -> list[tuple[str, int, str]]:
        return [
            (r.site, r.nth, v) for r in self.results for v in r.violations
        ]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def sites(self) -> set[str]:
        return {r.site for r in self.results}

    def summary(self) -> str:
        outcomes: dict[str, int] = {}
        for r in self.results:
            outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
        shape = ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"{len(self.results)} fault points over {len(self.sites)} sites "
            f"({shape}): {verdict}"
        )


def _run_one(
    plan: FaultPlan, workload: Callable[[Kernel], None]
) -> CrashPointResult:
    rule = plan.rules[0]
    kernel = Kernel()
    kernel.install_faults(plan)
    outcome = "completed"
    try:
        workload(kernel)
    except KernelCrash:
        outcome = "crash"
    except SyscallError:
        outcome = "error"
    fired = bool(plan.fired)
    kernel.crash()
    report = kernel.remount()
    violations = check_recovery_invariants(kernel, strict=False)
    return CrashPointResult(
        site=rule.site,
        nth=rule.nth or 0,
        kind=rule.kind,
        outcome=outcome,
        fired=fired,
        report=report,
        violations=violations,
    )


def run_crash_sweep(
    points: Optional[Sequence[tuple[str, int]]] = None,
    workload: Callable[[Kernel], None] = chaos_workload,
    target: int = 60,
) -> SweepResult:
    """Crash at every scheduled point; recover; audit.  The exhaustive
    deterministic sweep: one fresh machine per point."""
    if points is None:
        points = sample_crash_points(enumerate_crash_points(workload), target)
    results = [
        _run_one(FaultPlan.crash_at(site, nth), workload)
        for site, nth in points
    ]
    return SweepResult(results)


def run_random_sweep(
    seed: int,
    count: int = 40,
    workload: Callable[[Kernel], None] = chaos_workload,
) -> SweepResult:
    """The nightly-CI sweep: ``count`` single-fault plans — site,
    occurrence, *and kind* drawn from ``seed`` — over the full recorded
    crossing space.  Pure function of ``seed``: print it on failure and
    anyone can replay with ``lamc fsck --seed``."""
    points = enumerate_crash_points(workload)
    plans = FaultPlan.randomized(seed, points, count)
    return SweepResult([_run_one(plan, workload) for plan in plans])
