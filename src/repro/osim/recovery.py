"""Crash-consistent persistence: the label/capability journal and fsck.

The paper persists inode labels in extended attributes and per-user
capabilities in files under ``/etc/laminar`` (Sections 4.4, 5.2) but
never says what happens when the machine dies halfway through updating
them.  This module supplies the missing failure story:

* a **write-ahead journal** (:class:`Journal`) through which every
  persistent label or capability mutation flows — full pre- and
  post-images, begin/commit records — so that recovery can make each
  mutation atomic: after a crash the on-disk state is rolled back to the
  pre-image (uncommitted) or replayed to the post-image (committed),
  never a torn mixture;
* a **recovery pass** (:func:`recover`, invoked by
  :meth:`Kernel.remount`) that resolves in-flight transactions,
  re-hydrates in-memory labels from xattrs, and **quarantines** anything
  that still fails to parse — undecodable inode labels move the inode
  under ``/lost+found`` carrying the boot-time *quarantine* tag (a tag
  no principal holds capabilities for, so the data is readable by
  no one rather than by everyone), and unparseable capability files are
  renamed ``<user>.corrupt`` with administrator integrity;
* an **auditor** (:func:`check_recovery_invariants`) asserting the
  safety contract the crash-point sweep enforces at every injected
  fault: no recovered inode's label is weaker than a state the
  pre-crash kernel exposed, no labeled data is reachable through an
  unlabeled path, capability files parse or are quarantined, and the
  journal holds no in-flight transactions.

The safety direction is deliberately asymmetric, echoing the
exception-aware IFC argument that failures are themselves information
channels: recovery may *lose* a mutation (roll back to the older, often
more restrictive state) or *restrict* access (quarantine), but must
never expose labeled bytes under a weaker label than the kernel ever
enforced for them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core import Label, LabelPair, can_flow
from ..core.audit import AuditKind
from .filesystem import (
    XATTR_INTEGRITY,
    XATTR_SECRECY,
    Inode,
    InodeType,
    decode_label,
)
from .persistence import decode_capabilities

if TYPE_CHECKING:
    from .kernel import Kernel

#: Name of the recovery directory quarantined inodes land in.
LOST_FOUND = "lost+found"

#: Deliberate label-weakening bug, used ONLY by the negative test in
#: ``tests/test_crash_consistency.py``: when True, rolling back an
#: uncommitted relabel restores *empty* xattrs instead of the journaled
#: pre-image, resurrecting labeled data unlabeled.  The crash-point
#: sweep must catch this — if it does not, the sweep is not actually
#: checking anything.
_WEAKENING_BUG = False


class Journal:
    """Write-ahead journal for persistent security-metadata mutations.

    Lives on the :class:`~repro.osim.filesystem.Filesystem` (the
    simulated disk), so records survive :meth:`Kernel.crash`.  Records
    are dictionaries with full pre/post images; the append itself is
    assumed atomic (the standard WAL assumption — fault sites fire
    *before* appends, never inside them).

    States: ``begin`` (in-flight), ``commit`` (durable), ``abort``
    (the caller detected a failure and restored the pre-image inline).
    """

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._seq = itertools.count(1)
        #: Total records ever checkpointed away (for tests/diagnostics).
        self.checkpointed = 0

    def begin(self, op: str, **payload: object) -> dict:
        rec = {"seq": next(self._seq), "op": op, "state": "begin", **payload}
        self.records.append(rec)
        return rec

    @staticmethod
    def commit(rec: dict) -> None:
        rec["state"] = "commit"

    @staticmethod
    def abort(rec: dict) -> None:
        rec["state"] = "abort"

    def in_flight(self) -> list[dict]:
        return [r for r in self.records if r["state"] == "begin"]

    def checkpoint(self) -> None:
        """Drop resolved records (recovery calls this once the disk state
        matches every record's outcome)."""
        self.checkpointed += len(self.records)
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class RecoveryInvariantError(AssertionError):
    """The auditor found a state that weakens the pre-crash guarantees."""

    def __init__(self, violations: list[str]) -> None:
        self.violations = violations
        super().__init__(
            "recovery invariants violated:\n  " + "\n  ".join(violations)
        )


@dataclass
class RecoveryReport:
    """What one :func:`recover` pass did."""

    rolled_back: int = 0
    replayed: int = 0
    quarantined_inodes: list[int] = field(default_factory=list)
    quarantined_caps: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            not self.rolled_back
            and not self.quarantined_inodes
            and not self.quarantined_caps
        )

    def __str__(self) -> str:
        return (
            f"recovery: {self.rolled_back} rolled back, "
            f"{self.replayed} replayed, "
            f"{len(self.quarantined_inodes)} inode(s) quarantined, "
            f"{len(self.quarantined_caps)} capability file(s) quarantined"
        )


# -- tree helpers ------------------------------------------------------------


def _index_tree(root: Inode) -> dict[int, tuple[Inode, Optional[Inode], str]]:
    """ino -> (inode, parent, name) for every reachable inode."""
    index: dict[int, tuple[Inode, Optional[Inode], str]] = {
        root.ino: (root, None, "/")
    }
    stack = [root]
    while stack:
        node = stack.pop()
        for name, child in node.children.items():
            index[child.ino] = (child, node, name)
            if child.children:
                stack.append(child)
    return index


def _caps_dir(kernel: "Kernel") -> Optional[Inode]:
    try:
        return (
            kernel.fs.root.children["etc"].children["laminar"].children["caps"]
        )
    except KeyError:
        return None


def _lost_found(kernel: "Kernel") -> Inode:
    """The quarantine directory, created on demand with the admin label."""
    root = kernel.fs.root
    inode = root.children.get(LOST_FOUND)
    if inode is None:
        admin = LabelPair(Label.EMPTY, Label.of(kernel.admin_integrity))
        inode = Inode(InodeType.DIRECTORY, admin, mode=0o700)
        kernel.fs.link_child(root, LOST_FOUND, inode)
    return inode


def _quarantine_label(kernel: "Kernel", inode: Inode) -> LabelPair:
    """The most restrictive label recovery can assign: any tags that are
    still decodable from the (possibly torn) xattr, plus the boot-time
    quarantine tag nobody holds capabilities for.  Adding tags can only
    restrict; the quarantine tag alone already makes the data readable
    by no principal."""
    salvage = []
    blob = inode.xattrs.get(XATTR_SECRECY, b"")
    for offset in range(0, len(blob) - len(blob) % 8, 8):
        value = int.from_bytes(blob[offset : offset + 8], "big")
        salvage.append(kernel.tags.lookup(value) or None)
    tags = [t for t in salvage if t is not None]
    tags.append(kernel.quarantine_tag)
    return LabelPair(Label(tags), Label.EMPTY)


def _quarantine_inode(
    kernel: "Kernel", inode: Inode, parent: Optional[Inode], name: str
) -> None:
    """Move an inode whose labels cannot be trusted under ``/lost+found``
    with the quarantine label.  The move is raw (recovery is the TCB):
    no LSM hooks fire, no journal records are cut."""
    if parent is not None and parent.children.get(name) is inode:
        del parent.children[name]
    lf = _lost_found(kernel)
    lf.children[f"ino{inode.ino}"] = inode
    inode.labels = _quarantine_label(kernel, inode)
    inode.xattrs[XATTR_SECRECY] = b"".join(
        tag.value.to_bytes(8, "big") for tag in inode.labels.secrecy
    )
    inode.xattrs[XATTR_INTEGRITY] = b""
    kernel.audit.record(
        AuditKind.QUARANTINE,
        "recovery",
        "fsck",
        f"inode {inode.ino} ({name}) quarantined under /{LOST_FOUND}",
    )


def quarantine_capability_file(kernel: "Kernel", user: str) -> None:
    """Rename an unparseable capability file to ``<user>.corrupt`` with
    administrator integrity; the user logs in with empty persistent
    capabilities until an administrator repairs the file.  Shared by
    recovery and by :func:`~repro.osim.persistence.login` (which can hit
    corruption the journal never saw, e.g. media decay)."""
    directory = _caps_dir(kernel)
    if directory is None:
        return
    inode = directory.children.get(user)
    if inode is None:
        return
    del directory.children[user]
    corrupt_name = f"{user}.corrupt"
    directory.children.pop(corrupt_name, None)
    directory.children[corrupt_name] = inode
    inode.labels = LabelPair(
        inode.labels.secrecy, Label.of(kernel.admin_integrity)
    )
    inode.xattrs[XATTR_SECRECY] = b"".join(
        tag.value.to_bytes(8, "big") for tag in inode.labels.secrecy
    )
    inode.xattrs[XATTR_INTEGRITY] = kernel.admin_integrity.value.to_bytes(
        8, "big"
    )
    kernel.audit.record(
        AuditKind.QUARANTINE,
        "recovery",
        "fsck",
        f"capability file for {user!r} quarantined as {corrupt_name}",
    )


# -- the recovery pass -------------------------------------------------------


def _resolve_transactions(kernel: "Kernel", report: RecoveryReport) -> None:
    """Redo committed records, undo in-flight ones.  Aborted records were
    already rolled back inline by their caller."""
    fs = kernel.fs
    index = _index_tree(fs.root)
    for rec in fs.journal.records:
        op, state = rec["op"], rec["state"]
        if state == "abort":
            continue
        if op == "relabel":
            entry = index.get(rec["ino"])
            if entry is None:
                continue
            inode = entry[0]
            if state == "commit":
                inode.xattrs.update(rec["new"])
                report.replayed += 1
            else:
                if _WEAKENING_BUG:
                    inode.xattrs[XATTR_SECRECY] = b""
                    inode.xattrs[XATTR_INTEGRITY] = b""
                else:
                    inode.xattrs.update(rec["old"])
                report.rolled_back += 1
        elif op == "capwrite":
            entry = index.get(rec["ino"])
            if entry is None:
                continue
            inode, parent, name = entry
            if state == "commit":
                inode.data[:] = rec["new"]
                report.replayed += 1
            else:
                if rec["old"] is None:
                    if parent is not None and parent.children.get(name) is inode:
                        del parent.children[name]
                else:
                    inode.data[:] = rec["old"]
                report.rolled_back += 1
        elif op == "create":
            if state == "commit":
                continue  # link precedes commit; nothing to redo
            parent_entry = index.get(rec["parent_ino"])
            if parent_entry is None:
                continue
            parent = parent_entry[0]
            child = parent.children.get(rec["name"])
            if child is not None and child.ino == rec["ino"]:
                del parent.children[rec["name"]]
            report.rolled_back += 1


def recover(kernel: "Kernel") -> RecoveryReport:
    """Bring the filesystem to a crash-consistent state.

    Called by :meth:`Kernel.remount` after :meth:`Kernel.crash` (and
    harmlessly on a clean remount, where the journal is empty).  Order
    matters: transactions are resolved on *disk* state first, then
    in-memory labels are re-hydrated from the now-consistent xattrs, and
    only undecodable stragglers are quarantined.
    """
    report = RecoveryReport()
    fs = kernel.fs
    _resolve_transactions(kernel, report)
    fs.journal.checkpoint()
    for ino, (inode, parent, name) in list(_index_tree(fs.root).items()):
        if inode.itype not in (InodeType.REGULAR, InodeType.DIRECTORY):
            continue
        try:
            inode.labels = LabelPair.EMPTY
            inode.restore_labels(kernel.tags)
        except ValueError:
            if parent is None:
                # A corrupt *root* label cannot be moved; pin it to the
                # quarantine label in place.
                inode.labels = _quarantine_label(kernel, inode)
                inode.xattrs[XATTR_SECRECY] = b"".join(
                    tag.value.to_bytes(8, "big")
                    for tag in inode.labels.secrecy
                )
                inode.xattrs[XATTR_INTEGRITY] = b""
            else:
                _quarantine_inode(kernel, inode, parent, name)
            report.quarantined_inodes.append(ino)
    caps_dir = _caps_dir(kernel)
    if caps_dir is not None:
        for user in list(caps_dir.children):
            if user.endswith(".corrupt"):
                continue
            inode = caps_dir.children[user]
            try:
                decode_capabilities(bytes(inode.data), kernel)
            except ValueError:
                quarantine_capability_file(kernel, user)
                report.quarantined_caps.append(user)
    kernel.audit.record(
        AuditKind.RECOVERY, "recovery", "fsck", str(report)
    )
    return report


# -- the auditor -------------------------------------------------------------


def check_recovery_invariants(
    kernel: "Kernel", strict: bool = True
) -> list[str]:
    """Audit the recovered machine against the crash-safety contract.

    Returns the list of violations (empty when sound); raises
    :class:`RecoveryInvariantError` instead when ``strict``.

    Invariants:

    1. **Journal quiescent** — no in-flight transactions survive
       recovery.
    2. **Persistence coherent** — every regular file and directory's
       in-memory label equals the label decoded from its xattrs (labels
       must survive the *next* remount too).
    3. **No label weakening** — for every inode the pre-crash kernel
       exposed labels for (the filesystem's omniscient-observer history,
       like ``Pipe.dropped``), the recovered label is either (a) one of
       the exposed states, (b) at least as restrictive as the last
       exposed state (``can_flow(last, recovered)``), or (c) carries the
       quarantine tag, which no principal can ever add to its own label.
    4. **Quarantine is airtight** — everything under ``/lost+found``
       carries the quarantine tag, and no task or persistent capability
       file holds a capability for that tag.
    5. **Capability files parse or are quarantined** — every file in the
       capability store either decodes or is a ``*.corrupt`` quarantine
       artifact with administrator integrity.
    """
    violations: list[str] = []
    fs = kernel.fs
    qtag = kernel.quarantine_tag

    for rec in fs.journal.in_flight():
        violations.append(f"in-flight journal record survived recovery: {rec}")

    index = _index_tree(fs.root)
    for ino, (inode, _parent, name) in index.items():
        if inode.itype not in (InodeType.REGULAR, InodeType.DIRECTORY):
            continue
        try:
            decoded = LabelPair(
                decode_label(inode.xattrs.get(XATTR_SECRECY, b""), kernel.tags),
                decode_label(
                    inode.xattrs.get(XATTR_INTEGRITY, b""), kernel.tags
                ),
            )
        except ValueError:
            violations.append(f"inode {ino} ({name}): undecodable label xattrs")
            continue
        if decoded != inode.labels:
            violations.append(
                f"inode {ino} ({name}): in-memory labels {inode.labels!r} "
                f"diverge from persisted {decoded!r}"
            )
        history = fs.exposed.get(ino)
        if history:
            recovered = inode.labels
            ok = (
                recovered in history
                or can_flow(history[-1], recovered)
                or qtag in recovered.secrecy
            )
            if not ok:
                violations.append(
                    f"inode {ino} ({name}): recovered label {recovered!r} is "
                    f"weaker than exposed history (last {history[-1]!r})"
                )

    lf = fs.root.children.get(LOST_FOUND)
    if lf is not None:
        for name, child in lf.children.items():
            if qtag not in child.labels.secrecy:
                violations.append(
                    f"/{LOST_FOUND}/{name}: quarantined inode lacks the "
                    f"quarantine tag"
                )
    for task in kernel.tasks.values():
        if task.capabilities.can_add(qtag) or task.capabilities.can_remove(qtag):
            violations.append(
                f"task {task.name} holds a quarantine-tag capability"
            )

    caps_dir = _caps_dir(kernel)
    if caps_dir is not None:
        for user, inode in caps_dir.children.items():
            try:
                caps = decode_capabilities(bytes(inode.data), kernel)
            except ValueError:
                if not user.endswith(".corrupt"):
                    violations.append(
                        f"capability file {user!r} neither parses nor is "
                        f"quarantined"
                    )
                continue
            if user.endswith(".corrupt"):
                continue
            if caps.can_add(qtag) or caps.can_remove(qtag):
                violations.append(
                    f"capability file {user!r} grants the quarantine tag"
                )

    if violations and strict:
        raise RecoveryInvariantError(violations)
    return violations
