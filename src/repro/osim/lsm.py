"""Linux-Security-Module-style hooks, and Laminar's implementation of them.

Laminar's OS half lives almost entirely in a security module whose hook
architecture already exists in Linux (Section 4.1): the kernel's syscall
layer calls a fixed set of hook points, and the module decides.  This file
defines that contract:

* :class:`SecurityModule` — the hook interface with allow-everything
  defaults.  Installing it unmodified gives the *vanilla Linux* baseline
  used for normalization in Table 2.
* :class:`LaminarSecurityModule` — the paper's module (~1,000 lines of C in
  the original): a straightforward application of the Section 3.2 rules to
  each hook, plus the labeled-creation rule of Section 5.2.

Hooks signal denial by raising :class:`~repro.osim.task.SyscallError` with
``EACCES``; the *pipe* hooks instead return a boolean so the kernel can
silently drop undeliverable messages (an error code on a pipe would itself
leak information).

Every hook invocation is counted, and :class:`LaminarSecurityModule`
additionally models per-check work; the Table 2 benchmark measures the real
Python-time delta between the two modules over identical syscall mixes.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import TYPE_CHECKING

from ..core import LabelPair, can_flow, labeled_create_allowed

if TYPE_CHECKING:
    from .filesystem import File, Inode
    from .task import Task


class Mask(enum.Flag):
    """Access mask bits, after Linux's MAY_READ/MAY_WRITE/MAY_EXEC."""

    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()


#: Precombined masks for the hot permission hooks.  ``enum.Flag.__or__``
#: goes through a class-level lookup on every call; the hooks fire once
#: per syscall, so the combinations are built once here instead.
_READ_LIKE = Mask.READ | Mask.EXEC
_WRITE_LIKE = Mask.WRITE


class SecurityModule:
    """Hook interface; the default implementation allows everything.

    Subclasses override only the hooks they care about, exactly like a
    Linux LSM that leaves most hooks as capability-DAC defaults.
    """

    name = "null"

    def __init__(self) -> None:
        #: hook name -> invocation count (for tests and the bench harness).
        self.hook_calls: Counter[str] = Counter()
        #: number of denials, by hook name.
        self.denials: Counter[str] = Counter()
        #: optional audit sink, installed by the kernel at boot.
        self.audit = None

    # -- inode / file hooks ---------------------------------------------------

    def inode_permission(self, task: "Task", inode: "Inode", mask: Mask) -> None:
        self.hook_calls["inode_permission"] += 1

    def file_permission(self, task: "Task", file: "File", mask: Mask) -> None:
        self.hook_calls["file_permission"] += 1

    def inode_create(
        self, task: "Task", parent: "Inode", labels: LabelPair
    ) -> None:
        self.hook_calls["inode_create"] += 1

    def inode_unlink(self, task: "Task", parent: "Inode", victim: "Inode") -> None:
        self.hook_calls["inode_unlink"] += 1

    def inode_getattr(self, task: "Task", inode: "Inode") -> None:
        self.hook_calls["inode_getattr"] += 1

    # -- pipe hooks (boolean: silent drop semantics) ----------------------------

    def pipe_write_allowed(self, task: "Task", pipe: "Inode") -> bool:
        self.hook_calls["pipe_write"] += 1
        return True

    def pipe_read_allowed(self, task: "Task", pipe: "Inode") -> bool:
        self.hook_calls["pipe_read"] += 1
        return True

    # -- IPC / task hooks --------------------------------------------------------

    def task_kill(self, sender: "Task", target: "Task", signum: int) -> None:
        self.hook_calls["task_kill"] += 1

    def task_alloc(self, parent: "Task", child: "Task") -> None:
        self.hook_calls["task_alloc"] += 1

    def capability_transfer(self, sender: "Task", receiver: "Task") -> None:
        self.hook_calls["capability_transfer"] += 1

    def socket_sendmsg(self, task: "Task", socket: "Inode") -> None:
        self.hook_calls["socket_sendmsg"] += 1

    def socket_recvmsg(self, task: "Task", socket: "Inode") -> None:
        self.hook_calls["socket_recvmsg"] += 1

    # -- memory hooks (for the lmbench mmap/prot-fault rows) -----------------------

    def mmap_file(self, task: "Task", file: "File", mask: Mask) -> None:
        self.hook_calls["mmap_file"] += 1

    def reset_counters(self) -> None:
        self.hook_calls.clear()
        self.denials.clear()


class NullSecurityModule(SecurityModule):
    """Explicit alias for the vanilla baseline — allows everything."""

    name = "vanilla-linux"


def _deny(module: SecurityModule, hook: str, why: str) -> None:
    from .task import EACCES, SyscallError

    module.denials[hook] += 1
    if module.audit is not None:
        from ..core.audit import AuditKind

        module.audit.record(AuditKind.DENIAL, "lsm", hook, why)
    raise SyscallError(EACCES, why)


class LaminarSecurityModule(SecurityModule):
    """The Laminar LSM: Section 3.2 rules applied at every hook.

    The hook bodies are deliberately small — "a straightforward check of the
    rules listed in Section 3.2" — so the per-syscall cost is one or two
    subset tests, which is what makes the Table 2 overheads small everywhere
    except null I/O (where the base syscall does almost no work).

    Every ``can_flow`` call here goes through the process-wide flow-verdict
    cache in :mod:`repro.core.rules`: the inode/file/pipe hooks on a hot
    syscall path (null I/O, pipe latency/bandwidth) typically re-check the
    same (task labels, object labels) pair thousands of times, and labels
    are immutable values, so repeated checks collapse to one dict lookup.
    """

    name = "laminar"

    # -- inode / file ------------------------------------------------------------

    def inode_permission(self, task: "Task", inode: "Inode", mask: Mask) -> None:
        self.hook_calls["inode_permission"] += 1
        self._check_object_access(task, inode, mask, "inode_permission")

    def file_permission(self, task: "Task", file: "File", mask: Mask) -> None:
        self.hook_calls["file_permission"] += 1
        self._check_object_access(task, file.inode, mask, "file_permission")

    def _check_object_access(
        self, task: "Task", inode: "Inode", mask: Mask, hook: str
    ) -> None:
        labels = task.labels
        if mask & _READ_LIKE:
            # Read: flow from inode to task.
            if not can_flow(inode.labels, labels):
                _deny(
                    self,
                    hook,
                    f"{task.name}{labels!r} may not read {inode!r}",
                )
        if mask & _WRITE_LIKE:
            # Write: flow from task to inode.
            if not can_flow(labels, inode.labels):
                _deny(
                    self,
                    hook,
                    f"{task.name}{labels!r} may not write {inode!r}",
                )

    def inode_create(
        self, task: "Task", parent: "Inode", labels: LabelPair
    ) -> None:
        self.hook_calls["inode_create"] += 1
        # A directory entry is a write to the parent; the new file's *name*
        # is protected by the parent's label.
        parent_writable = can_flow(task.labels, parent.labels)
        if not labeled_create_allowed(
            task.labels, task.capabilities, labels, parent_writable
        ):
            _deny(
                self,
                "inode_create",
                f"{task.name}{task.labels!r} may not create {labels!r} "
                f"under {parent!r}",
            )

    def inode_unlink(self, task: "Task", parent: "Inode", victim: "Inode") -> None:
        self.hook_calls["inode_unlink"] += 1
        # Removing a name mutates the parent directory; observing that the
        # name existed reads the parent.  Both directions must be legal.
        if not can_flow(task.labels, parent.labels):
            _deny(self, "inode_unlink", f"{task.name} may not write {parent!r}")
        if not can_flow(parent.labels, task.labels):
            _deny(self, "inode_unlink", f"{task.name} may not read {parent!r}")

    def inode_getattr(self, task: "Task", inode: "Inode") -> None:
        self.hook_calls["inode_getattr"] += 1
        # Metadata (size, mode) is protected by the inode's own label.
        if not can_flow(inode.labels, task.labels):
            _deny(self, "inode_getattr", f"{task.name} may not stat {inode!r}")

    # -- pipes: boolean results, silent drops --------------------------------------

    def pipe_write_allowed(self, task: "Task", pipe: "Inode") -> bool:
        self.hook_calls["pipe_write"] += 1
        ok = can_flow(task.labels, pipe.labels)
        if not ok:
            self.denials["pipe_write"] += 1
        return ok

    def pipe_read_allowed(self, task: "Task", pipe: "Inode") -> bool:
        self.hook_calls["pipe_read"] += 1
        ok = can_flow(pipe.labels, task.labels)
        if not ok:
            self.denials["pipe_read"] += 1
        return ok

    # -- IPC / tasks ------------------------------------------------------------------

    def task_kill(self, sender: "Task", target: "Task", signum: int) -> None:
        self.hook_calls["task_kill"] += 1
        # A signal is a message from sender to target.
        if not can_flow(sender.labels, target.labels):
            _deny(
                self,
                "task_kill",
                f"{sender.name} may not signal {target.name}",
            )

    def task_alloc(self, parent: "Task", child: "Task") -> None:
        self.hook_calls["task_alloc"] += 1
        # fork: the child starts with the parent's labels and a subset of
        # its capabilities; the kernel enforces the subset in sys_fork, the
        # hook re-validates it (defense in depth).
        if not child.capabilities.is_subset_of(parent.capabilities):
            _deny(self, "task_alloc", "child capabilities exceed parent's")
        if child.labels != parent.labels:
            _deny(self, "task_alloc", "child labels differ from parent's")

    def capability_transfer(self, sender: "Task", receiver: "Task") -> None:
        self.hook_calls["capability_transfer"] += 1
        # write_capability: the transfer is a message; labels of sender and
        # receiver must allow communication.
        if not can_flow(sender.labels, receiver.labels):
            _deny(
                self,
                "capability_transfer",
                f"{sender.name} may not send capabilities to {receiver.name}",
            )

    def socket_sendmsg(self, task: "Task", socket: "Inode") -> None:
        self.hook_calls["socket_sendmsg"] += 1
        if not can_flow(task.labels, socket.labels):
            _deny(
                self,
                "socket_sendmsg",
                f"{task.name}{task.labels!r} may not send on {socket!r}",
            )

    def socket_recvmsg(self, task: "Task", socket: "Inode") -> None:
        self.hook_calls["socket_recvmsg"] += 1
        if not can_flow(socket.labels, task.labels):
            _deny(
                self,
                "socket_recvmsg",
                f"{task.name}{task.labels!r} may not receive on {socket!r}",
            )

    def mmap_file(self, task: "Task", file: "File", mask: Mask) -> None:
        self.hook_calls["mmap_file"] += 1
        self._check_object_access(task, file.inode, mask, "mmap_file")


class LeakySecurityModule(LaminarSecurityModule):
    """Deliberately leaky LSM — the lamfuzz negative control.

    Each toggle in :data:`LEAKS` suppresses exactly one enforcement
    point while leaving the hook counters and audit record behaving
    normally, so the leak manifests only in *data* observables — the
    fuzzer must catch it through the extended extractor, not through a
    trivially different denial count.  If the fuzz oracle cannot catch
    either leak within its bounded budget, the CI gate fails: the oracle
    has gone blind.

    Overriding ``inode_permission``/``file_permission`` also drops this
    module out of :data:`_PURE_HOOK_IMPLS`, so the hook-chain compiler,
    walk cache, and permission memo all disable themselves — the leak is
    observed through the real hook bodies on every call.
    """

    name = "laminar-leaky"

    #: Supported planted leaks:
    #: ``pipe-read``  — secret pipes deliver to unlabeled readers;
    #: ``file-read``  — read-denials on secret files are swallowed.
    LEAKS = ("pipe-read", "file-read")

    def __init__(self, leak: str) -> None:
        if leak not in self.LEAKS:
            raise ValueError(f"unknown leak {leak!r}; expected one of {self.LEAKS}")
        super().__init__()
        self.leak = leak

    def pipe_read_allowed(self, task: "Task", pipe: "Inode") -> bool:
        ok = super().pipe_read_allowed(task, pipe)
        if self.leak == "pipe-read":
            return True
        return ok

    def _leaky_object_access(self, call, mask: Mask) -> None:
        from .task import SyscallError

        try:
            call()
        except SyscallError:
            # Swallow only pure-read denials: a write-up failure leaking
            # through would corrupt label invariants, not just leak data.
            if (
                self.leak == "file-read"
                and (mask & _READ_LIKE)
                and not (mask & _WRITE_LIKE)
            ):
                return
            raise

    def inode_permission(self, task: "Task", inode: "Inode", mask: Mask) -> None:
        self._leaky_object_access(
            lambda: super(LeakySecurityModule, self).inode_permission(
                task, inode, mask
            ),
            mask,
        )

    def file_permission(self, task: "Task", file: "File", mask: Mask) -> None:
        self._leaky_object_access(
            lambda: super(LeakySecurityModule, self).file_permission(
                task, file, mask
            ),
            mask,
        )


#: Hook implementations whose verdict is a pure function of the interned
#: (task labels, object labels) pair — the soundness condition for the
#: hook-chain compiler (:mod:`repro.osim.hookchain`) to replay an allow
#: verdict without re-running the hook body.  A subclass that overrides
#: one of these hooks (extra state, side effects, ambient conditions)
#: drops out of the set and its chains are never baked — same discipline
#: as the kernel's ``_walk_cacheable`` / ``_perm_memo_ok`` checks.
_PURE_HOOK_IMPLS: dict[str, tuple] = {
    "inode_permission": (
        SecurityModule.inode_permission,
        LaminarSecurityModule.inode_permission,
    ),
    "file_permission": (
        SecurityModule.file_permission,
        LaminarSecurityModule.file_permission,
    ),
    "inode_getattr": (
        SecurityModule.inode_getattr,
        LaminarSecurityModule.inode_getattr,
    ),
}


def chain_bakeable_hooks(module: SecurityModule) -> frozenset[str]:
    """Names of ``module``'s hooks safe to bake into compiled chains."""
    cls = type(module)
    return frozenset(
        name
        for name, impls in _PURE_HOOK_IMPLS.items()
        if getattr(cls, name, None) in impls
    )
