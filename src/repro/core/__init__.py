"""The Laminar DIFC model: tags, labels, capabilities, and flow rules.

This package is the formal heart of the reproduction (Section 3 of the
paper).  Everything else — the VM runtime, the mini-JIT, the simulated OS,
the baselines, the applications — consults these rules and never
reimplements them.
"""

from . import fastpath
from .audit import AuditEntry, AuditKind, AuditLog
from .capabilities import Capability, CapabilitySet, CapType
from .errors import (
    CapabilityViolation,
    IFCViolation,
    IntegrityViolation,
    LabelChangeViolation,
    LaminarError,
    LaminarUsageError,
    ProcessExit,
    RegionExitViolation,
    RegionViolation,
    SecrecyViolation,
    StaticCheckError,
    VMPanic,
)
from .labels import Label, LabelPair, LabelType
from .principal import Principal
from .rules import (
    FLOW_INTEGRITY_FAIL,
    FLOW_OK,
    FLOW_SECRECY_FAIL,
    can_change_label,
    can_flow,
    check_flow,
    flow_verdict,
    check_label_change,
    check_pair_change,
    integrity_allows,
    labeled_create_allowed,
    region_entry_allowed,
    secrecy_allows,
)
from .tags import Tag, TagAllocator, TagExhaustedError, TAG_BITS, TAG_UNIVERSE

__all__ = [
    "AuditEntry",
    "AuditKind",
    "AuditLog",
    "Capability",
    "CapabilitySet",
    "CapType",
    "CapabilityViolation",
    "IFCViolation",
    "IntegrityViolation",
    "Label",
    "LabelChangeViolation",
    "LabelPair",
    "LabelType",
    "LaminarError",
    "LaminarUsageError",
    "Principal",
    "ProcessExit",
    "RegionExitViolation",
    "RegionViolation",
    "SecrecyViolation",
    "StaticCheckError",
    "VMPanic",
    "Tag",
    "TagAllocator",
    "TagExhaustedError",
    "TAG_BITS",
    "TAG_UNIVERSE",
    "FLOW_INTEGRITY_FAIL",
    "FLOW_OK",
    "FLOW_SECRECY_FAIL",
    "can_change_label",
    "can_flow",
    "check_flow",
    "fastpath",
    "flow_verdict",
    "check_label_change",
    "check_pair_change",
    "integrity_allows",
    "labeled_create_allowed",
    "region_entry_allowed",
    "secrecy_allows",
]
