"""Fast-path switches and counters for the label-check hot path.

The paper's performance story (Section 5.1) rests on labels being
immutable objects that are "freely shared between objects, security
regions, and threads", which makes barrier checks cheap comparisons.
This module is the control plane for the reproduction's equivalent:
four independently switchable cache layers, each exploiting that
immutability, plus the counters the ablation benchmark reads.

Layers (each a boolean on :data:`flags`):

``label_interning``
    Hash-consed :class:`~repro.core.labels.Label` construction — one
    canonical instance per tag-set — enabling identity-based ``==`` /
    ``is_subset_of`` fast paths and memoized ``union``/``difference``.
``flow_verdict_cache``
    A bounded access-vector cache for the Section 3.2 flow rules in
    :mod:`repro.core.rules`, keyed on the four component labels.  It
    never needs invalidation: labels are immutable, so a (source, dest)
    pair's verdict can never change.
``thread_barrier_cache``
    A per-thread verdict cache in :mod:`repro.runtime.barriers`, keyed
    on the label pairs and guarded by the thread's *label epoch*
    (bumped on region entry/exit and kernel label changes).
``dispatch_table``
    The IR interpreter's precomputed per-method handler tables
    (:mod:`repro.jit.interpreter`) replacing per-instruction opcode
    dispatch.
``path_walk_cache``
    The kernel's per-task path-walk verdict cache
    (:meth:`repro.osim.kernel.Kernel._walk_checked`): a successful
    LSM-checked traversal of a directory prefix is recorded under the
    task's label epoch and replayed as one dict hit (hook counters are
    replayed too, so the observable record is identical).  Entries are
    revalidated against the traversed inodes' label identities and the
    kernel's namespace generation, so relabels, unlinks, and label
    changes can never resurrect a stale allow.

All layers are pure performance: verdicts, audit entries, and violation
counts are identical with every combination of switches (asserted by
``tests/test_property_fastpath.py`` and the ablation benchmark).

Counters deliberately distinguish *requested* checks (which the
:class:`~repro.runtime.barriers.BarrierStats` counters keep tracking
unconditionally) from *executed* set algebra — the work the caches
elide.  ``counters.set_ops`` is the ablation's primary metric.

The tier-2 template JIT (:mod:`repro.jit.tier2`) is not a flag here — it
is enabled per-program via ``Compiler(tier="jit")`` — but its code cache
registers a :func:`register_cache` hook: every :func:`configure` /
:func:`clear_caches` bumps the tier-2 code epoch, discarding compiled
bodies whose baked-in assumptions (interned label identities, cache-layer
switches) may no longer hold.  Its ``tier2_*`` counters live here so the
benchmark snapshots carry them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Callable, Iterator


@dataclass
class FastPathFlags:
    """The independently switchable cache layers (all on by default)."""

    label_interning: bool = True
    flow_verdict_cache: bool = True
    thread_barrier_cache: bool = True
    dispatch_table: bool = True
    path_walk_cache: bool = True
    #: Tier-2 for the OS: bake hot (walk prefix, permission hook) chains
    #: into exec-generated closures (:mod:`repro.osim.hookchain`).
    hook_chain_compile: bool = True

    def as_dict(self) -> dict[str, bool]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class FastPathCounters:
    """Hit/miss and work counters for every cache layer.

    ``rule_evaluations`` counts entries into the Section 3.2 subset
    rules (``secrecy_allows``/``integrity_allows``); ``subset_tests``
    counts actual frozenset comparisons (identity/emptiness fast paths
    excluded); ``materializations`` counts label tuples actually built
    by ``union``/``difference``/``intersection``.
    """

    rule_evaluations: int = 0
    subset_tests: int = 0
    materializations: int = 0
    intern_hits: int = 0
    intern_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    verdict_hits: int = 0
    verdict_misses: int = 0
    walk_hits: int = 0
    walk_misses: int = 0
    #: Tier-2 engine traffic (:mod:`repro.jit.tier2`): template
    #: compilations, entries into compiled bodies (call + OSR), entry-guard
    #: misses (deopts), per-context clone compilations, and whole-cache
    #: invalidations from shape/epoch changes.  Surfaced here so every
    #: ``BENCH_*.json`` snapshot carries the per-tier hit/deopt story.
    tier2_compiles: int = 0
    tier2_entries: int = 0
    tier2_osr_entries: int = 0
    tier2_deopts: int = 0
    tier2_clones: int = 0
    tier2_invalidations: int = 0
    #: Hook-chain engine traffic (:mod:`repro.osim.hookchain`): chains
    #: baked into closures, verdicts replayed from a baked chain, and
    #: guard failures that discarded a chain and re-ran the full hooks.
    hookchain_compiles: int = 0
    hookchain_hits: int = 0
    hookchain_deopts: int = 0
    #: Wire data plane (:mod:`repro.osim.lamwire`): frames encoded and
    #: their total payload bytes (both wire codecs count, so ablations
    #: compare directly), per-connection label-dictionary traffic (a hit
    #: ships a 16-bit id instead of the full label pair and skips
    #: re-interning on the far side; a miss re-sends the definition —
    #: including epoch-forced re-sends after tag-allocator changes), and
    #: waves the adaptive coalescer batched to more than one request.
    bytes_on_wire: int = 0
    frames: int = 0
    label_dict_hits: int = 0
    label_dict_misses: int = 0
    coalesced_waves: int = 0

    @property
    def set_ops(self) -> int:
        """Executed set-algebra operations: the work caching avoids."""
        return self.rule_evaluations + self.subset_tests + self.materializations

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["set_ops"] = self.set_ops
        return out


#: Process-wide switch state.  Mutate through :func:`configure` (or the
#: :func:`configured` context manager) so caches are flushed coherently.
flags = FastPathFlags()

#: Process-wide counters.  Reset with ``counters.reset()``.
counters = FastPathCounters()

#: Cache-clear callbacks registered by the modules that own caches
#: (labels.py, rules.py).  Registration avoids circular imports.
_cache_clearers: list[Callable[[], None]] = []


def register_cache(clear: Callable[[], None]) -> None:
    """Register a zero-argument callback that empties one cache."""
    _cache_clearers.append(clear)


def clear_caches() -> None:
    """Empty every registered cache (intern table, memos, verdict AVC)."""
    for clear in _cache_clearers:
        clear()


def configure(**switches: bool) -> None:
    """Set cache-layer switches by name and flush all caches.

    Flushing on every reconfiguration keeps ablation arms independent:
    an arm with a layer off cannot ride on entries a previous arm
    populated.
    """
    for name, value in switches.items():
        if not hasattr(flags, name):
            raise ValueError(f"unknown fast-path switch {name!r}")
        setattr(flags, name, bool(value))
    clear_caches()


@contextmanager
def configured(**switches: bool) -> Iterator[FastPathFlags]:
    """Temporarily reconfigure the cache layers (ablation arms, tests)."""
    saved = flags.as_dict()
    configure(**switches)
    try:
        yield flags
    finally:
        configure(**saved)


def all_off() -> dict[str, bool]:
    """Switch settings disabling every layer (the ablation baseline)."""
    return {name: False for name in flags.as_dict()}


def all_on() -> dict[str, bool]:
    return {name: True for name in flags.as_dict()}
