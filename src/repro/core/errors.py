"""Exception hierarchy for DIFC violations and misuse.

Two families:

* :class:`IFCViolation` — an information-flow rule would be broken.  The VM
  raises these from barriers; the OS security module returns them from LSM
  hooks (the simulated kernel surfaces them as ``-EPERM``-style errors).
  Inside a security region an uncaught ``IFCViolation`` transfers control to
  the region's catch block (Section 4.3.3).
* :class:`LaminarUsageError` — the program misused the API (e.g. tried to
  relabel in place, or exited a region abnormally).  These indicate bugs in
  the application, not flows.
"""

from __future__ import annotations


class LaminarError(Exception):
    """Base class for everything this library raises deliberately."""


class IFCViolation(LaminarError):
    """An information-flow control rule was (or would be) violated."""


class SecrecyViolation(IFCViolation):
    """The Bell-LaPadula secrecy rule ``S_x ⊆ S_y`` failed: information
    would flow from a more-secret source to a less-secret destination."""


class IntegrityViolation(IFCViolation):
    """The Biba integrity rule ``I_y ⊆ I_x`` failed: a destination would
    accept data from a source of lower integrity."""


class LabelChangeViolation(IFCViolation):
    """A principal attempted a label change it lacks capabilities for
    (``(L2-L1) ⊆ Cp+ ∧ (L1-L2) ⊆ Cp-`` failed)."""


class CapabilityViolation(IFCViolation):
    """A capability operation (grant, transfer, use) was not permitted."""


class RegionViolation(IFCViolation):
    """A security-region rule failed: illegal initialization labels
    (Section 4.3.2), access to labeled data outside any region, or an
    attempt to change the region's labels mid-flight."""


class LaminarUsageError(LaminarError):
    """The Laminar API was used incorrectly (a programming error, not a
    blocked flow)."""


class RegionExitViolation(LaminarUsageError):
    """A security region tried to exit by a non-fall-through path (break,
    return-with-value, continue) which could leak via implicit flow."""


class StaticCheckError(LaminarUsageError):
    """A static restriction on security-region code failed (Section 5.1's
    rules on locals, statics, parameters, and return values)."""


class ProcessExit(SystemExit):
    """The process terminated through :meth:`LaminarVM.exit_process`.

    Subclasses ``SystemExit`` so security regions pass it through (a
    permitted exit must actually end the process, not be suppressed); the
    *permission* to raise it inside a region is what the restrictive
    termination model of Section 4.3.3 checks."""


class VMPanic(BaseException):
    """The trusted runtime detected its own invariant broken (e.g. a
    miscompiled barrier).  Derives from BaseException and is never
    suppressed by security regions: a broken TCB must stop the world, not
    be hidden by the very mechanism it implements."""
