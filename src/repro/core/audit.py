"""Audit log: the record behind "easier to express, maintain, and audit".

The paper's motivation leans on auditability — security regions localize
the code that touches labeled data "making it easier to identify and
audit", and declassification "is localized to a small piece of code that
can be closely audited".  This module supplies the runtime complement: a
structured, append-only log of security-relevant events that the VM and
the OS security module both feed, so an auditor can reconstruct every
denial and every declassification after the fact.

The log is deliberately *inside the TCB*: entries record labeled
information (tag names, principals), so reading the log is itself a
privileged operation — tests and operators play the omniscient auditor.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, Optional


class AuditKind(enum.Enum):
    DENIAL = "denial"               # a flow/label/capability check failed
    DECLASSIFY = "declassify"       # copyAndLabel lowered a label
    ENDORSE = "endorse"             # copyAndLabel raised integrity
    REGION_ENTER = "region-enter"
    REGION_SUPPRESS = "region-suppress"  # a region swallowed an exception
    CAPABILITY_GRANT = "capability-grant"
    CAPABILITY_DROP = "capability-drop"
    EXIT = "process-exit"
    FAULT = "fault-injected"       # a FaultPlan fired at an injection site
    RECOVERY = "recovery"          # journal recovery ran at remount
    QUARANTINE = "quarantine"      # recovery isolated undecodable metadata


@dataclass(frozen=True)
class AuditEntry:
    """One event.  ``seq`` is a logical clock (wall time would itself be a
    covert channel if applications could read it back)."""

    seq: int
    kind: AuditKind
    subsystem: str        # "vm", "lsm", "region", ...
    principal: str        # thread/task name
    detail: str

    def __str__(self) -> str:
        return (
            f"#{self.seq:06d} [{self.subsystem}] {self.kind.value:<18} "
            f"{self.principal}: {self.detail}"
        )


class AuditLog:
    """Append-only event log with simple query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._entries: list[AuditEntry] = []
        self._seq = itertools.count(1)
        self._capacity = capacity

    def record(
        self, kind: AuditKind, subsystem: str, principal: str, detail: str
    ) -> AuditEntry:
        entry = AuditEntry(next(self._seq), kind, subsystem, principal, detail)
        self._entries.append(entry)
        if self._capacity is not None and len(self._entries) > self._capacity:
            # drop the oldest; the sequence numbers expose the truncation
            self._entries.pop(0)
        return entry

    # -- queries (auditor-side) ---------------------------------------------

    def entries(self, kind: Optional[AuditKind] = None) -> list[AuditEntry]:
        if kind is None:
            return list(self._entries)
        return [e for e in self._entries if e.kind is kind]

    def by_principal(self, principal: str) -> list[AuditEntry]:
        return [e for e in self._entries if e.principal == principal]

    def denials(self) -> list[AuditEntry]:
        return self.entries(AuditKind.DENIAL)

    def declassifications(self) -> list[AuditEntry]:
        return self.entries(AuditKind.DECLASSIFY)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self._entries)

    def render(self) -> str:
        return "\n".join(str(e) for e in self._entries)
