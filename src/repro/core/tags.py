"""Tags: the atoms of the Laminar DIFC model.

Tags are short, arbitrary tokens drawn from a large universe of possible
values (Section 3.1 of the paper).  A tag has no inherent meaning; meaning
comes from where the tag appears (a secrecy label, an integrity label, or a
capability set).  The paper represents tags as 64-bit integers allocated by
the trusted OS security module, which guarantees uniqueness; tag exhaustion
is a non-issue because the space has 2**64 values (Section 4.4).

In this reproduction the :class:`TagAllocator` plays the role of the trusted
allocator.  The simulated kernel owns one allocator instance and hands out
tags through the ``alloc_tag`` system call; the in-process runtime uses the
same allocator so the VM and OS share one namespace, exactly as the paper
requires ("Alice's program uses the same label namespace present in the file
system").
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Size of the tag universe.  Tags are 64-bit integers in the paper.
TAG_BITS = 64
TAG_UNIVERSE = 1 << TAG_BITS


@dataclass(frozen=True, order=True)
class Tag:
    """A single opaque tag.

    Tags compare and hash by value so they can live in frozensets and sorted
    arrays (the paper's ``Labels`` objects store a sorted array of 64-bit
    integers).  The optional ``name`` exists purely for debugging and is
    excluded from equality so that renaming a tag cannot create a covert
    channel or change label semantics.
    """

    value: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.value < TAG_UNIVERSE:
            raise ValueError(
                f"tag value {self.value!r} outside the {TAG_BITS}-bit universe"
            )

    def __repr__(self) -> str:
        if self.name:
            return f"Tag({self.value}, {self.name!r})"
        return f"Tag({self.value})"

    def __str__(self) -> str:
        return self.name or f"t{self.value}"


class TagExhaustedError(RuntimeError):
    """Raised if the allocator runs out of tag values (cannot happen with
    64-bit tags in practice; present for completeness and for tests that
    shrink the universe)."""


class TagAllocator:
    """Allocates unique tags, mimicking the trusted OS security module.

    The paper states that "the OS security module that allocates tags is
    trusted and ensures that all tags are unique".  Allocation is sequential
    rather than random: uniqueness, not unpredictability, is the security
    property (labels are opaque to applications, so tag values never leak).

    Parameters
    ----------
    first:
        First value to hand out.  Values below ``first`` can be used by
        tests as well-known tags without colliding with the allocator.
    limit:
        Exclusive upper bound of the universe; defaults to 2**64.
    """

    def __init__(self, first: int = 1, limit: int = TAG_UNIVERSE) -> None:
        if not 0 <= first < limit <= TAG_UNIVERSE:
            raise ValueError("invalid tag allocator range")
        self._limit = limit
        self._next = first
        self._allocated: dict[int, Tag] = {}
        #: Monotonic replication epoch: bumped by every local allocation
        #: and advanced by :meth:`apply_snapshot`.  Cluster shards use it
        #: for epoch-stamped invalidation of the replicated tag namespace:
        #: a snapshot older than what a shard already applied is stale and
        #: must be ignored (see repro.osim.rpc.TagSync).
        self.epoch = 0
        #: Epoch-change listeners (the wire codec's label-dictionary
        #: guard above all): called with the new epoch after every local
        #: allocation and every applied snapshot, so a per-connection
        #: label dictionary can stop referencing entries defined under a
        #: now-stale view of the tag namespace and re-send definitions.
        self._epoch_listeners: list = []

    def add_epoch_listener(self, listener) -> None:
        """Register ``listener(epoch)`` to run after every epoch bump."""
        self._epoch_listeners.append(listener)

    def _notify_epoch(self) -> None:
        for listener in self._epoch_listeners:
            listener(self.epoch)

    def alloc(self, name: str = "") -> Tag:
        """Return a fresh, never-before-seen tag."""
        value = self._next
        if value >= self._limit:
            raise TagExhaustedError(
                f"tag universe of {self._limit} values exhausted"
            )
        self._next = value + 1
        tag = Tag(value, name)
        self._allocated[value] = tag
        self.epoch += 1
        self._notify_epoch()
        return tag

    # -- cluster replication (repro.osim.cluster) ---------------------------

    def snapshot(self) -> tuple[int, int, tuple[tuple[int, str], ...]]:
        """The replicable allocator state: ``(epoch, next_value, entries)``.

        Entries are (value, name) pairs in allocation order, so applying a
        snapshot on a peer reproduces the exact same :class:`Tag` values —
        the "shared interned-tag namespace" a sharded deployment needs
        ("Alice's program uses the same label namespace present in the
        file system", across every shard).
        """
        entries = tuple(
            (value, tag.name) for value, tag in sorted(self._allocated.items())
        )
        return (self.epoch, self._next, entries)

    def apply_snapshot(
        self, epoch: int, next_value: int, entries: tuple[tuple[int, str], ...]
    ) -> bool:
        """Install a peer's snapshot.  Returns ``False`` (and changes
        nothing) when the snapshot's epoch is not newer than what this
        allocator has already seen — the epoch-stamped invalidation rule
        that makes replication idempotent and reordering-safe."""
        if epoch <= self.epoch:
            return False
        for value, name in entries:
            if value not in self._allocated:
                self._allocated[value] = Tag(value, name)
        if next_value > self._next:
            self._next = next_value
        self.epoch = epoch
        self._notify_epoch()
        return True

    def lookup(self, value: int) -> Tag | None:
        """Return the allocated tag with ``value``, or ``None``.

        Used by the simulated filesystem when re-hydrating labels from
        persisted extended attributes.
        """
        return self._allocated.get(value)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def __contains__(self, tag: Tag) -> bool:
        return self._allocated.get(tag.value) is not None
