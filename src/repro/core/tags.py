"""Tags: the atoms of the Laminar DIFC model.

Tags are short, arbitrary tokens drawn from a large universe of possible
values (Section 3.1 of the paper).  A tag has no inherent meaning; meaning
comes from where the tag appears (a secrecy label, an integrity label, or a
capability set).  The paper represents tags as 64-bit integers allocated by
the trusted OS security module, which guarantees uniqueness; tag exhaustion
is a non-issue because the space has 2**64 values (Section 4.4).

In this reproduction the :class:`TagAllocator` plays the role of the trusted
allocator.  The simulated kernel owns one allocator instance and hands out
tags through the ``alloc_tag`` system call; the in-process runtime uses the
same allocator so the VM and OS share one namespace, exactly as the paper
requires ("Alice's program uses the same label namespace present in the file
system").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Size of the tag universe.  Tags are 64-bit integers in the paper.
TAG_BITS = 64
TAG_UNIVERSE = 1 << TAG_BITS


@dataclass(frozen=True, order=True)
class Tag:
    """A single opaque tag.

    Tags compare and hash by value so they can live in frozensets and sorted
    arrays (the paper's ``Labels`` objects store a sorted array of 64-bit
    integers).  The optional ``name`` exists purely for debugging and is
    excluded from equality so that renaming a tag cannot create a covert
    channel or change label semantics.
    """

    value: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.value < TAG_UNIVERSE:
            raise ValueError(
                f"tag value {self.value!r} outside the {TAG_BITS}-bit universe"
            )

    def __repr__(self) -> str:
        if self.name:
            return f"Tag({self.value}, {self.name!r})"
        return f"Tag({self.value})"

    def __str__(self) -> str:
        return self.name or f"t{self.value}"


class TagExhaustedError(RuntimeError):
    """Raised if the allocator runs out of tag values (cannot happen with
    64-bit tags in practice; present for completeness and for tests that
    shrink the universe)."""


class TagAllocator:
    """Allocates unique tags, mimicking the trusted OS security module.

    The paper states that "the OS security module that allocates tags is
    trusted and ensures that all tags are unique".  Allocation is sequential
    rather than random: uniqueness, not unpredictability, is the security
    property (labels are opaque to applications, so tag values never leak).

    Parameters
    ----------
    first:
        First value to hand out.  Values below ``first`` can be used by
        tests as well-known tags without colliding with the allocator.
    limit:
        Exclusive upper bound of the universe; defaults to 2**64.
    """

    def __init__(self, first: int = 1, limit: int = TAG_UNIVERSE) -> None:
        if not 0 <= first < limit <= TAG_UNIVERSE:
            raise ValueError("invalid tag allocator range")
        self._limit = limit
        self._counter = itertools.count(first)
        self._allocated: dict[int, Tag] = {}

    def alloc(self, name: str = "") -> Tag:
        """Return a fresh, never-before-seen tag."""
        value = next(self._counter)
        if value >= self._limit:
            raise TagExhaustedError(
                f"tag universe of {self._limit} values exhausted"
            )
        tag = Tag(value, name)
        self._allocated[value] = tag
        return tag

    def lookup(self, value: int) -> Tag | None:
        """Return the allocated tag with ``value``, or ``None``.

        Used by the simulated filesystem when re-hydrating labels from
        persisted extended attributes.
        """
        return self._allocated.get(value)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def __contains__(self, tag: Tag) -> bool:
        return self._allocated.get(tag.value) is not None
