"""The information-flow rules of Section 3.2.

Information flow is defined from a source ``x`` to a destination ``y``, at
least one of which is a principal.  Both carry a secrecy label ``S`` and an
integrity label ``I``:

* **Secrecy** (Bell–LaPadula simple security + *-property):
  flow from ``x`` to ``y`` preserves secrecy iff ``S_x ⊆ S_y``
  ("no read up, no write down").
* **Integrity** (Biba): flow preserves integrity iff ``I_y ⊆ I_x``
  ("no read down, no write up") — the source must be at least as
  high-integrity as the destination requires.
* **Label change**: a principal ``p`` may change its label from ``L1`` to
  ``L2`` iff ``(L2 − L1) ⊆ Cp+`` and ``(L1 − L2) ⊆ Cp−``.  Laminar requires
  label changes to be explicit; implicit changes would form a covert storage
  channel (Zeldovich et al.).

These functions are the single source of truth: the VM barriers, the OS
security module, the Flume baseline, and the applications all call into
here, which is how the paper achieves "a single set of abstractions for OS
resources and heap-allocated objects".
"""

from __future__ import annotations

from . import fastpath
from .capabilities import CapabilitySet
from .errors import (
    IntegrityViolation,
    LabelChangeViolation,
    SecrecyViolation,
)
from .fastpath import counters
from .labels import Label, LabelPair


def secrecy_allows(source: Label, dest: Label) -> bool:
    """``S_x ⊆ S_y``: the destination must be at least as secret."""
    counters.rule_evaluations += 1
    return source.is_subset_of(dest)


def integrity_allows(source: Label, dest: Label) -> bool:
    """``I_y ⊆ I_x``: the source must be at least as high-integrity."""
    counters.rule_evaluations += 1
    return dest.is_subset_of(source)


# -- the flow-verdict cache (an AVC for check_flow/can_flow) -----------------
#
# Labels are immutable, so the verdict for a (source, dest) pair of label
# pairs can never change — the cache needs *no* invalidation protocol, only
# a size bound (flushed wholesale on overflow, like a hardware AVC).  The
# verdict distinguishes which rule failed so check_flow can still raise the
# precise violation; diagnostic detail (the offending tag difference) is
# recomputed on the rare failure path.

FLOW_OK = 0
FLOW_SECRECY_FAIL = 1
FLOW_INTEGRITY_FAIL = 2

_VERDICTS: dict[tuple, int] = {}
_VERDICT_BOUND = 1 << 12


def _clear_verdicts() -> None:
    _VERDICTS.clear()


fastpath.register_cache(_clear_verdicts)


def flow_verdict(source: LabelPair, dest: LabelPair) -> int:
    """Evaluate (or recall) the Section 3.2 verdict for ``source -> dest``."""
    cache = fastpath.flags.flow_verdict_cache
    if cache:
        key = (source.secrecy, source.integrity, dest.secrecy, dest.integrity)
        verdict = _VERDICTS.get(key)
        if verdict is not None:
            counters.verdict_hits += 1
            return verdict
        counters.verdict_misses += 1
    if not secrecy_allows(source.secrecy, dest.secrecy):
        verdict = FLOW_SECRECY_FAIL
    elif not integrity_allows(source.integrity, dest.integrity):
        verdict = FLOW_INTEGRITY_FAIL
    else:
        verdict = FLOW_OK
    if cache:
        if len(_VERDICTS) >= _VERDICT_BOUND:
            _VERDICTS.clear()
        _VERDICTS[key] = verdict
    return verdict


def can_flow(source: LabelPair, dest: LabelPair) -> bool:
    """True iff information may flow from ``source`` to ``dest`` under both
    the secrecy and the integrity rule."""
    return flow_verdict(source, dest) == FLOW_OK


def check_flow(source: LabelPair, dest: LabelPair, context: str = "") -> None:
    """Raise the precise violation if the flow ``source -> dest`` is illegal.

    ``context`` is a human-readable description (e.g. ``"write to /etc/cal"``)
    included in the exception message for auditability.
    """
    verdict = flow_verdict(source, dest)
    if verdict == FLOW_OK:
        return
    suffix = f" ({context})" if context else ""
    if verdict == FLOW_SECRECY_FAIL:
        leaked = source.secrecy.difference(dest.secrecy)
        raise SecrecyViolation(
            f"secrecy rule S_x ⊆ S_y failed: tags {leaked!r} of source "
            f"{source!r} missing from destination {dest!r}{suffix}"
        )
    missing = dest.integrity.difference(source.integrity)
    raise IntegrityViolation(
        f"integrity rule I_y ⊆ I_x failed: destination {dest!r} requires "
        f"tags {missing!r} the source {source!r} does not carry{suffix}"
    )


def can_change_label(old: Label, new: Label, caps: CapabilitySet) -> bool:
    """The explicit label-change rule:
    ``(new − old) ⊆ Cp+`` and ``(old − new) ⊆ Cp−``."""
    added = new.difference(old)
    removed = old.difference(new)
    return caps.can_add_all(added) and caps.can_remove_all(removed)


def check_label_change(
    old: Label, new: Label, caps: CapabilitySet, context: str = ""
) -> None:
    """Raise :class:`LabelChangeViolation` if ``old -> new`` is not permitted
    by ``caps``."""
    suffix = f" ({context})" if context else ""
    added = new.difference(old)
    removed = old.difference(new)
    if not caps.can_add_all(added):
        lacking = Label(t for t in added if not caps.can_add(t))
        raise LabelChangeViolation(
            f"label change {old!r} -> {new!r} adds tags {lacking!r} without "
            f"the plus capability{suffix}"
        )
    if not caps.can_remove_all(removed):
        lacking = Label(t for t in removed if not caps.can_remove(t))
        raise LabelChangeViolation(
            f"label change {old!r} -> {new!r} drops tags {lacking!r} without "
            f"the minus capability{suffix}"
        )


def check_pair_change(
    old: LabelPair, new: LabelPair, caps: CapabilitySet, context: str = ""
) -> None:
    """Apply the label-change rule independently to secrecy and integrity."""
    check_label_change(old.secrecy, new.secrecy, caps, context=f"secrecy {context}".strip())
    check_label_change(old.integrity, new.integrity, caps, context=f"integrity {context}".strip())


def region_entry_allowed(
    region_secrecy: Label,
    region_integrity: Label,
    region_caps: CapabilitySet,
    thread_pair: LabelPair,
    thread_caps: CapabilitySet,
) -> bool:
    """Security-region initialization rules (Section 4.3.2):

    1. ``S_R ⊆ (Cp+ ∪ S_P)`` and ``I_R ⊆ (Cp+ ∪ I_P)`` — the entering
       principal must hold either the add capability or the label itself for
       every tag the region will carry.
    2. ``C_R ⊆ C_P`` — the region retains only a subset of the principal's
       capabilities.
    """
    plus = thread_caps.plus_tags()
    if not region_secrecy.is_subset_of(plus.union(thread_pair.secrecy)):
        return False
    if not region_integrity.is_subset_of(plus.union(thread_pair.integrity)):
        return False
    return region_caps.is_subset_of(thread_caps)


def labeled_create_allowed(
    principal: LabelPair,
    principal_caps: CapabilitySet,
    file_pair: LabelPair,
    parent_writable: bool,
) -> bool:
    """The labeled file/directory creation rule of Section 5.2.

    A principal with non-empty labels ``{S_p, I_p}`` may create a file with
    labels ``{S_f, I_f}`` iff

    1. ``S_p ⊆ S_f`` and ``I_f ⊆ I_p`` (the creation itself is a flow from
       principal to file);
    2. the principal has the capabilities to acquire its current labels
       (so the labels are legitimate, not inherited by accident); and
    3. the principal can write the parent directory with its current label
       (a new directory entry is a write to the parent, and the file *name*
       is protected by the parent's label).
    """
    if not principal.secrecy.is_subset_of(file_pair.secrecy):
        return False
    if not file_pair.integrity.is_subset_of(principal.integrity):
        return False
    # "has capabilities to acquire labels {Sp, Ip}": every tag the principal
    # currently carries must be one it could have added itself.
    plus = principal_caps.plus_tags()
    if not principal.secrecy.is_subset_of(plus):
        return False
    if not principal.integrity.is_subset_of(plus):
        return False
    return parent_writable
