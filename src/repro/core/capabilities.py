"""Capabilities: the privilege to add or remove tags.

For each tag ``t`` the model defines two capabilities (Section 3.1):

* ``t+`` — the *plus* capability: classify data with secrecy tag ``t`` (add
  ``t`` to one's secrecy label) or endorse data with integrity tag ``t``.
* ``t-`` — the *minus* capability: declassify (remove ``t`` from a secrecy
  label) or drop an endorsement.

A principal's capability set ``Cp`` is defined on tags, not on labels: the
same tag could in principle appear in both a secrecy and an integrity label,
though in practice a tag is rarely used for both purposes.  ``Cp+`` is the
set of tags the principal may add, ``Cp-`` the set it may remove.

DIFC capabilities are *not* the pointers-with-access-rights of
capability-based operating systems like EROS; they are transferable,
kernel-mediated privileges over tags (Section 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from .labels import Label
from .tags import Tag


class CapType(enum.Enum):
    """Which capability an operation refers to (Fig. 2's CapType)."""

    PLUS = "+"
    MINUS = "-"
    BOTH = "+-"


@dataclass(frozen=True)
class Capability:
    """A single capability: a (tag, plus-or-minus) pair such as ``a+``."""

    tag: Tag
    kind: CapType

    def sort_key(self) -> tuple[Tag, str]:
        return (self.tag, self.kind.value)

    def __post_init__(self) -> None:
        if self.kind is CapType.BOTH:
            raise ValueError(
                "a concrete Capability is either PLUS or MINUS; "
                "use CapabilitySet.dual() for both"
            )

    def __repr__(self) -> str:
        return f"{self.tag}{self.kind.value}"


class CapabilitySet:
    """An immutable set of capabilities.

    Immutability matches the style of the label objects: threads and
    security regions hold references to capability sets, and every
    drop/grant produces a new set, so save/restore at region boundaries is a
    pointer swap (Section 4.4's "the VM restores the labels and capabilities
    it had just before it entered the region").
    """

    __slots__ = ("_caps", "_hash")

    EMPTY: "CapabilitySet"

    def __init__(self, caps: Iterable[Capability] = ()) -> None:
        caps = frozenset(caps)
        for cap in caps:
            if not isinstance(cap, Capability):
                raise TypeError(
                    f"capability sets contain Capabilities, not {type(cap).__name__}"
                )
        self._caps = caps
        self._hash = hash(caps)

    # -- factories --------------------------------------------------------

    @classmethod
    def dual(cls, *tags: Tag) -> "CapabilitySet":
        """Both ``t+`` and ``t-`` for every tag — what ``alloc_tag`` grants
        the allocating principal (the owner of the tag)."""
        caps = []
        for tag in tags:
            caps.append(Capability(tag, CapType.PLUS))
            caps.append(Capability(tag, CapType.MINUS))
        return cls(caps)

    @classmethod
    def plus(cls, *tags: Tag) -> "CapabilitySet":
        return cls(Capability(t, CapType.PLUS) for t in tags)

    @classmethod
    def minus(cls, *tags: Tag) -> "CapabilitySet":
        return cls(Capability(t, CapType.MINUS) for t in tags)

    # -- queries ----------------------------------------------------------

    def can_add(self, tag: Tag) -> bool:
        """True iff the set holds ``tag+`` (classify/endorse)."""
        return Capability(tag, CapType.PLUS) in self._caps

    def can_remove(self, tag: Tag) -> bool:
        """True iff the set holds ``tag-`` (declassify/un-endorse)."""
        return Capability(tag, CapType.MINUS) in self._caps

    def can_add_all(self, label: Label) -> bool:
        return all(self.can_add(tag) for tag in label)

    def can_remove_all(self, label: Label) -> bool:
        return all(self.can_remove(tag) for tag in label)

    def plus_tags(self) -> Label:
        """``Cp+`` as a label: the set of tags this principal may add."""
        return Label._from_normalized(
            tuple(sorted(c.tag for c in self._caps if c.kind is CapType.PLUS))
        )

    def minus_tags(self) -> Label:
        """``Cp-`` as a label: the set of tags this principal may remove."""
        return Label._from_normalized(
            tuple(sorted(c.tag for c in self._caps if c.kind is CapType.MINUS))
        )

    def is_subset_of(self, other: "CapabilitySet") -> bool:
        return self._caps <= other._caps

    # -- algebra ----------------------------------------------------------

    def union(self, other: "CapabilitySet") -> "CapabilitySet":
        if self._caps >= other._caps:
            return self
        if other._caps >= self._caps:
            return other
        return CapabilitySet(self._caps | other._caps)

    def intersection(self, other: "CapabilitySet") -> "CapabilitySet":
        return CapabilitySet(self._caps & other._caps)

    def with_capability(self, cap: Capability) -> "CapabilitySet":
        if cap in self._caps:
            return self
        return CapabilitySet(self._caps | {cap})

    def without(self, tag: Tag, kind: CapType) -> "CapabilitySet":
        """Drop ``tag``'s plus, minus, or both capabilities."""
        if kind is CapType.BOTH:
            doomed = {Capability(tag, CapType.PLUS), Capability(tag, CapType.MINUS)}
        else:
            doomed = {Capability(tag, kind)}
        return CapabilitySet(self._caps - doomed)

    def without_all(self, other: "CapabilitySet") -> "CapabilitySet":
        return CapabilitySet(self._caps - other._caps)

    # -- dunder -------------------------------------------------------------

    def __iter__(self) -> Iterator[Capability]:
        return iter(sorted(self._caps, key=Capability.sort_key))

    def __len__(self) -> int:
        return len(self._caps)

    def __contains__(self, cap: Capability) -> bool:
        return cap in self._caps

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CapabilitySet):
            return NotImplemented
        return self._caps == other._caps

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ",".join(repr(c) for c in sorted(self._caps, key=Capability.sort_key))
        return f"C({inner})"

    def __reduce__(self):
        # Constructor-based pickling, like Label/LabelPair: slotted classes
        # have no __dict__ for the default protocol, and going through
        # __init__ re-derives ``_hash`` on the receiving side.  Sorting
        # makes the wire bytes canonical, so capability-store replication
        # frames are deterministic across shards.
        return (CapabilitySet, (tuple(sorted(self._caps, key=Capability.sort_key)),))


CapabilitySet.EMPTY = CapabilitySet()
