"""Principals: the active entities of the DIFC model.

Principals in Laminar are kernel threads (Section 3).  Each principal ``p``
carries a secrecy label ``S_p``, an integrity label ``I_p``, and a
capability set ``C_p``.  This module defines the shared state machine used
by both the simulated kernel's tasks (:mod:`repro.osim.task`) and the VM's
threads (:mod:`repro.runtime.threads`): labels change only through the
explicit label-change rule; capabilities shrink monotonically except through
mediated acquisition (``alloc_tag``, fork inheritance, ``write_capability``).
"""

from __future__ import annotations

from .capabilities import Capability, CapabilitySet, CapType
from .errors import CapabilityViolation
from .labels import Label, LabelPair, LabelType
from .rules import check_label_change
from .tags import Tag


class Principal:
    """Mutable security state of one principal.

    The mutability lives here, in one audited place; labels and capability
    sets themselves stay immutable, so observers can safely cache references.
    """

    __slots__ = ("name", "_labels", "_caps", "label_epoch")

    def __init__(
        self,
        name: str = "",
        labels: LabelPair = LabelPair.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
    ) -> None:
        self.name = name
        self._labels = labels
        self._caps = caps
        #: Monotonic counter bumped on every label change.  Per-thread
        #: barrier-verdict caches (Section 5.1 fast path) key their
        #: validity on this, so a ``set_task_label``/TCB label write
        #: implicitly invalidates any verdicts cached under the old labels.
        self.label_epoch = 0

    # -- read side --------------------------------------------------------

    @property
    def labels(self) -> LabelPair:
        return self._labels

    @property
    def secrecy(self) -> Label:
        return self._labels.secrecy

    @property
    def integrity(self) -> Label:
        return self._labels.integrity

    @property
    def capabilities(self) -> CapabilitySet:
        return self._caps

    # -- label changes (rule-checked) --------------------------------------

    def set_label(self, label_type: LabelType, new: Label) -> None:
        """Explicit label change, checked against the principal's own
        capabilities (the ``set_task_label`` path)."""
        old = self._labels.get(label_type)
        check_label_change(old, new, self._caps, context=f"{self.name} {label_type.value}")
        self._labels = self._labels.replacing(label_type, new)
        self.label_epoch += 1

    def set_labels_unchecked(self, pair: LabelPair) -> None:
        """Set both labels without capability checks.

        Only two callers are legitimate: the VM when entering/exiting a
        security region (the entry rules were already checked), and the
        kernel's ``drop_label_tcb`` path invoked by the trusted TCB thread.
        """
        self._labels = pair
        self.label_epoch += 1

    # -- capability management ---------------------------------------------

    def grant(self, caps: CapabilitySet) -> None:
        """Add capabilities.  Callers must be mediated acquisition points:
        ``alloc_tag``, fork inheritance, or ``write_capability``."""
        self._caps = self._caps.union(caps)

    def drop_capability(self, tag: Tag, kind: CapType) -> None:
        """Permanently drop a capability (``drop_capabilities`` syscall /
        ``removeCapability(global=True)``)."""
        self._caps = self._caps.without(tag, kind)

    def replace_capabilities(self, caps: CapabilitySet) -> None:
        """Replace the capability set wholesale (used by region save/restore
        and by fork, both of which only ever *narrow* the set)."""
        self._caps = caps

    def require_capability(self, tag: Tag, kind: CapType) -> None:
        """Raise unless the principal holds the given capability."""
        if kind is CapType.PLUS and not self._caps.can_add(tag):
            raise CapabilityViolation(f"{self.name or 'principal'} lacks {tag}+")
        if kind is CapType.MINUS and not self._caps.can_remove(tag):
            raise CapabilityViolation(f"{self.name or 'principal'} lacks {tag}-")
        if kind is CapType.BOTH:
            if not (self._caps.can_add(tag) and self._caps.can_remove(tag)):
                raise CapabilityViolation(
                    f"{self.name or 'principal'} lacks {tag}+ and/or {tag}-"
                )

    def holds(self, cap: Capability) -> bool:
        return cap in self._caps

    def __repr__(self) -> str:
        return f"Principal({self.name!r}, {self._labels!r}, {self._caps!r})"
