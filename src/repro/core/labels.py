"""Immutable labels: sets of tags forming a lattice under subset ordering.

A *label* is a set of tags (Section 3.1).  Every data object and principal
carries two labels: a secrecy label ``S`` and an integrity label ``I``.  The
partial order imposed by the subset relation forms a lattice (Denning 1976);
at the bottom sit unlabeled resources, which carry the empty label for both
secrecy and integrity.  The implicit empty label is what makes Laminar
incrementally deployable: neither every object in the heap nor every file in
the filesystem needs an explicit label.

The paper's implementation encapsulates labels in immutable, opaque objects
of type ``Labels`` that support ``isSubsetOf()`` and ``union()``; internally
a sorted array of 64-bit integers holds the tags, and because the objects
are immutable they can be freely shared between objects, security regions,
and threads (Section 5.1).  This module mirrors that design: a
:class:`Label` wraps a sorted tuple of tags, is hashable, interns the empty
label, and exposes only set-algebraic operations so applications can use
labels without observing raw tag values (avoiding a covert channel).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from .tags import Tag


class LabelType(enum.Enum):
    """Which of the two labels an operation refers to (Fig. 2's LabelType)."""

    SECRECY = "secrecy"
    INTEGRITY = "integrity"


class Label:
    """An immutable set of tags.

    Supports the operations the paper's ``Labels`` type exposes —
    ``is_subset_of`` and ``union`` — plus difference and intersection, which
    the label-change rule and the security-region entry rules need.  All
    mutating-style operations return a (possibly shared) new ``Label``.
    """

    __slots__ = ("_tags", "_hash")

    #: Interned empty label, shared by all unlabeled resources.
    EMPTY: "Label"

    def __init__(self, tags: Iterable[Tag] = ()) -> None:
        tags = tuple(sorted(set(tags)))
        for tag in tags:
            if not isinstance(tag, Tag):
                raise TypeError(f"labels contain Tags, not {type(tag).__name__}")
        self._tags = tags
        self._hash = hash(tags)

    # -- factory helpers ------------------------------------------------

    @classmethod
    def of(cls, *tags: Tag) -> "Label":
        """Build a label from individual tags: ``Label.of(a, b)``."""
        return cls(tags)

    @classmethod
    def empty(cls) -> "Label":
        return cls.EMPTY

    # -- set algebra ----------------------------------------------------

    def is_subset_of(self, other: "Label") -> bool:
        """True iff every tag in ``self`` is also in ``other``."""
        return set(self._tags) <= set(other._tags)

    def union(self, other: "Label") -> "Label":
        """Least upper bound in the lattice."""
        if self.is_subset_of(other):
            return other
        if other.is_subset_of(self):
            return self
        return Label(self._tags + other._tags)

    def intersection(self, other: "Label") -> "Label":
        """Greatest lower bound in the lattice."""
        mine = set(self._tags)
        return Label(tag for tag in other._tags if tag in mine)

    def difference(self, other: "Label") -> "Label":
        """Tags in ``self`` but not ``other`` (used by the label-change rule)."""
        theirs = set(other._tags)
        return Label(tag for tag in self._tags if tag not in theirs)

    def with_tag(self, tag: Tag) -> "Label":
        """Return a label extended with ``tag``."""
        if tag in self:
            return self
        return Label(self._tags + (tag,))

    def without_tag(self, tag: Tag) -> "Label":
        """Return a label with ``tag`` removed (no-op if absent)."""
        if tag not in self:
            return self
        return Label(t for t in self._tags if t != tag)

    # -- inspection -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._tags

    def tags(self) -> tuple[Tag, ...]:
        """The tags, as a sorted tuple.

        Only trusted code (the VM, the OS security module, tests) should
        inspect raw tags; the application-facing API in
        :mod:`repro.runtime.api` never exposes them.
        """
        return self._tags

    def __iter__(self) -> Iterator[Tag]:
        return iter(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, tag: Tag) -> bool:
        return tag in set(self._tags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self._tags == other._tags

    def __le__(self, other: "Label") -> bool:
        return self.is_subset_of(other)

    def __lt__(self, other: "Label") -> bool:
        return self.is_subset_of(other) and self != other

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ",".join(str(t) for t in self._tags)
        return f"{{{inner}}}"


Label.EMPTY = Label()


class LabelPair:
    """A (secrecy, integrity) pair, written ``{S(s), I(i)}`` in the paper.

    Every principal and data object carries one of these.  The pair is
    immutable, like its component labels.
    """

    __slots__ = ("secrecy", "integrity")

    EMPTY: "LabelPair"

    def __init__(
        self,
        secrecy: Label = Label.EMPTY,
        integrity: Label = Label.EMPTY,
    ) -> None:
        if not isinstance(secrecy, Label) or not isinstance(integrity, Label):
            raise TypeError("LabelPair components must be Labels")
        object.__setattr__(self, "secrecy", secrecy)
        object.__setattr__(self, "integrity", integrity)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LabelPair is immutable")

    def get(self, label_type: LabelType) -> Label:
        if label_type is LabelType.SECRECY:
            return self.secrecy
        return self.integrity

    def replacing(self, label_type: LabelType, label: Label) -> "LabelPair":
        if label_type is LabelType.SECRECY:
            return LabelPair(label, self.integrity)
        return LabelPair(self.secrecy, label)

    @property
    def is_empty(self) -> bool:
        return self.secrecy.is_empty and self.integrity.is_empty

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelPair):
            return NotImplemented
        return self.secrecy == other.secrecy and self.integrity == other.integrity

    def __hash__(self) -> int:
        return hash((self.secrecy, self.integrity))

    def __repr__(self) -> str:
        return f"{{S{self.secrecy!r},I{self.integrity!r}}}"


LabelPair.EMPTY = LabelPair()
