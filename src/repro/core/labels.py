"""Immutable labels: sets of tags forming a lattice under subset ordering.

A *label* is a set of tags (Section 3.1).  Every data object and principal
carries two labels: a secrecy label ``S`` and an integrity label ``I``.  The
partial order imposed by the subset relation forms a lattice (Denning 1976);
at the bottom sit unlabeled resources, which carry the empty label for both
secrecy and integrity.  The implicit empty label is what makes Laminar
incrementally deployable: neither every object in the heap nor every file in
the filesystem needs an explicit label.

The paper's implementation encapsulates labels in immutable, opaque objects
of type ``Labels`` that support ``isSubsetOf()`` and ``union()``; internally
a sorted array of 64-bit integers holds the tags, and because the objects
are immutable they can be freely shared between objects, security regions,
and threads (Section 5.1).  This module mirrors that design and pushes the
immutability one step further: construction is *hash-consed* (one canonical
``Label`` instance per tag-set, see :mod:`repro.core.fastpath`), so the
common case of ``==`` and ``is_subset_of`` is a pointer comparison, and
``union``/``difference`` results are memoized — sound precisely because a
label can never change after construction.  A :class:`Label` keeps both the
sorted tuple (ordering, iteration, repr) and a ``frozenset`` built once at
construction (subset tests without per-call materialization), is hashable,
and exposes only set-algebraic operations so applications can use labels
without observing raw tag values (avoiding a covert channel).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from . import fastpath
from .fastpath import counters
from .tags import Tag

#: Hash-cons table: normalized tag tuple -> canonical Label.  Bounded so a
#: pathological tag-churn workload cannot grow it without limit; labels past
#: the bound are simply not interned (correctness never depends on interning).
_INTERN: dict[tuple, "Label"] = {}
_INTERN_BOUND = 1 << 16

#: Memo tables for the two hottest binary operations.  Keys are (self, other)
#: Label pairs — value-hashed, so they are sound even when interning is off —
#: and bounded with wholesale flush on overflow, AVC-style.
_UNION_MEMO: dict[tuple, "Label"] = {}
_DIFF_MEMO: dict[tuple, "Label"] = {}
_MEMO_BOUND = 1 << 12


def _clear_label_caches() -> None:
    _INTERN.clear()
    _UNION_MEMO.clear()
    _DIFF_MEMO.clear()
    # Keep the canonical empty label canonical across flushes.
    if getattr(Label, "EMPTY", None) is not None:
        _INTERN[()] = Label.EMPTY


fastpath.register_cache(_clear_label_caches)


class LabelType(enum.Enum):
    """Which of the two labels an operation refers to (Fig. 2's LabelType)."""

    SECRECY = "secrecy"
    INTEGRITY = "integrity"


class Label:
    """An immutable, hash-consed set of tags.

    Supports the operations the paper's ``Labels`` type exposes —
    ``is_subset_of`` and ``union`` — plus difference and intersection, which
    the label-change rule and the security-region entry rules need.  All
    mutating-style operations return a (possibly shared) new ``Label``.
    """

    __slots__ = ("_tags", "_frozen", "_hash")

    #: Interned empty label, shared by all unlabeled resources.
    EMPTY: "Label"

    def __new__(cls, tags: Iterable[Tag] = ()) -> "Label":
        tags = tuple(sorted(set(tags)))
        for tag in tags:
            if not isinstance(tag, Tag):
                raise TypeError(f"labels contain Tags, not {type(tag).__name__}")
        return cls._from_normalized(tags)

    def __init__(self, tags: Iterable[Tag] = ()) -> None:
        # All construction work happens in __new__ so the hash-cons table
        # can return an existing instance without re-initializing it.
        pass

    @classmethod
    def _from_normalized(cls, tags: tuple[Tag, ...]) -> "Label":
        """Trusted fast constructor: ``tags`` must already be a sorted,
        duplicate-free tuple of :class:`Tag`.  Skips validation — internal
        set-algebra call sites produce normalized tuples by construction,
        so re-validating them on every ``union`` was pure overhead.
        """
        if fastpath.flags.label_interning:
            cached = _INTERN.get(tags)
            if cached is not None:
                counters.intern_hits += 1
                return cached
            counters.intern_misses += 1
        self = object.__new__(cls)
        self._tags = tags
        self._frozen = frozenset(tags)
        self._hash = hash(tags)
        if fastpath.flags.label_interning and len(_INTERN) < _INTERN_BOUND:
            _INTERN[tags] = self
        return self

    # -- factory helpers ------------------------------------------------

    @classmethod
    def of(cls, *tags: Tag) -> "Label":
        """Build a label from individual tags: ``Label.of(a, b)``."""
        return cls(tags)

    @classmethod
    def from_wire(cls, entries: Iterable[tuple[int, str]]) -> "Label":
        """Trusted decode path for the binary wire codec: rebuild a label
        from ``(tag value, tag name)`` pairs *in encoded order*.

        The encoder emits ``label.tags()``, which is sorted by tag value
        (names are excluded from Tag ordering), so the received sequence
        is already normalized and construction can go straight through
        :meth:`_from_normalized` — one intern-table probe, no sorting, no
        per-tag validation.  Only wire decoders may call this; arbitrary
        input must use the ordinary constructor.
        """
        return cls._from_normalized(
            tuple(Tag(value, name) for value, name in entries)
        )

    @classmethod
    def empty(cls) -> "Label":
        return cls.EMPTY

    # -- set algebra ----------------------------------------------------

    def is_subset_of(self, other: "Label") -> bool:
        """True iff every tag in ``self`` is also in ``other``.

        Fast paths in order: identity (canonical instances make this the
        common case), emptiness, and a length test; only then the real
        frozenset comparison — built once at construction, never per call.
        """
        if self is other:
            return True
        mine = self._tags
        if not mine:
            return True
        if len(mine) > len(other._tags):
            return False
        counters.subset_tests += 1
        return self._frozen <= other._frozen

    def union(self, other: "Label") -> "Label":
        """Least upper bound in the lattice (memoized)."""
        if self is other or not other._tags:
            return self
        if not self._tags:
            return other
        memoize = fastpath.flags.label_interning
        if memoize:
            key = (self, other)
            cached = _UNION_MEMO.get(key)
            if cached is not None:
                counters.memo_hits += 1
                return cached
            counters.memo_misses += 1
        if self.is_subset_of(other):
            result = other
        elif other.is_subset_of(self):
            result = self
        else:
            counters.materializations += 1
            result = Label._from_normalized(
                tuple(sorted(self._frozen | other._frozen))
            )
        if memoize:
            if len(_UNION_MEMO) >= _MEMO_BOUND:
                _UNION_MEMO.clear()
            _UNION_MEMO[key] = result
        return result

    def intersection(self, other: "Label") -> "Label":
        """Greatest lower bound in the lattice."""
        if self is other:
            return self
        if not self._tags or not other._tags:
            return Label.EMPTY
        counters.materializations += 1
        theirs = other._frozen
        return Label._from_normalized(
            tuple(tag for tag in self._tags if tag in theirs)
        )

    def difference(self, other: "Label") -> "Label":
        """Tags in ``self`` but not ``other`` (used by the label-change rule,
        memoized)."""
        if self is other or not self._tags:
            return Label.EMPTY
        if not other._tags:
            return self
        memoize = fastpath.flags.label_interning
        if memoize:
            key = (self, other)
            cached = _DIFF_MEMO.get(key)
            if cached is not None:
                counters.memo_hits += 1
                return cached
            counters.memo_misses += 1
        counters.materializations += 1
        theirs = other._frozen
        result = Label._from_normalized(
            tuple(tag for tag in self._tags if tag not in theirs)
        )
        if memoize:
            if len(_DIFF_MEMO) >= _MEMO_BOUND:
                _DIFF_MEMO.clear()
            _DIFF_MEMO[key] = result
        return result

    def with_tag(self, tag: Tag) -> "Label":
        """Return a label extended with ``tag``."""
        if tag in self._frozen:
            return self
        counters.materializations += 1
        return Label._from_normalized(tuple(sorted(self._tags + (tag,))))

    def without_tag(self, tag: Tag) -> "Label":
        """Return a label with ``tag`` removed (no-op if absent)."""
        if tag not in self._frozen:
            return self
        counters.materializations += 1
        return Label._from_normalized(
            tuple(t for t in self._tags if t != tag)
        )

    # -- inspection -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._tags

    def tags(self) -> tuple[Tag, ...]:
        """The tags, as a sorted tuple.

        Only trusted code (the VM, the OS security module, tests) should
        inspect raw tags; the application-facing API in
        :mod:`repro.runtime.api` never exposes them.
        """
        return self._tags

    def __iter__(self) -> Iterator[Tag]:
        return iter(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._frozen

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Label):
            return NotImplemented
        return self._tags == other._tags

    def __le__(self, other: "Label") -> bool:
        return self.is_subset_of(other)

    def __lt__(self, other: "Label") -> bool:
        return self.is_subset_of(other) and self != other

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # copy/deepcopy/pickle must reconstruct through the constructor so
        # they land on the canonical interned instance.  The default slots
        # protocol would call ``__new__(cls)`` — which interning resolves
        # to ``Label.EMPTY`` — and then overwrite *its* state in place,
        # corrupting every empty label in the process.
        return (Label, (self._tags,))

    def __repr__(self) -> str:
        inner = ",".join(str(t) for t in self._tags)
        return f"{{{inner}}}"


Label.EMPTY = Label()


class LabelPair:
    """A (secrecy, integrity) pair, written ``{S(s), I(i)}`` in the paper.

    Every principal and data object carries one of these.  The pair is
    immutable, like its component labels, and caches its hash at
    construction — pairs are dictionary keys in the flow-verdict caches, so
    hashing is on the barrier hot path.
    """

    __slots__ = ("secrecy", "integrity", "_hash")

    EMPTY: "LabelPair"

    def __init__(
        self,
        secrecy: Label = Label.EMPTY,
        integrity: Label = Label.EMPTY,
    ) -> None:
        if not isinstance(secrecy, Label) or not isinstance(integrity, Label):
            raise TypeError("LabelPair components must be Labels")
        object.__setattr__(self, "secrecy", secrecy)
        object.__setattr__(self, "integrity", integrity)
        object.__setattr__(self, "_hash", hash((secrecy, integrity)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LabelPair is immutable")

    def get(self, label_type: LabelType) -> Label:
        if label_type is LabelType.SECRECY:
            return self.secrecy
        return self.integrity

    def replacing(self, label_type: LabelType, label: Label) -> "LabelPair":
        if label_type is LabelType.SECRECY:
            return LabelPair(label, self.integrity)
        return LabelPair(self.secrecy, label)

    @property
    def is_empty(self) -> bool:
        return self.secrecy.is_empty and self.integrity.is_empty

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LabelPair):
            return NotImplemented
        return self.secrecy == other.secrecy and self.integrity == other.integrity

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Same constructor-based protocol as Label: the default slots path
        # would bypass ``__init__`` and then trip over the immutability
        # guard in ``__setattr__`` when restoring state.
        return (LabelPair, (self.secrecy, self.integrity))

    def __repr__(self) -> str:
        return f"{{S{self.secrecy!r},I{self.integrity!r}}}"


LabelPair.EMPTY = LabelPair()
