"""Control-flow graph utilities over IR methods.

The redundant-barrier-elimination pass is a forward *must* dataflow
analysis, so it needs predecessor maps and a reverse-postorder worklist
seed; both live here, along with small structural helpers shared by the
passes.
"""

from __future__ import annotations

from .ir import BasicBlock, Method


class CFG:
    """Successor/predecessor view of one method."""

    def __init__(self, method: Method) -> None:
        self.method = method
        self.succs: dict[str, tuple[str, ...]] = {}
        self.preds: dict[str, list[str]] = {label: [] for label in method.blocks}
        for label, block in method.blocks.items():
            succs = block.successors()
            self.succs[label] = succs
            for succ in succs:
                self.preds[succ].append(label)

    @property
    def entry(self) -> str:
        assert self.method.entry is not None
        return self.method.entry

    def block(self, label: str) -> BasicBlock:
        return self.method.blocks[label]

    def reverse_postorder(self) -> list[str]:
        """Reverse postorder from the entry; unreachable blocks come last
        (they still get processed so the passes stay total)."""
        seen: set[str] = set()
        order: list[str] = []

        def dfs(label: str) -> None:
            # Iterative DFS with an explicit stack to survive deep CFGs.
            stack: list[tuple[str, int]] = [(label, 0)]
            seen.add(label)
            while stack:
                current, idx = stack.pop()
                succs = self.succs[current]
                if idx < len(succs):
                    stack.append((current, idx + 1))
                    nxt = succs[idx]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)

        dfs(self.entry)
        postorder = list(reversed(order))
        for label in self.method.blocks:
            if label not in seen:
                postorder.append(label)
        return postorder

    def reachable(self) -> set[str]:
        seen = {self.entry}
        work = [self.entry]
        while work:
            for succ in self.succs[work.pop()]:
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen
