"""The IR interpreter: executes compiled programs against a Laminar VM.

The interpreter plays the role of the Jikes RVM execution engine for the
mini-JIT: it runs the (possibly instrumented) IR, executing barrier
pseudo-instructions with exactly the semantics of
:mod:`repro.runtime.barriers` and accounting them into the VM's
:class:`~repro.runtime.barriers.BarrierStats`, so the Fig. 8 harness reads
one set of counters regardless of which layer did the work.

Barrier flavors at execution time:

* ``STATIC_IN`` / ``STATIC_OUT`` run the single compiled-in variant.  If
  the *actual* thread context disagrees with the compiled assumption the
  interpreter raises :class:`StaleCompilationError` — this is the paper's
  observation that the static-barrier prototype "fails if a method is
  called from both within and without a security region" (method cloning
  or dynamic barriers are the fixes).
* ``DYNAMIC`` pays a context test (counted as a dynamic dispatch), then
  runs the right variant.

Region methods execute inside ``vm.region(...)`` built from the method's
:class:`~repro.jit.ir.RegionSpec`; the static region checker has already
guaranteed they return nothing.

Execution tiers.  :meth:`Interpreter._execute` dispatches either through
the plain switch loop (tier 0) or per-method handler tables (tier 1,
``fastpath.flags.dispatch_table``).  Handler tables are built once per
*program* — not per interpreter — and cached on it keyed by the program's
shape stamp; everything owned by one interpreter/VM (heap, stats, statics,
the executing thread) reaches the shared closures through an
:class:`ExecContext`.  When the program carries a
:class:`~repro.jit.tier2.TierPolicy` (``Compiler(tier="jit")`` /
``lamc --tier2``), a :class:`~repro.jit.tier2.Tier2Engine` profiles method
invocations here and back-edges in both dispatch loops, and promotes hot
methods to exec-compiled Python specialized to the observed label shape
(tier 2); see :mod:`repro.jit.tier2` for the guard/deopt protocol.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import LabelPair, RegionViolation, VMPanic, fastpath
from ..runtime.barriers import cached_check_flow
from ..runtime.vm import LaminarVM
from .ir import BarrierFlavor, Instr, Method, Opcode, Program, RegionSpec


class StaleCompilationError(VMPanic):
    """A statically compiled barrier executed in the opposite context."""


class IRObject:
    """Heap object payload: header + named fields."""

    __slots__ = ("header", "classname", "fields")

    def __init__(self, header: Any, classname: str, fields: dict[str, Any]) -> None:
        self.header = header
        self.classname = classname
        self.fields = fields

    def __repr__(self) -> str:
        return f"IRObject({self.classname}#{self.header.oid})"


class IRArray:
    """Heap array payload: header + items."""

    __slots__ = ("header", "items")

    def __init__(self, header: Any, items: list[Any]) -> None:
        self.header = header
        self.items = items

    def __repr__(self) -> str:
        return f"IRArray(#{self.header.oid}, len={len(self.items)})"


class IRThreadHandle:
    """A spawned-but-not-joined IR thread.

    The mini-JIT executes threads *join-synchronously*: ``spawn`` creates
    the VM thread (outside any region, like :meth:`LaminarVM.create_thread`
    requires) and captures the call; ``join`` runs the body to completion
    as that thread.  Execution is therefore deterministic — one fixed
    interleaving out of the many a preemptive scheduler could choose —
    which is exactly why the *static* race detector
    (:mod:`repro.analysis.races`) exists: it reasons about every
    interleaving, not just the one the interpreter picks.
    """

    __slots__ = ("callee", "args", "thread", "done")

    def __init__(self, callee: str, args: list[Any], thread: Any) -> None:
        self.callee = callee
        self.args = args
        self.thread = thread
        self.done = False

    def __repr__(self) -> str:
        state = "joined" if self.done else "pending"
        return f"IRThreadHandle({self.callee}, {state})"


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "mod": lambda a, b: a % b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "band": lambda a, b: a & b,
    "bor": lambda a, b: a | b,
    "bxor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
}

_UNOPS = {
    "neg": lambda a: -a,
    "not": lambda a: not a,
}

#: Sentinel marking a handler's "return from method" result; handlers
#: return ``None`` (fall through), a block label (jump), or ``(_RET, v)``.
_RET = object()

#: The out-of-region static-barrier violation text.  Byte-compared across
#: execution tiers (it lands in REGION_SUPPRESS audit records), so there
#: is exactly one copy.
_OUT_OF_REGION_MSG = "IR access to labeled object outside any security region"


class ExecContext:
    """Per-interpreter state threaded through the shared handler tables.

    Handler closures (and tier-2 compiled bodies) are cached on the
    :class:`~repro.jit.ir.Program` and shared by every interpreter over
    it, so anything owned by one interpreter/VM — heap, stats, statics,
    the executing thread — travels through this object instead of being
    closed over at table-build time.  ``thread`` is maintained by
    :meth:`Interpreter._execute_table` exactly like the old thread cell.
    """

    __slots__ = (
        "interp", "program", "heap", "stats", "statics", "output",
        "labeled", "thread",
    )

    def __init__(self, interp: "Interpreter") -> None:
        self.interp = interp
        self.program = interp.program
        self.heap = interp.vm.heap
        self.stats = interp.vm.barriers.stats
        self.statics = interp.statics
        self.output = interp.output
        self.labeled = interp.vm.heap.is_labeled
        self.thread = None


def build_handler_table(method: Method, program: Program) -> dict[str, list]:
    """Bind one handler closure per instruction, at method load.

    Operand decoding, opcode dispatch, field-list lookups, and BINOP
    function resolution all happen here, once per program (tables are
    cached on the :class:`~repro.jit.ir.Program`, keyed by its shape
    stamp).  Barrier handlers keep reading ``instr.flavor`` at run time
    (lint/elimination passes flip flavors in place), and CALL resolves
    its callee per execution (a method table must not pin another
    method's identity); everything else is baked.  Handlers receive
    ``(regs, ctx)`` where ``ctx`` is the executing interpreter's
    :class:`ExecContext`.
    """
    table: dict[str, list] = {}
    for block_label, block in method.blocks.items():
        handlers: list = []
        for instr in block.instrs:
            op = instr.op
            ops = instr.operands
            if op is Opcode.CONST:
                def h(regs, ctx, d=ops[0], v=ops[1]):
                    regs[d] = v
            elif op is Opcode.MOV:
                def h(regs, ctx, d=ops[0], s=ops[1]):
                    regs[d] = regs[s]
            elif op is Opcode.BINOP:
                def h(regs, ctx, d=ops[0], fn=_BINOPS[ops[1]], a=ops[2], b=ops[3]):
                    regs[d] = fn(regs[a], regs[b])
            elif op is Opcode.UNOP:
                def h(regs, ctx, d=ops[0], fn=_UNOPS[ops[1]], a=ops[2]):
                    regs[d] = fn(regs[a])
            elif op is Opcode.NEW:
                fields = tuple(program.classes[ops[1]])
                def h(regs, ctx, d=ops[0], cname=ops[1], fields=fields):
                    header = ctx.heap.allocate_header(LabelPair.EMPTY)
                    regs[d] = IRObject(header, cname, dict.fromkeys(fields, 0))
            elif op is Opcode.NEWARRAY:
                def h(regs, ctx, d=ops[0], n=ops[1]):
                    header = ctx.heap.allocate_header(LabelPair.EMPTY)
                    regs[d] = IRArray(header, [0] * regs[n])
            elif op is Opcode.GETFIELD:
                def h(regs, ctx, d=ops[0], o=ops[1], f=ops[2]):
                    regs[d] = regs[o].fields[f]
            elif op is Opcode.PUTFIELD:
                def h(regs, ctx, o=ops[0], f=ops[1], v=ops[2]):
                    regs[o].fields[f] = regs[v]
            elif op is Opcode.ALOAD:
                def h(regs, ctx, d=ops[0], arr=ops[1], i=ops[2]):
                    regs[d] = regs[arr].items[regs[i]]
            elif op is Opcode.ASTORE:
                def h(regs, ctx, arr=ops[0], i=ops[1], v=ops[2]):
                    regs[arr].items[regs[i]] = regs[v]
            elif op is Opcode.ARRAYLEN:
                def h(regs, ctx, d=ops[0], arr=ops[1]):
                    regs[d] = len(regs[arr].items)
            elif op is Opcode.GETSTATIC:
                def h(regs, ctx, d=ops[0], name=ops[1]):
                    regs[d] = ctx.statics.get(name, 0)
            elif op is Opcode.PUTSTATIC:
                def h(regs, ctx, name=ops[0], v=ops[1]):
                    ctx.statics[name] = regs[v]
            elif op is Opcode.READBAR:
                def h(regs, ctx, r=ops[0], instr=instr):
                    stats = ctx.stats
                    stats.read_barriers += 1
                    flavor = instr.flavor
                    if flavor is BarrierFlavor.STATIC_OUT:
                        stats.space_checks += 1
                        if ctx.labeled(regs[r].header):
                            raise RegionViolation(_OUT_OF_REGION_MSG)
                    elif flavor is BarrierFlavor.STATIC_IN:
                        stats.label_checks += 1
                        thread = ctx.thread
                        cached_check_flow(
                            thread, regs[r].header.labels, thread.labels,
                            stats, context="IR read",
                        )
                    else:
                        ctx.interp._barrier(instr, regs[r].header, is_read=True)
            elif op is Opcode.WRITEBAR:
                def h(regs, ctx, r=ops[0], instr=instr):
                    stats = ctx.stats
                    stats.write_barriers += 1
                    flavor = instr.flavor
                    if flavor is BarrierFlavor.STATIC_OUT:
                        stats.space_checks += 1
                        if ctx.labeled(regs[r].header):
                            raise RegionViolation(_OUT_OF_REGION_MSG)
                    elif flavor is BarrierFlavor.STATIC_IN:
                        stats.label_checks += 1
                        thread = ctx.thread
                        cached_check_flow(
                            thread, thread.labels, regs[r].header.labels,
                            stats, context="IR write",
                        )
                    else:
                        ctx.interp._barrier(instr, regs[r].header, is_read=False)
            elif op is Opcode.ALLOCBAR:
                def h(regs, ctx, r=ops[0], instr=instr):
                    ctx.stats.alloc_barriers += 1
                    flavor = instr.flavor
                    if flavor is BarrierFlavor.STATIC_IN:
                        ctx.heap.label_fresh(regs[r].header, ctx.thread.labels)
                    elif flavor is not BarrierFlavor.STATIC_OUT:
                        ctx.interp._alloc_barrier(instr, regs[r].header)
            elif op is Opcode.SREADBAR:
                def h(regs, ctx, name=ops[0], instr=instr):
                    ctx.stats.read_barriers += 1
                    ctx.interp._static_barrier(instr, name, is_read=True)
            elif op is Opcode.SWRITEBAR:
                def h(regs, ctx, name=ops[0], instr=instr):
                    ctx.stats.write_barriers += 1
                    ctx.interp._static_barrier(instr, name, is_read=False)
            elif op is Opcode.CALL:
                def h(regs, ctx, d=ops[0], callee=ops[1], argnames=ops[2:]):
                    result = ctx.interp._call(
                        ctx.program.method(callee), [regs[a] for a in argnames]
                    )
                    if d is not None:
                        regs[d] = result
            elif op is Opcode.PRINT:
                def h(regs, ctx, s=ops[0]):
                    ctx.output.append(regs[s])
            elif op is Opcode.SPAWN:
                def h(regs, ctx, d=ops[0], callee=ops[1], argnames=ops[2:]):
                    regs[d] = ctx.interp._spawn(
                        callee, [regs[a] for a in argnames]
                    )
            elif op is Opcode.JOIN:
                def h(regs, ctx, handle=ops[0]):
                    ctx.interp._join(regs[handle])
            elif op in (Opcode.LOCK, Opcode.UNLOCK):
                def h(regs, ctx, r=ops[0]):
                    regs[r]  # deterministic runtime: locks are markers only
            elif op is Opcode.RET:
                def h(regs, ctx, v=ops[0]):
                    return (_RET, regs[v] if v is not None else None)
            elif op is Opcode.JMP:
                def h(regs, ctx, target=ops[0]):
                    return target
            elif op is Opcode.BR:
                def h(regs, ctx, c=ops[0], t=ops[1], f=ops[2]):
                    return t if regs[c] else f
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled opcode {op}")
            handlers.append(h)
        table[block_label] = handlers
    return table


class Interpreter:
    """Executes one program on one VM."""

    def __init__(
        self,
        program: Program,
        vm: LaminarVM,
        verify_static: bool = False,
        tier2: Any = None,
    ) -> None:
        self.program = program
        self.vm = vm
        self.statics: dict[str, Any] = {}
        #: Labeled-statics extension: per-static labels (default empty).
        #: Immutable once declared, like object labels.
        self.static_labels: dict[str, LabelPair] = {}
        #: Output produced by ``print`` instructions (never actually printed).
        self.output: list[Any] = []
        #: Total IR instructions executed (the harness's work measure).
        self.executed = 0
        #: Debug mode: verify that static barriers execute in the context
        #: they were compiled for (raises StaleCompilationError otherwise).
        #: Off by default because a *production* static barrier does not
        #: test the context — that absence is its whole advantage.
        self.verify_static = verify_static
        #: Per-interpreter state handed to the program-cached handler
        #: tables and tier-2 compiled bodies.
        self.ctx = ExecContext(self)
        #: Tier-2 engine, when the program was compiled ``tier="jit"`` (or
        #: a TierPolicy was passed explicitly).  Never active in
        #: verify_static mode: verification is about observing *stale*
        #: static barriers, and tier-2 exists to deopt instead of going
        #: stale — mixing them would hide exactly what verify_static hunts.
        policy = tier2 if tier2 is not None else program.tier_policy
        if policy is not None and not verify_static:
            from .tier2 import Tier2Engine

            self._tier2 = Tier2Engine(self, policy)
        else:
            self._tier2 = None

    def declare_static(self, name: str, labels: LabelPair, value: Any = 0) -> None:
        """Declare a labeled static (the labeled-statics extension).
        Labels are assigned at declaration and immutable thereafter."""
        if name in self.static_labels:
            raise ValueError(f"static {name!r} already declared")
        self.static_labels[name] = labels
        self.statics[name] = value

    # -- entry point ------------------------------------------------------------

    def run(self, method_name: str = "main", *args: Any) -> Any:
        engine = self._tier2
        if (
            fastpath.flags.dispatch_table or engine is not None
        ) and not self.verify_static:
            # IR passes mutate methods in place but never *during* a run,
            # so validating once per entry suffices: if the program's shape
            # changed since the caches were built, rebuild them lazily.
            stamp = self.program.shape_stamp()
            if stamp != self.program.exec_tables_stamp:
                self.program.exec_tables.clear()
                self.program.exec_tables_stamp = stamp
            if engine is not None:
                engine.validate(stamp)
        method = self.program.method(method_name)
        return self._call(method, list(args))

    # -- calls -------------------------------------------------------------------

    def _call(self, method: Method, args: list[Any]) -> Any:
        if len(args) != len(method.params):
            raise TypeError(
                f"{method.name} expects {len(method.params)} args, got {len(args)}"
            )
        if self._tier2 is not None:
            return self._tier2.call(method, args)
        return self._call_cold(method, args)

    def _call_cold(self, method: Method, args: list[Any]) -> Any:
        """The untiered call path (also the tier-2 engine's deopt target)."""
        if method.is_region:
            spec = method.region_spec or RegionSpec()
            catch = None
            if spec.catch is not None:
                handler = self.program.method(spec.catch)

                def catch(exc: BaseException) -> None:
                    # The handler runs while the region frame is still on
                    # the stack (SecurityRegion.__exit__ semantics), so it
                    # sees the region's labels and capabilities.
                    self._execute(handler, [])

            with self.vm.region(
                secrecy=spec.secrecy,
                integrity=spec.integrity,
                caps=spec.caps,
                catch=catch,
                name=method.name,
            ):
                self._execute(method, args)
            return None
        return self._execute(method, args)

    # -- the dispatch loop ----------------------------------------------------------

    def _execute(self, method: Method, args: list[Any]) -> Any:
        if fastpath.flags.dispatch_table and not self.verify_static:
            return self._execute_table(method, args)
        return self._execute_switch(method, args)

    def _execute_switch(self, method: Method, args: list[Any]) -> Any:
        regs: dict[str, Any] = dict(zip(method.params, args))
        label = method.entry
        assert label is not None
        heap = self.vm.heap
        barrier_stats = self.vm.barriers.stats
        # Static barriers execute as straight-line code in the dispatch
        # loop (the compiled-in variant); only dynamic barriers go through
        # the dispatching helper.  This mirrors the machine-code shapes the
        # two strategies produce.
        # In verify_static mode the fast paths are disabled so every static
        # barrier funnels through _barrier's context assertion.
        static_in = None if self.verify_static else BarrierFlavor.STATIC_IN
        static_out = None if self.verify_static else BarrierFlavor.STATIC_OUT
        labeled = heap.is_labeled
        thread = self.vm.current_thread
        osr = self._tier2.osr_probe(method) if self._tier2 is not None else None
        while True:
            block = method.blocks[label]
            jumped = False
            for instr in block.instrs:
                self.executed += 1
                op = instr.op
                ops = instr.operands
                if op is Opcode.CONST:
                    regs[ops[0]] = ops[1]
                elif op is Opcode.MOV:
                    regs[ops[0]] = regs[ops[1]]
                elif op is Opcode.BINOP:
                    regs[ops[0]] = _BINOPS[ops[1]](regs[ops[2]], regs[ops[3]])
                elif op is Opcode.UNOP:
                    regs[ops[0]] = _UNOPS[ops[1]](regs[ops[2]])
                elif op is Opcode.NEW:
                    fields = dict.fromkeys(self.program.classes[ops[1]], 0)
                    header = heap.allocate_header(LabelPair.EMPTY)
                    regs[ops[0]] = IRObject(header, ops[1], fields)
                elif op is Opcode.NEWARRAY:
                    header = heap.allocate_header(LabelPair.EMPTY)
                    regs[ops[0]] = IRArray(header, [0] * regs[ops[1]])
                elif op is Opcode.GETFIELD:
                    regs[ops[0]] = regs[ops[1]].fields[ops[2]]
                elif op is Opcode.PUTFIELD:
                    regs[ops[0]].fields[ops[1]] = regs[ops[2]]
                elif op is Opcode.ALOAD:
                    regs[ops[0]] = regs[ops[1]].items[regs[ops[2]]]
                elif op is Opcode.ASTORE:
                    regs[ops[0]].items[regs[ops[1]]] = regs[ops[2]]
                elif op is Opcode.ARRAYLEN:
                    regs[ops[0]] = len(regs[ops[1]].items)
                elif op is Opcode.GETSTATIC:
                    regs[ops[0]] = self.statics.get(ops[1], 0)
                elif op is Opcode.PUTSTATIC:
                    self.statics[ops[0]] = regs[ops[1]]
                elif op is Opcode.READBAR:
                    barrier_stats.read_barriers += 1
                    flavor = instr.flavor
                    if flavor is static_out:
                        # compiled-in out-of-region variant: one membership
                        # test against the labeled object space.
                        barrier_stats.space_checks += 1
                        if labeled(regs[ops[0]].header):
                            self._static_violation(flavor)
                    elif flavor is static_in:
                        # compiled-in in-region variant: label comparison,
                        # served from the per-thread verdict cache.
                        barrier_stats.label_checks += 1
                        header = regs[ops[0]].header
                        cached_check_flow(
                            thread, header.labels, thread.labels,
                            barrier_stats, context="IR read",
                        )
                    else:
                        self._barrier(instr, regs[ops[0]].header, is_read=True)
                elif op is Opcode.WRITEBAR:
                    barrier_stats.write_barriers += 1
                    flavor = instr.flavor
                    if flavor is static_out:
                        barrier_stats.space_checks += 1
                        if labeled(regs[ops[0]].header):
                            self._static_violation(flavor)
                    elif flavor is static_in:
                        barrier_stats.label_checks += 1
                        header = regs[ops[0]].header
                        cached_check_flow(
                            thread, thread.labels, header.labels,
                            barrier_stats, context="IR write",
                        )
                    else:
                        self._barrier(instr, regs[ops[0]].header, is_read=False)
                elif op is Opcode.ALLOCBAR:
                    barrier_stats.alloc_barriers += 1
                    flavor = instr.flavor
                    if flavor is static_in:
                        heap.label_fresh(regs[ops[0]].header, thread.labels)
                    elif flavor is not static_out:
                        self._alloc_barrier(instr, regs[ops[0]].header)
                elif op is Opcode.SREADBAR:
                    barrier_stats.read_barriers += 1
                    self._static_barrier(instr, ops[0], is_read=True)
                elif op is Opcode.SWRITEBAR:
                    barrier_stats.write_barriers += 1
                    self._static_barrier(instr, ops[0], is_read=False)
                elif op is Opcode.CALL:
                    dst, callee = ops[0], ops[1]
                    call_args = [regs[a] for a in ops[2:]]
                    result = self._call(self.program.method(callee), call_args)
                    if dst is not None:
                        regs[dst] = result
                elif op is Opcode.PRINT:
                    self.output.append(regs[ops[0]])
                elif op is Opcode.SPAWN:
                    regs[ops[0]] = self._spawn(
                        ops[1], [regs[a] for a in ops[2:]]
                    )
                elif op is Opcode.JOIN:
                    self._join(regs[ops[0]])
                elif op in (Opcode.LOCK, Opcode.UNLOCK):
                    regs[ops[0]]  # markers for the static race detector
                elif op is Opcode.RET:
                    value = ops[0]
                    return regs[value] if value is not None else None
                elif op is Opcode.JMP:
                    label = ops[0]
                    jumped = True
                    break
                elif op is Opcode.BR:
                    label = ops[1] if regs[ops[0]] else ops[2]
                    jumped = True
                    break
                else:  # pragma: no cover - exhaustive
                    raise AssertionError(f"unhandled opcode {op}")
            if not jumped:
                # normalize() guarantees a terminator, so this is unreachable
                # unless a pass broke the method.
                raise AssertionError(f"block {label} fell off the end")
            if osr is not None:
                # On-stack replacement: a hot back-edge promotes the rest
                # of this invocation to the tier-2 compiled body.
                done = osr(label, regs)
                if done is not None:
                    return done[0]

    # -- table-mode execution ----------------------------------------------------------

    def _execute_table(self, method: Method, args: list[Any]) -> Any:
        """Run one method through its precomputed handler table.

        Same semantics and counter behavior as :meth:`_execute_switch`,
        minus the per-instruction decode: each handler is a closure with
        its operands (register names, bound functions, baked field lists)
        already resolved.  Handlers return ``None`` to fall through to the
        next instruction, a block label to jump, or ``(_RET, value)``.
        """
        program = self.program
        table = program.exec_tables.get(method.name)
        if table is None:
            table = build_handler_table(method, program)
            program.exec_tables[method.name] = table
            program.table_builds += 1
        regs: dict[str, Any] = dict(zip(method.params, args))
        label = method.entry
        assert label is not None
        ctx = self.ctx
        prev = ctx.thread
        ctx.thread = self.vm.current_thread
        osr = self._tier2.osr_probe(method) if self._tier2 is not None else None
        executed = 0
        try:
            while True:
                result = None
                for handler in table[label]:
                    executed += 1
                    result = handler(regs, ctx)
                    if result is not None:
                        break
                if result is None:
                    raise AssertionError(f"block {label} fell off the end")
                if result.__class__ is tuple:
                    return result[1]
                label = result
                if osr is not None:
                    done = osr(label, regs)
                    if done is not None:
                        return done[0]
        finally:
            self.executed += executed
            ctx.thread = prev

    # -- threads -----------------------------------------------------------------------

    def _spawn(self, callee: str, args: list[Any]) -> IRThreadHandle:
        """Create the VM thread now (so the outside-regions rule is
        enforced at the spawn point) and defer the body to ``join``."""
        method = self.program.method(callee)  # validated by the verifier
        thread = self.vm.create_thread(name=f"ir:{callee}")
        return IRThreadHandle(method.name, args, thread)

    def _join(self, handle: Any) -> None:
        if not isinstance(handle, IRThreadHandle):
            raise TypeError(f"join of a non-thread value: {handle!r}")
        if handle.done:
            return  # joining twice is a no-op, as with pthread semantics
        with self.vm.running(handle.thread):
            self._call(self.program.method(handle.callee), list(handle.args))
        handle.done = True

    # -- barrier semantics -------------------------------------------------------------

    def _context_for(self, flavor: Optional[BarrierFlavor]) -> bool:
        """Resolve 'is the thread in a region?' per the compiled flavor.

        A dynamic barrier pays a real context test every execution — the
        cost the Fig. 8 dynamic bars carry.  A static barrier trusts its
        compile-time decision and does no test at all; ``verify_static``
        adds the (non-production) assertion that catches miscompilation.
        """
        if flavor is BarrierFlavor.DYNAMIC:
            self.vm.barriers.stats.dynamic_dispatches += 1
            return self.vm.current_thread.in_region
        expected = flavor is BarrierFlavor.STATIC_IN
        if self.verify_static and expected != self.vm.current_thread.in_region:
            raise StaleCompilationError(
                f"barrier compiled {flavor.value} executed "
                f"{'inside' if not expected else 'outside'} a region — the "
                f"method needs cloning or dynamic barriers"
            )
        return expected

    def _static_violation(self, flavor: Optional[BarrierFlavor]) -> None:
        raise RegionViolation(_OUT_OF_REGION_MSG)

    def _barrier(self, instr: Instr, header: Any, is_read: bool) -> None:
        stats = self.vm.barriers.stats
        in_region = self._context_for(instr.flavor)
        if in_region:
            stats.label_checks += 1
            thread = self.vm.current_thread
            if is_read:
                cached_check_flow(
                    thread, header.labels, thread.labels, stats,
                    context="IR read",
                )
            else:
                cached_check_flow(
                    thread, thread.labels, header.labels, stats,
                    context="IR write",
                )
        else:
            stats.space_checks += 1
            if self.vm.heap.is_labeled(header):
                raise RegionViolation(_OUT_OF_REGION_MSG)

    def _alloc_barrier(self, instr: Instr, header: Any) -> None:
        in_region = self._context_for(instr.flavor)
        if in_region:
            self.vm.heap.label_fresh(header, self.vm.current_thread.labels)

    def _static_barrier(self, instr: Instr, name: str, is_read: bool) -> None:
        """The labeled-statics extension: statics behave like objects whose
        labels were fixed at declaration."""
        stats = self.vm.barriers.stats
        labels = self.static_labels.get(name, LabelPair.EMPTY)
        in_region = self._context_for(instr.flavor)
        thread = self.vm.current_thread
        if in_region:
            stats.label_checks += 1
            if is_read:
                cached_check_flow(
                    thread, labels, thread.labels, stats,
                    context=f"static {name}",
                )
            else:
                cached_check_flow(
                    thread, thread.labels, labels, stats,
                    context=f"static {name}",
                )
        else:
            stats.space_checks += 1
            if not labels.is_empty:
                raise RegionViolation(
                    f"access to labeled static {name!r} outside any "
                    f"security region"
                )
