"""The IR interpreter: executes compiled programs against a Laminar VM.

The interpreter plays the role of the Jikes RVM execution engine for the
mini-JIT: it runs the (possibly instrumented) IR, executing barrier
pseudo-instructions with exactly the semantics of
:mod:`repro.runtime.barriers` and accounting them into the VM's
:class:`~repro.runtime.barriers.BarrierStats`, so the Fig. 8 harness reads
one set of counters regardless of which layer did the work.

Barrier flavors at execution time:

* ``STATIC_IN`` / ``STATIC_OUT`` run the single compiled-in variant.  If
  the *actual* thread context disagrees with the compiled assumption the
  interpreter raises :class:`StaleCompilationError` — this is the paper's
  observation that the static-barrier prototype "fails if a method is
  called from both within and without a security region" (method cloning
  or dynamic barriers are the fixes).
* ``DYNAMIC`` pays a context test (counted as a dynamic dispatch), then
  runs the right variant.

Region methods execute inside ``vm.region(...)`` built from the method's
:class:`~repro.jit.ir.RegionSpec`; the static region checker has already
guaranteed they return nothing.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import LabelPair, RegionViolation, VMPanic, check_flow
from ..runtime.vm import LaminarVM
from .ir import BarrierFlavor, Instr, Method, Opcode, Program, RegionSpec


class StaleCompilationError(VMPanic):
    """A statically compiled barrier executed in the opposite context."""


class IRObject:
    """Heap object payload: header + named fields."""

    __slots__ = ("header", "classname", "fields")

    def __init__(self, header: Any, classname: str, fields: dict[str, Any]) -> None:
        self.header = header
        self.classname = classname
        self.fields = fields

    def __repr__(self) -> str:
        return f"IRObject({self.classname}#{self.header.oid})"


class IRArray:
    """Heap array payload: header + items."""

    __slots__ = ("header", "items")

    def __init__(self, header: Any, items: list[Any]) -> None:
        self.header = header
        self.items = items

    def __repr__(self) -> str:
        return f"IRArray(#{self.header.oid}, len={len(self.items)})"


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "mod": lambda a, b: a % b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "band": lambda a, b: a & b,
    "bor": lambda a, b: a | b,
    "bxor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
}

_UNOPS = {
    "neg": lambda a: -a,
    "not": lambda a: not a,
}


class Interpreter:
    """Executes one program on one VM."""

    def __init__(
        self, program: Program, vm: LaminarVM, verify_static: bool = False
    ) -> None:
        self.program = program
        self.vm = vm
        self.statics: dict[str, Any] = {}
        #: Labeled-statics extension: per-static labels (default empty).
        #: Immutable once declared, like object labels.
        self.static_labels: dict[str, LabelPair] = {}
        #: Output produced by ``print`` instructions (never actually printed).
        self.output: list[Any] = []
        #: Total IR instructions executed (the harness's work measure).
        self.executed = 0
        #: Debug mode: verify that static barriers execute in the context
        #: they were compiled for (raises StaleCompilationError otherwise).
        #: Off by default because a *production* static barrier does not
        #: test the context — that absence is its whole advantage.
        self.verify_static = verify_static

    def declare_static(self, name: str, labels: LabelPair, value: Any = 0) -> None:
        """Declare a labeled static (the labeled-statics extension).
        Labels are assigned at declaration and immutable thereafter."""
        if name in self.static_labels:
            raise ValueError(f"static {name!r} already declared")
        self.static_labels[name] = labels
        self.statics[name] = value

    # -- entry point ------------------------------------------------------------

    def run(self, method_name: str = "main", *args: Any) -> Any:
        method = self.program.method(method_name)
        return self._call(method, list(args))

    # -- calls -------------------------------------------------------------------

    def _call(self, method: Method, args: list[Any]) -> Any:
        if len(args) != len(method.params):
            raise TypeError(
                f"{method.name} expects {len(method.params)} args, got {len(args)}"
            )
        if method.is_region:
            spec = method.region_spec or RegionSpec()
            catch = None
            if spec.catch is not None:
                handler = self.program.method(spec.catch)

                def catch(exc: BaseException) -> None:
                    # The handler runs while the region frame is still on
                    # the stack (SecurityRegion.__exit__ semantics), so it
                    # sees the region's labels and capabilities.
                    self._execute(handler, [])

            with self.vm.region(
                secrecy=spec.secrecy,
                integrity=spec.integrity,
                caps=spec.caps,
                catch=catch,
                name=method.name,
            ):
                self._execute(method, args)
            return None
        return self._execute(method, args)

    # -- the dispatch loop ----------------------------------------------------------

    def _execute(self, method: Method, args: list[Any]) -> Any:
        regs: dict[str, Any] = dict(zip(method.params, args))
        label = method.entry
        assert label is not None
        heap = self.vm.heap
        barrier_stats = self.vm.barriers.stats
        # Static barriers execute as straight-line code in the dispatch
        # loop (the compiled-in variant); only dynamic barriers go through
        # the dispatching helper.  This mirrors the machine-code shapes the
        # two strategies produce.
        # In verify_static mode the fast paths are disabled so every static
        # barrier funnels through _barrier's context assertion.
        static_in = None if self.verify_static else BarrierFlavor.STATIC_IN
        static_out = None if self.verify_static else BarrierFlavor.STATIC_OUT
        labeled = heap.is_labeled
        thread = self.vm.current_thread
        while True:
            block = method.blocks[label]
            jumped = False
            for instr in block.instrs:
                self.executed += 1
                op = instr.op
                ops = instr.operands
                if op is Opcode.CONST:
                    regs[ops[0]] = ops[1]
                elif op is Opcode.MOV:
                    regs[ops[0]] = regs[ops[1]]
                elif op is Opcode.BINOP:
                    regs[ops[0]] = _BINOPS[ops[1]](regs[ops[2]], regs[ops[3]])
                elif op is Opcode.UNOP:
                    regs[ops[0]] = _UNOPS[ops[1]](regs[ops[2]])
                elif op is Opcode.NEW:
                    fields = dict.fromkeys(self.program.classes[ops[1]], 0)
                    header = heap.allocate_header(LabelPair.EMPTY)
                    regs[ops[0]] = IRObject(header, ops[1], fields)
                elif op is Opcode.NEWARRAY:
                    header = heap.allocate_header(LabelPair.EMPTY)
                    regs[ops[0]] = IRArray(header, [0] * regs[ops[1]])
                elif op is Opcode.GETFIELD:
                    regs[ops[0]] = regs[ops[1]].fields[ops[2]]
                elif op is Opcode.PUTFIELD:
                    regs[ops[0]].fields[ops[1]] = regs[ops[2]]
                elif op is Opcode.ALOAD:
                    regs[ops[0]] = regs[ops[1]].items[regs[ops[2]]]
                elif op is Opcode.ASTORE:
                    regs[ops[0]].items[regs[ops[1]]] = regs[ops[2]]
                elif op is Opcode.ARRAYLEN:
                    regs[ops[0]] = len(regs[ops[1]].items)
                elif op is Opcode.GETSTATIC:
                    regs[ops[0]] = self.statics.get(ops[1], 0)
                elif op is Opcode.PUTSTATIC:
                    self.statics[ops[0]] = regs[ops[1]]
                elif op is Opcode.READBAR:
                    barrier_stats.read_barriers += 1
                    flavor = instr.flavor
                    if flavor is static_out:
                        # compiled-in out-of-region variant: one membership
                        # test against the labeled object space.
                        barrier_stats.space_checks += 1
                        if labeled(regs[ops[0]].header):
                            self._static_violation(flavor)
                    elif flavor is static_in:
                        # compiled-in in-region variant: label comparison.
                        barrier_stats.label_checks += 1
                        header = regs[ops[0]].header
                        check_flow(header.labels, thread.labels,
                                   context="IR read")
                    else:
                        self._barrier(instr, regs[ops[0]].header, is_read=True)
                elif op is Opcode.WRITEBAR:
                    barrier_stats.write_barriers += 1
                    flavor = instr.flavor
                    if flavor is static_out:
                        barrier_stats.space_checks += 1
                        if labeled(regs[ops[0]].header):
                            self._static_violation(flavor)
                    elif flavor is static_in:
                        barrier_stats.label_checks += 1
                        header = regs[ops[0]].header
                        check_flow(thread.labels, header.labels,
                                   context="IR write")
                    else:
                        self._barrier(instr, regs[ops[0]].header, is_read=False)
                elif op is Opcode.ALLOCBAR:
                    barrier_stats.alloc_barriers += 1
                    flavor = instr.flavor
                    if flavor is static_in:
                        heap.label_fresh(regs[ops[0]].header, thread.labels)
                    elif flavor is not static_out:
                        self._alloc_barrier(instr, regs[ops[0]].header)
                elif op is Opcode.SREADBAR:
                    barrier_stats.read_barriers += 1
                    self._static_barrier(instr, ops[0], is_read=True)
                elif op is Opcode.SWRITEBAR:
                    barrier_stats.write_barriers += 1
                    self._static_barrier(instr, ops[0], is_read=False)
                elif op is Opcode.CALL:
                    dst, callee = ops[0], ops[1]
                    call_args = [regs[a] for a in ops[2:]]
                    result = self._call(self.program.method(callee), call_args)
                    if dst is not None:
                        regs[dst] = result
                elif op is Opcode.PRINT:
                    self.output.append(regs[ops[0]])
                elif op is Opcode.RET:
                    value = ops[0]
                    return regs[value] if value is not None else None
                elif op is Opcode.JMP:
                    label = ops[0]
                    jumped = True
                    break
                elif op is Opcode.BR:
                    label = ops[1] if regs[ops[0]] else ops[2]
                    jumped = True
                    break
                else:  # pragma: no cover - exhaustive
                    raise AssertionError(f"unhandled opcode {op}")
            if not jumped:
                # normalize() guarantees a terminator, so this is unreachable
                # unless a pass broke the method.
                raise AssertionError(f"block {label} fell off the end")

    # -- barrier semantics -------------------------------------------------------------

    def _context_for(self, flavor: Optional[BarrierFlavor]) -> bool:
        """Resolve 'is the thread in a region?' per the compiled flavor.

        A dynamic barrier pays a real context test every execution — the
        cost the Fig. 8 dynamic bars carry.  A static barrier trusts its
        compile-time decision and does no test at all; ``verify_static``
        adds the (non-production) assertion that catches miscompilation.
        """
        if flavor is BarrierFlavor.DYNAMIC:
            self.vm.barriers.stats.dynamic_dispatches += 1
            return self.vm.current_thread.in_region
        expected = flavor is BarrierFlavor.STATIC_IN
        if self.verify_static and expected != self.vm.current_thread.in_region:
            raise StaleCompilationError(
                f"barrier compiled {flavor.value} executed "
                f"{'inside' if not expected else 'outside'} a region — the "
                f"method needs cloning or dynamic barriers"
            )
        return expected

    def _static_violation(self, flavor: Optional[BarrierFlavor]) -> None:
        raise RegionViolation(
            "IR access to labeled object outside any security region"
        )

    def _barrier(self, instr: Instr, header: Any, is_read: bool) -> None:
        stats = self.vm.barriers.stats
        in_region = self._context_for(instr.flavor)
        if in_region:
            stats.label_checks += 1
            thread = self.vm.current_thread
            if is_read:
                check_flow(header.labels, thread.labels, context="IR read")
            else:
                check_flow(thread.labels, header.labels, context="IR write")
        else:
            stats.space_checks += 1
            if self.vm.heap.is_labeled(header):
                raise RegionViolation(
                    "IR access to labeled object outside any security region"
                )

    def _alloc_barrier(self, instr: Instr, header: Any) -> None:
        in_region = self._context_for(instr.flavor)
        if in_region:
            self.vm.heap.label_fresh(header, self.vm.current_thread.labels)

    def _static_barrier(self, instr: Instr, name: str, is_read: bool) -> None:
        """The labeled-statics extension: statics behave like objects whose
        labels were fixed at declaration."""
        stats = self.vm.barriers.stats
        labels = self.static_labels.get(name, LabelPair.EMPTY)
        in_region = self._context_for(instr.flavor)
        thread = self.vm.current_thread
        if in_region:
            stats.label_checks += 1
            if is_read:
                check_flow(labels, thread.labels, context=f"static {name}")
            else:
                check_flow(thread.labels, labels, context=f"static {name}")
        else:
            stats.space_checks += 1
            if not labels.is_empty:
                raise RegionViolation(
                    f"access to labeled static {name!r} outside any "
                    f"security region"
                )
