"""Method cloning: two compiled variants per method.

"A production implementation would use cloning to compile two versions of
methods executed from both contexts; the same approach is used in prior
work on software transactional memory.  Static barriers add the same
overhead that cloning would achieve" (Section 5.1).

:func:`clone_for_contexts` duplicates every non-region method into an
``<name>`` (out-of-region) and ``<name>$in`` (in-region) variant *before*
barrier insertion, and rewrites call sites so each variant calls the
matching variants of its callees.  Region methods get a single in-region
body; calls *into* a region method are the context switch, so both variants
call the same region method.

The interpreter's :class:`~repro.jit.interpreter.StaleCompilationError`
never fires on a cloned program: every call path reaches the variant whose
static assumption matches reality, which is exactly the paper's claim that
cloning retains static-barrier cost while supporting both contexts.
"""

from __future__ import annotations

from .ir import Instr, Method, Opcode, Program

IN_SUFFIX = "$in"


def _clone_method(method: Method, new_name: str, in_region: bool) -> Method:
    clone = Method(new_name, method.params, is_region=method.is_region)
    clone.region_spec = method.region_spec
    for label, block in method.blocks.items():
        new_block = clone.add_block(label)
        for instr in block.instrs:
            if instr.op is Opcode.CALL:
                dst, callee, *args = instr.operands
                new_block.instrs.append(
                    Instr(Opcode.CALL, (dst, (callee, in_region), *args), instr.flavor)
                )
            else:
                new_block.instrs.append(
                    Instr(instr.op, instr.operands, instr.flavor)
                )
    clone.entry = method.entry
    return clone


def clone_for_contexts(program: Program) -> Program:
    """Return a new program where every non-region method exists in an
    out-of-region and an in-region variant.

    Call operands are first rewritten to ``(name, in_region_flag)`` pairs
    and then resolved to concrete variant names, so the result is a plain
    program the barrier inserter and interpreter understand.
    """
    cloned = Program()
    cloned.classes = dict(program.classes)
    for method in program.methods.values():
        if method.is_region:
            # One body; region bodies always run in-region.
            region_clone = _clone_method(method, method.name, True)
            cloned.add_method(region_clone)
        else:
            cloned.add_method(_clone_method(method, method.name, False))
            cloned.add_method(
                _clone_method(method, method.name + IN_SUFFIX, True)
            )
    # Resolve (name, flag) call targets to concrete method names.
    for method in cloned.methods.values():
        for block in method.blocks.values():
            for i, instr in enumerate(block.instrs):
                if instr.op is not Opcode.CALL:
                    continue
                dst, target, *args = instr.operands
                name, in_region = target
                callee = program.methods.get(name)
                if callee is None or callee.is_region:
                    resolved = name  # intrinsic or region: single variant
                elif in_region:
                    resolved = name + IN_SUFFIX
                else:
                    resolved = name
                block.instrs[i] = Instr(
                    Opcode.CALL, (dst, resolved, *args), instr.flavor
                )
    return cloned


def clone_variant(method: Method, in_region: bool) -> Method:
    """Clone one method for a single compile context (tier-2 deopt recovery).

    The tier-2 engine compiles a method for the region context it observed
    at profiling time; when guards later see the *opposite* context often
    enough, it materializes the other variant through this helper — the
    same mechanism :func:`clone_for_contexts` applies ahead of time.
    Unlike the whole-program pass, CALL targets stay symbolic: tier-2 call
    sites re-dispatch against the caller's runtime context, so callee
    variant selection happens at execution time, not clone time.
    """
    name = method.name + (IN_SUFFIX if in_region else "")
    clone = _clone_method(method, name, in_region)
    for block in clone.blocks.values():
        for i, instr in enumerate(block.instrs):
            if instr.op is Opcode.CALL:
                dst, (callee, _flag), *args = instr.operands
                block.instrs[i] = Instr(
                    Opcode.CALL, (dst, callee, *args), instr.flavor
                )
    return clone


def clone_count(program: Program) -> int:
    """How many in-region clones a program carries (compile-cost metric)."""
    return sum(1 for name in program.methods if name.endswith(IN_SUFFIX))
