"""Barrier insertion: the instrumentation pass of Section 5.1.

"The JVM adds instrumentation called *barriers* at every object read and
write" — concretely, this pass rewrites every method so that

* each heap read (``getfield``/``aload``/``arraylen``) is preceded by a
  ``readbar`` on the accessed object register,
* each heap write (``putfield``/``astore``) is preceded by a ``writebar``,
* each allocation (``new``/``newarray``) is followed by an ``allocbar``
  that labels the fresh object before "the constructor" (any later
  initializing stores) runs, and
* static accesses (``getstatic``/``putstatic``) are left intact here and
  policed by the region checker, since the prototype forbids them in
  regions altogether.

The *flavor* of each inserted barrier models the compilation strategy:

* ``CompileContext.IN_REGION`` / ``OUT_OF_REGION`` produce static barriers
  specialized to one context — what the paper's prototype does when a
  method is first compiled, and what method cloning achieves in general.
* ``CompileContext.UNKNOWN`` produces dynamic barriers that test the
  thread state at run time.
"""

from __future__ import annotations

import enum

from .ir import (
    ALLOC_OPS,
    BarrierFlavor,
    Instr,
    Method,
    Opcode,
    Program,
    READ_OPS,
    WRITE_OPS,
)


class CompileContext(enum.Enum):
    """What the compiler knows about the caller's region state."""

    IN_REGION = "in"
    OUT_OF_REGION = "out"
    UNKNOWN = "unknown"

    def flavor(self) -> BarrierFlavor:
        if self is CompileContext.IN_REGION:
            return BarrierFlavor.STATIC_IN
        if self is CompileContext.OUT_OF_REGION:
            return BarrierFlavor.STATIC_OUT
        return BarrierFlavor.DYNAMIC


def _accessed_register(instr: Instr) -> str:
    """The register holding the object a heap access touches."""
    if instr.op in (Opcode.GETFIELD, Opcode.ARRAYLEN):
        return instr.operands[1]
    if instr.op is Opcode.ALOAD:
        return instr.operands[1]
    if instr.op is Opcode.PUTFIELD:
        return instr.operands[0]
    if instr.op is Opcode.ASTORE:
        return instr.operands[0]
    raise ValueError(f"not a heap access: {instr!r}")


BARRIER_OPS = (
    Opcode.READBAR,
    Opcode.WRITEBAR,
    Opcode.ALLOCBAR,
    Opcode.SREADBAR,
    Opcode.SWRITEBAR,
)


def insert_barriers_method(
    method: Method, context: CompileContext, labeled_statics: bool = False
) -> int:
    """Instrument one method in place; returns the number of barriers
    inserted.  With ``labeled_statics`` the extension of Section 5.1's
    closing remark is enabled: static accesses get their own barriers
    (instead of being banned from regions outright), "with modest overhead
    because static accesses are relatively infrequent compared to field
    and array element accesses."

    Idempotence guard: a method that already contains barrier instructions
    is rejected (re-instrumentation would double-check)."""
    flavor = context.flavor()
    inserted = 0
    for block in method.blocks.values():
        for instr in block.instrs:
            if instr.op in BARRIER_OPS:
                raise ValueError(
                    f"{method.name} already instrumented; refusing to "
                    f"double-instrument"
                )
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            if labeled_statics and instr.op is Opcode.GETSTATIC:
                new_instrs.append(
                    Instr(Opcode.SREADBAR, (instr.operands[1],), flavor)
                )
                inserted += 1
                new_instrs.append(instr)
            elif labeled_statics and instr.op is Opcode.PUTSTATIC:
                new_instrs.append(
                    Instr(Opcode.SWRITEBAR, (instr.operands[0],), flavor)
                )
                inserted += 1
                new_instrs.append(instr)
            elif instr.op in READ_OPS:
                new_instrs.append(
                    Instr(Opcode.READBAR, (_accessed_register(instr),), flavor)
                )
                inserted += 1
                new_instrs.append(instr)
            elif instr.op in WRITE_OPS:
                new_instrs.append(
                    Instr(Opcode.WRITEBAR, (_accessed_register(instr),), flavor)
                )
                inserted += 1
                new_instrs.append(instr)
            elif instr.op in ALLOC_OPS:
                new_instrs.append(instr)
                dst = instr.operands[0]
                new_instrs.append(Instr(Opcode.ALLOCBAR, (dst,), flavor))
                inserted += 1
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs
    return inserted


def insert_barriers(
    program: Program,
    context: CompileContext = CompileContext.UNKNOWN,
    region_context: CompileContext = CompileContext.IN_REGION,
    labeled_statics: bool = False,
) -> int:
    """Instrument every method of a program.

    Region methods always execute inside a region, so their context is
    statically known even when everything else compiles with dynamic
    barriers — which is why the paper's "dynamic barriers" configuration
    still pays only one test per barrier, not a full region lookup.
    """
    total = 0
    for method in program.methods.values():
        ctx = region_context if method.is_region else context
        total += insert_barriers_method(method, ctx, labeled_statics)
    return total
