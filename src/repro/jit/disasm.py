"""Disassembler: turn IR programs back into assembler text.

Useful for debugging passes (the compiler tour example prints with it) and
for golden tests: for programs containing no compiler-internal barrier
instructions, ``parse_program(disassemble(p))`` reproduces ``p`` exactly
(the round-trip property test in ``tests/test_jit_disasm.py``).

Barrier pseudo-instructions render with a ``;`` comment flavor suffix and
are *not* re-parseable by design — hand-written programs must not contain
them.
"""

from __future__ import annotations

from .ir import Instr, Method, Opcode, Program


def _format_value(value: object) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def format_instr(instr: Instr) -> str:
    """One instruction as assembler text."""
    op, ops = instr.op, instr.operands
    if op is Opcode.CONST:
        return f"const {ops[0]}, {_format_value(ops[1])}"
    if op is Opcode.CALL:
        dst = "_" if ops[0] is None else ops[0]
        rest = ", ".join([ops[1], *ops[2:]])
        return f"call {dst}, {rest}"
    if op is Opcode.RET:
        return "ret" if ops[0] is None else f"ret {ops[0]}"
    if op in (Opcode.READBAR, Opcode.WRITEBAR, Opcode.ALLOCBAR,
              Opcode.SREADBAR, Opcode.SWRITEBAR):
        flavor = f"  ; {instr.flavor.value}" if instr.flavor else ""
        return f"{op.value} {ops[0]}{flavor}"
    rendered = ", ".join(str(o) for o in ops)
    return f"{op.value} {rendered}"


def _region_attrs(method: Method) -> str:
    """Render declared region attributes (``secrecy(..) integrity(..)
    catch(..)``) so parser-declared specs survive the round trip."""
    spec = method.region_spec
    if spec is None or not method.is_region:
        return ""
    parts = []
    if not spec.secrecy.is_empty:
        parts.append(f"secrecy({', '.join(str(t) for t in spec.secrecy)})")
    if not spec.integrity.is_empty:
        parts.append(f"integrity({', '.join(str(t) for t in spec.integrity)})")
    if spec.catch is not None:
        parts.append(f"catch({spec.catch})")
    return " " + " ".join(parts) if parts else ""


def disassemble_method(method: Method) -> str:
    if method.is_region:
        keyword = "region method"
    elif method.is_declassifier:
        keyword = "declassifier method"
    else:
        keyword = "method"
    attrs = _region_attrs(method)
    lines = [f"{keyword} {method.name}({', '.join(method.params)}){attrs} {{"]
    for label, block in method.blocks.items():
        lines.append(f"{label}:")
        for instr in block.instrs:
            lines.append(f"  {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def disassemble(program: Program) -> str:
    """The whole program as assembler text (classes first)."""
    parts = []
    for name, fields in program.classes.items():
        parts.append(f"class {name} {{ {', '.join(fields)} }}")
    for method in program.methods.values():
        parts.append(disassemble_method(method))
    return "\n\n".join(parts) + "\n"


def disassemble_tiers(program: Program, policy=None) -> str:
    """Per-method tier report (``lamc disasm --tiers``).

    For every method: the execution tier it starts in and the thresholds
    that promote it, the barrier flavors tier-2 would bake into the
    template, the superinstruction pairs fusion would form, the guarded
    entry points (call-entry guard plus OSR loop headers), and the call
    sites that re-dispatch through the engine.
    """
    from .tier2 import TierPolicy, plan_method

    if policy is None:
        policy = program.tier_policy or TierPolicy()
    lines = []
    tiered = program.tier_policy is not None
    lines.append(
        f"tier pipeline: interp -> table -> jit "
        f"(invocations >= {policy.invocation_threshold} or "
        f"back-edges >= {policy.backedge_threshold}; "
        f"fusion {'on' if policy.fusion else 'off'}; "
        f"{'attached' if tiered else 'not attached — plan only'})"
    )
    for method in program.methods.values():
        plan = plan_method(method, policy)
        lines.append("")
        kind = "region method" if plan.is_region else "method"
        lines.append(f"{kind} {method.name}:")
        if plan.barrier_flavors:
            flavors = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(plan.barrier_flavors.items())
            )
        else:
            flavors = "none"
        lines.append(f"  baked barriers: {flavors}")
        if plan.fused:
            for label, index, fused_kind in plan.fused:
                lines.append(f"  fused: {label}+{index} {fused_kind}")
        else:
            lines.append("  fused: none")
        guards = ["entry (context key)"]
        guards += [f"osr @{label}" for label in plan.loop_headers]
        lines.append(f"  guards: {', '.join(guards)}")
        lines.append(f"  call sites (re-dispatched): {plan.call_sites}")
    return "\n".join(lines) + "\n"
