"""Tier-2 template JIT: hot methods become exec-compiled Python.

The paper's enforcement story (Section 5.1) lives in the *compiler*: the
JIT picks a static or dynamic barrier variant per method and recovers —
by cloning or by dynamic barriers — when the compiled assumption goes
stale.  This module reproduces that adaptive layer as a tiered execution
engine over the mini-JIT IR:

Tier 0/1 (:mod:`repro.jit.interpreter`)
    The switch loop and the per-method handler tables.  With a
    :class:`Tier2Engine` attached they also *profile*: method invocations
    are counted at :meth:`Tier2Engine.call`, back-edges at the jump
    points of both dispatch loops.

Tier 2 (this module)
    A hot method's IR is translated to one Python function (``exec``'d
    once, cached on the :class:`~repro.jit.ir.Program`) with registers as
    Python locals, block dispatch as a ``while``/``elif`` chain, and —
    the Laminar-specific part — the *static* barrier variant for the
    label shape observed at compile time baked straight into the code:
    in-region barriers call the verdict-cached flow check against a
    baked-in :class:`~repro.core.labels.LabelPair` constant, out-region
    barriers inline the labeled-space membership test, and ``DYNAMIC``
    flavors specialize to the guarded context while still counting their
    dispatch (so :class:`~repro.runtime.barriers.BarrierStats` stay
    byte-identical across tiers).  Superinstruction fusion optionally
    collapses the hot pairs ``getfield``+``binop``, ``binop``+``cjump``
    and ``aload``+``astore`` into single statements.

Guards and deoptimization
    Compiled code is only entered through the code cache, and the cache
    key *is* the guard: ``("out",)``, ``("in", labels)``, or ``("region",
    labels)`` — looked up against the calling thread's actual region
    context at every call (and at OSR points).  A miss when a different
    variant exists is a *deopt*: the call runs in the interpreter (never
    raising :class:`~repro.jit.interpreter.StaleCompilationError` — that
    failure mode belongs to the static prototype, not the tiered engine),
    and after :attr:`TierPolicy.deopt_recompile_threshold` such misses
    the engine materializes the opposite-context variant via
    :func:`repro.jit.cloning.clone_variant` — the paper's "a production
    implementation would use cloning" — and compiles it for the new
    shape.  Region-method bodies are compiled per observed in-region
    label pair, so nested entries and mutated
    :class:`~repro.jit.ir.RegionSpec`\\ s each get (and guard) their own
    variant.

Cache invalidation
    Entries are validated per :meth:`Interpreter.run` against the
    program's shape stamp (IR passes mutate methods in place) and a
    module-wide *code epoch* bumped by every
    :func:`repro.core.fastpath.clear_caches` /
    :func:`~repro.core.fastpath.configure` — compiled bodies bake interned
    label identities and cache-layer assumptions, so a fastpath
    reconfiguration discards them wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core import LabelPair, RegionViolation, fastpath
from ..runtime.barriers import cached_check_flow
from .cloning import clone_variant
from .interpreter import _BINOPS, IRArray, IRObject, Interpreter
from .ir import BarrierFlavor, Method, Opcode, Program, RegionSpec

__all__ = [
    "TierPolicy",
    "Tier2Engine",
    "CompiledMethod",
    "TierPlan",
    "plan_method",
    "find_fused_pairs",
]

#: Cap on compiled context variants per method: beyond this the method is
#: megamorphic over label shapes and further contexts just interpret.
MAX_VARIANTS = 4

#: The single out-of-region context key (no labels to specialize on:
#: "outside a security region threads always have empty labels").
_OUT_KEY = ("out",)
#: Universal variant key for certified methods (see
#: :mod:`repro.analysis.typecheck`): a certificate proves every check in
#: the method discharged in every reachable context, and the certified
#: build already deleted its barriers — so one guard-free variant serves
#: all label shapes and contexts, and entry-guard deopts cannot happen.
_CERT_KEY = ("cert",)

# -- code epoch ---------------------------------------------------------------

#: Bumped whenever the fastpath caches flush: compiled bodies bake interned
#: LabelPair identities and cache-layer assumptions, so they die with them.
_CODE_EPOCH = 1


def _bump_code_epoch() -> None:
    global _CODE_EPOCH
    _CODE_EPOCH += 1


fastpath.register_cache(_bump_code_epoch)


def code_epoch() -> int:
    return _CODE_EPOCH


# -- policy / profile ---------------------------------------------------------


@dataclass(frozen=True)
class TierPolicy:
    """Thresholds and switches for the tiered engine.

    Attach via ``Compiler(tier="jit")`` (which stores a policy on the
    program) or pass directly to :class:`~repro.jit.interpreter.Interpreter`.
    """

    #: Method invocations before the entry path compiles it.
    invocation_threshold: int = 12
    #: Back-edges taken (per method) before OSR compiles mid-invocation.
    backedge_threshold: int = 60
    #: Entry-guard misses before the opposite-context clone is compiled.
    deopt_recompile_threshold: int = 2
    #: Superinstruction fusion: collapse ``getfield``+``binop``,
    #: ``binop``+``cjump`` and ``aload``+``astore`` pairs into single
    #: statements, and inline binop operators (``div`` keeps its helper:
    #: its int/float behavior needs the function).  Off = one statement
    #: per IR instruction through the bound-function table.
    fusion: bool = True


class MethodProfile:
    """Cheap per-method counters maintained by the profiling tier."""

    __slots__ = ("invocations", "backedges", "deopts")

    def __init__(self) -> None:
        self.invocations = 0
        self.backedges = 0
        self.deopts = 0


class CompiledMethod:
    """One exec-compiled context variant of a method."""

    __slots__ = ("fn", "key", "variant_name", "entry_index", "fused_pairs",
                 "source")

    def __init__(
        self,
        fn: Callable,
        variant_name: str,
        entry_index: dict[str, int],
        fused_pairs: dict,
        source: str,
    ) -> None:
        self.fn = fn
        self.key: tuple = ()
        self.variant_name = variant_name
        self.entry_index = entry_index
        self.fused_pairs = fused_pairs
        self.source = source


# -- structural analysis ------------------------------------------------------


def backedge_targets(method: Method) -> frozenset:
    """Loop-header labels: targets of edges that go backwards (or to the
    same block) in block order.  These are the OSR entry points."""
    order = {label: i for i, label in enumerate(method.blocks)}
    targets = set()
    for label, block in method.blocks.items():
        for succ in block.successors():
            if order.get(succ, len(order)) <= order[label]:
                targets.add(succ)
    return frozenset(targets)


def find_fused_pairs(method: Method) -> dict:
    """Locate fusable superinstruction pairs: ``(block label, index of the
    first instruction) -> kind``.

    A pair fuses only when strictly adjacent and when the producing
    register is read exactly once in the whole method (by the consumer),
    so skipping its materialization is unobservable.
    """
    reads: dict[str, int] = {}
    for instr in method.all_instrs():
        for r in instr.used_registers():
            reads[r] = reads.get(r, 0) + 1
    pairs: dict = {}
    for label, block in method.blocks.items():
        instrs = block.instrs
        i = 0
        while i < len(instrs) - 1:
            a, b = instrs[i], instrs[i + 1]
            kind = None
            if a.op is Opcode.GETFIELD and b.op is Opcode.BINOP:
                t = a.operands[0]
                if reads.get(t, 0) == 1 and (
                    (b.operands[2] == t) != (b.operands[3] == t)
                ):
                    kind = "getfield+binop"
            elif a.op is Opcode.BINOP and b.op is Opcode.BR:
                t = a.operands[0]
                if b.operands[0] == t and reads.get(t, 0) == 1:
                    kind = "binop+cjump"
            elif a.op is Opcode.ALOAD and b.op is Opcode.ASTORE:
                t = a.operands[0]
                if b.operands[2] == t and reads.get(t, 0) == 1:
                    kind = "aload+astore"
            if kind is not None:
                pairs[(label, i)] = kind
                i += 2
            else:
                i += 1
    return pairs


@dataclass
class TierPlan:
    """What tier-2 would do with one method (``lamc disasm --tiers``)."""

    method: str
    is_region: bool
    barrier_flavors: dict[str, int]
    fused: list[tuple[str, int, str]]
    call_sites: int
    loop_headers: tuple[str, ...]


def plan_method(method: Method, policy: TierPolicy) -> TierPlan:
    flavors: dict[str, int] = {}
    call_sites = 0
    for instr in method.all_instrs():
        if instr.flavor is not None:
            flavors[instr.flavor.value] = flavors.get(instr.flavor.value, 0) + 1
        if instr.op is Opcode.CALL:
            call_sites += 1
    fused = find_fused_pairs(method) if policy.fusion else {}
    return TierPlan(
        method=method.name,
        is_region=method.is_region,
        barrier_flavors=flavors,
        fused=[(label, i, kind) for (label, i), kind in sorted(fused.items())],
        call_sites=call_sites,
        loop_headers=tuple(sorted(backedge_targets(method))),
    )


# -- template code generation -------------------------------------------------

_PYOPS = {
    "add": "+", "sub": "-", "mul": "*", "mod": "%",
    "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "eq": "==", "ne": "!=",
    "band": "&", "bor": "|", "bxor": "^", "shl": "<<", "shr": ">>",
    # "div" deliberately absent: its int//int-else-/ behavior needs the
    # bound function even under fusion.
}

#: Opcodes whose generated statement cannot raise for any register
#: contents, so their ``executed`` increment can batch with a later flush
#: (the count stays exact at every possible raise point).
_SAFE_OPS = frozenset({
    Opcode.CONST, Opcode.MOV, Opcode.NEW, Opcode.GETSTATIC,
    Opcode.PUTSTATIC, Opcode.PRINT,
})

#: The canonical out-of-region violation message (must match
#: repro.jit.interpreter._OUT_OF_REGION_MSG byte for byte — it lands in
#: REGION_SUPPRESS audit records).
_OUT_MSG = "IR access to labeled object outside any security region"


def _literal(value: Any) -> Optional[str]:
    if isinstance(value, float) and (value != value or value in (
        float("inf"), float("-inf")
    )):
        return None  # inf/nan repr is not a literal; bind as a constant
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    return None


class _Codegen:
    """Translate one method body to Python source for one context.

    ``in_region`` + ``thread_labels`` describe the guarded context the
    code is specialized to; barrier flavors stay faithful to the IR
    (a STATIC_OUT barrier in in-region code still runs the out-variant,
    exactly as the interpreter executes it), while DYNAMIC flavors
    specialize to the context but keep counting their dispatch.
    """

    def __init__(
        self,
        method: Method,
        program: Program,
        in_region: bool,
        thread_labels: LabelPair,
        fusion: bool,
        region_body: bool,
    ) -> None:
        self.method = method
        self.program = program
        self.in_region = in_region
        self.fusion = fusion
        self.region_body = region_body
        self.fused = find_fused_pairs(method) if fusion else {}
        self.globals: dict[str, Any] = {
            "_TL": thread_labels,
            "_EMPTY": LabelPair.EMPTY,
            "_RV": RegionViolation,
            "_cflow": cached_check_flow,
            "_IRObject": IRObject,
            "_IRArray": IRArray,
        }
        self.prologue: set[str] = set()
        self.lines: list[str] = []
        self.pending = 0
        self._const_n = 0
        # Registers -> collision-free local names, deterministic order.
        names: list[str] = list(method.params)
        seen = set(names)
        for instr in method.all_instrs():
            for r in (instr.defined_register(), *instr.used_registers()):
                if r is not None and r not in seen:
                    seen.add(r)
                    names.append(r)
        self.locals: dict[str, str] = {}
        used = set()
        for name in names:
            base = "v_" + "".join(
                c if (c.isalnum() or c == "_") else "_" for c in name
            )
            cand, i = base, 0
            while cand in used:
                i += 1
                cand = f"{base}_{i}"
            used.add(cand)
            self.locals[name] = cand
        # Loop headers dispatch first: the elif chain re-scans from the
        # top on every jump, so hot targets want small indices.
        headers = backedge_targets(method)
        order = [l for l in method.blocks if l in headers]
        order += [l for l in method.blocks if l not in headers]
        self.entry_index = {label: i for i, label in enumerate(order)}
        self.block_order = order

    # -- small helpers ----------------------------------------------------

    def R(self, reg: str) -> str:
        return self.locals[reg]

    def bind(self, name: str, value: Any) -> str:
        self.globals[name] = value
        return name

    def const(self, value: Any) -> str:
        lit = _literal(value)
        if lit is not None:
            return lit
        self._const_n += 1
        return self.bind(f"_K{self._const_n}", value)

    def binop_expr(self, opname: str, a: str, b: str) -> str:
        if self.fusion and opname in _PYOPS:
            return f"({a} {_PYOPS[opname]} {b})"
        fn = self.bind(f"_op_{opname}", _BINOPS[opname])
        return f"{fn}({a}, {b})"

    def emit(self, line: str, indent: int = 16) -> None:
        self.lines.append(" " * indent + line)

    def flush(self, count: int, indent: int = 16) -> None:
        """Account ``pending`` safe instructions plus ``count`` about to
        run, *before* a statement that can raise (matching the
        interpreter's increment-then-execute order exactly)."""
        total = self.pending + count
        if total:
            self.emit(f"_ex += {total}", indent)
        self.pending = 0

    # -- barrier sequences ------------------------------------------------

    def _object_barrier(self, instr, reg: str, is_read: bool) -> list[str]:
        counter = "read_barriers" if is_read else "write_barriers"
        lines = [f"_stats.{counter} += 1"]
        flavor = instr.flavor
        if flavor is BarrierFlavor.DYNAMIC:
            lines.append("_stats.dynamic_dispatches += 1")
            variant_in = self.in_region
        else:
            variant_in = flavor is BarrierFlavor.STATIC_IN
        r = self.R(reg)
        if variant_in:
            lines.append("_stats.label_checks += 1")
            if is_read:
                lines.append(
                    f"_cflow(_thread, {r}.header.labels, _TL, _stats, "
                    f"context='IR read')"
                )
            else:
                lines.append(
                    f"_cflow(_thread, _TL, {r}.header.labels, _stats, "
                    f"context='IR write')"
                )
            self.prologue.add("_stats")
        else:
            lines.append("_stats.space_checks += 1")
            lines.append(f"if _labeled({r}.header):")
            lines.append(f"    raise _RV({_OUT_MSG!r})")
            self.prologue.update(("_stats", "_labeled"))
        return lines

    def _alloc_barrier(self, instr, reg: str) -> list[str]:
        lines = ["_stats.alloc_barriers += 1"]
        flavor = instr.flavor
        if flavor is BarrierFlavor.DYNAMIC:
            lines.append("_stats.dynamic_dispatches += 1")
            variant_in = self.in_region
        else:
            variant_in = flavor is BarrierFlavor.STATIC_IN
        if variant_in:
            lines.append(f"_heap.label_fresh({self.R(reg)}.header, _TL)")
            self.prologue.add("_heap")
        self.prologue.add("_stats")
        return lines

    def _static_bar(self, instr, name: str, is_read: bool) -> list[str]:
        counter = "read_barriers" if is_read else "write_barriers"
        lines = [f"_stats.{counter} += 1"]
        flavor = instr.flavor
        if flavor is BarrierFlavor.DYNAMIC:
            lines.append("_stats.dynamic_dispatches += 1")
            variant_in = self.in_region
        else:
            variant_in = flavor is BarrierFlavor.STATIC_IN
        lines.append(f"_sl = _slabels.get({name!r}, _EMPTY)")
        if variant_in:
            lines.append("_stats.label_checks += 1")
            ctxstr = f"static {name}"
            if is_read:
                lines.append(
                    f"_cflow(_thread, _sl, _TL, _stats, context={ctxstr!r})"
                )
            else:
                lines.append(
                    f"_cflow(_thread, _TL, _sl, _stats, context={ctxstr!r})"
                )
        else:
            msg = (
                f"access to labeled static {name!r} outside any "
                f"security region"
            )
            lines.append("_stats.space_checks += 1")
            lines.append("if not _sl.is_empty:")
            lines.append(f"    raise _RV({msg!r})")
        self.prologue.update(("_stats", "_slabels"))
        return lines

    # -- per-instruction emission -----------------------------------------

    def emit_instr(self, instr) -> None:
        """One non-terminator instruction as statement(s)."""
        op = instr.op
        ops = instr.operands
        R = self.R
        if op in _SAFE_OPS:
            self.pending += 1
            if op is Opcode.CONST:
                self.emit(f"{R(ops[0])} = {self.const(ops[1])}")
            elif op is Opcode.MOV:
                self.emit(f"{R(ops[0])} = {R(ops[1])}")
            elif op is Opcode.NEW:
                fields = self.bind(
                    f"_F_{len(self.globals)}", tuple(self.program.classes[ops[1]])
                )
                self.prologue.add("_heap")
                self.emit(
                    f"{R(ops[0])} = _IRObject(_heap.allocate_header(_EMPTY), "
                    f"{ops[1]!r}, dict.fromkeys({fields}, 0))"
                )
            elif op is Opcode.GETSTATIC:
                self.prologue.add("_statics")
                self.emit(f"{R(ops[0])} = _statics.get({ops[1]!r}, 0)")
            elif op is Opcode.PUTSTATIC:
                self.prologue.add("_statics")
                self.emit(f"_statics[{ops[0]!r}] = {R(ops[1])}")
            elif op is Opcode.PRINT:
                self.prologue.add("_out")
                self.emit(f"_out.append({R(ops[0])})")
            return
        # can-raise statements: flush executed-count first
        if op is Opcode.BINOP:
            self.flush(1)
            self.emit(
                f"{R(ops[0])} = {self.binop_expr(ops[1], R(ops[2]), R(ops[3]))}"
            )
        elif op is Opcode.UNOP:
            self.flush(1)
            expr = f"-{R(ops[2])}" if ops[1] == "neg" else f"not {R(ops[2])}"
            self.emit(f"{R(ops[0])} = {expr}")
        elif op is Opcode.NEWARRAY:
            self.flush(1)
            self.prologue.add("_heap")
            self.emit(
                f"{R(ops[0])} = _IRArray(_heap.allocate_header(_EMPTY), "
                f"[0] * {R(ops[1])})"
            )
        elif op is Opcode.GETFIELD:
            self.flush(1)
            self.emit(f"{R(ops[0])} = {R(ops[1])}.fields[{ops[2]!r}]")
        elif op is Opcode.PUTFIELD:
            self.flush(1)
            self.emit(f"{R(ops[0])}.fields[{ops[1]!r}] = {R(ops[2])}")
        elif op is Opcode.ALOAD:
            self.flush(1)
            self.emit(f"{R(ops[0])} = {R(ops[1])}.items[{R(ops[2])}]")
        elif op is Opcode.ASTORE:
            self.flush(1)
            self.emit(f"{R(ops[0])}.items[{R(ops[1])}] = {R(ops[2])}")
        elif op is Opcode.ARRAYLEN:
            self.flush(1)
            self.emit(f"{R(ops[0])} = len({R(ops[1])}.items)")
        elif op is Opcode.CALL:
            self.flush(1)
            self.prologue.update(("_call", "_method"))
            args = ", ".join(R(a) for a in ops[2:])
            call = f"_call(_method({ops[1]!r}), [{args}])"
            if ops[0] is not None:
                self.emit(f"{R(ops[0])} = {call}")
            else:
                self.emit(call)
        elif op is Opcode.READBAR:
            self.flush(1)
            for line in self._object_barrier(instr, ops[0], is_read=True):
                self.emit(line)
        elif op is Opcode.WRITEBAR:
            self.flush(1)
            for line in self._object_barrier(instr, ops[0], is_read=False):
                self.emit(line)
        elif op is Opcode.ALLOCBAR:
            self.flush(1)
            for line in self._alloc_barrier(instr, ops[0]):
                self.emit(line)
        elif op is Opcode.SREADBAR:
            self.flush(1)
            for line in self._static_bar(instr, ops[0], is_read=True):
                self.emit(line)
        elif op is Opcode.SWRITEBAR:
            self.flush(1)
            for line in self._static_bar(instr, ops[0], is_read=False):
                self.emit(line)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled opcode {op}")

    def emit_terminator(self, instr) -> None:
        op, ops = instr.op, instr.operands
        self.flush(1)
        if op is Opcode.RET:
            if self.region_body:
                # Region bodies return nothing; `break` exits the dispatch
                # loop and falls off the function (the engine holds the
                # region context manager).
                self.emit("break")
            elif ops[0] is not None:
                self.emit(f"return {self.R(ops[0])}")
            else:
                self.emit("return None")
        elif op is Opcode.JMP:
            self.emit(f"_label = {self.entry_index[ops[0]]}")
            self.emit("continue")
        elif op is Opcode.BR:
            t, f = self.entry_index[ops[1]], self.entry_index[ops[2]]
            self.emit(f"_label = {t} if {self.R(ops[0])} else {f}")
            self.emit("continue")
        else:  # pragma: no cover
            raise AssertionError(f"bad terminator {op}")

    def emit_fused(self, kind: str, a, b) -> None:
        """One fused superinstruction pair: a single statement accounting
        for both instructions (``executed`` parity holds on non-faulting
        paths; a fault inside the pair attributes both at once)."""
        R = self.R
        if kind == "binop+cjump":
            # The pair ends the block: branch directly on the comparison.
            self.flush(2)
            expr = self.binop_expr(a.operands[1], R(a.operands[2]), R(a.operands[3]))
            t = self.entry_index[b.operands[1]]
            f = self.entry_index[b.operands[2]]
            self.emit(f"_label = {t} if {expr} else {f}")
            self.emit("continue")
        elif kind == "getfield+binop":
            self.flush(2)
            load = f"{R(a.operands[1])}.fields[{a.operands[2]!r}]"
            t = a.operands[0]
            if b.operands[2] == t:
                expr = self.binop_expr(b.operands[1], load, R(b.operands[3]))
            else:
                expr = self.binop_expr(b.operands[1], R(b.operands[2]), load)
            self.emit(f"{R(b.operands[0])} = {expr}")
        elif kind == "aload+astore":
            self.flush(2)
            self.emit(
                f"{R(b.operands[0])}.items[{R(b.operands[1])}] = "
                f"{R(a.operands[1])}.items[{R(a.operands[2])}]"
            )
        else:  # pragma: no cover
            raise AssertionError(kind)

    # -- whole-function assembly ------------------------------------------

    def generate(self) -> tuple[str, dict[str, Any]]:
        for label in self.block_order:
            block = self.method.blocks[label]
            idx = self.entry_index[label]
            head = "if" if idx == self.entry_index[self.block_order[0]] else "elif"
            self.emit(f"{head} _label == {idx}:", 12)
            self.pending = 0
            instrs = block.instrs
            i = 0
            emitted = False
            while i < len(instrs):
                kind = self.fused.get((label, i))
                if kind is not None:
                    self.emit_fused(kind, instrs[i], instrs[i + 1])
                    i += 2
                    emitted = True
                    continue
                instr = instrs[i]
                if instr.op in (Opcode.RET, Opcode.JMP, Opcode.BR):
                    self.emit_terminator(instr)
                else:
                    self.emit_instr(instr)
                i += 1
                emitted = True
            if not emitted:
                self.emit("pass")
            last = instrs[-1] if instrs else None
            if last is None or (
                last.op not in (Opcode.RET, Opcode.JMP, Opcode.BR)
                and self.fused.get((label, len(instrs) - 2)) != "binop+cjump"
            ):
                # Should be unreachable after normalize(); mirror the
                # interpreter's fell-off-the-end assertion.
                self.flush(0)
                self.emit(
                    f"raise AssertionError('block {label} fell off the end')"
                )
        prologue_map = {
            "_stats": "ctx.stats",
            "_heap": "ctx.heap",
            "_statics": "ctx.statics",
            "_out": "ctx.output",
            "_labeled": "ctx.labeled",
            "_call": "ctx.interp._call",
            "_method": "ctx.program.method",
            "_slabels": "ctx.interp.static_labels",
        }
        src = [f"def _t2(ctx, _thread, regs, _entry):"]
        for name in sorted(self.prologue):
            src.append(f"    {name} = {prologue_map[name]}")
        if self.locals:
            src.append("    _rg = regs.get")
            for reg, local in self.locals.items():
                src.append(f"    {local} = _rg({reg!r})")
        src.append("    _ex = 0")
        src.append("    try:")
        src.append("        _label = _entry")
        src.append("        while True:")
        src.extend(self.lines)
        src.append("            else:")
        src.append("                raise AssertionError('unknown tier-2 block index')")
        src.append("    finally:")
        src.append("        ctx.interp.executed += _ex")
        if self.region_body:
            src.append("    return None")
        return "\n".join(src) + "\n", self.globals


def bake_closure(source: str, bindings: dict, entry: str, filename: str):
    """Exec-compile generated ``source`` with constants pre-bound as its
    globals and return the ``entry`` function.

    The tier-2 template compiler and the OS hook-chain compiler
    (:mod:`repro.osim.hookchain`) share this step: both emit plain
    Python whose free names are baked constants (interned labels, inode
    references, handler tables), so the generated code runs with zero
    per-call environment lookups beyond the globals dict.  ``bindings``
    is copied — callers may reuse their template dictionaries.
    """
    glob = dict(bindings)
    exec(compile(source, filename, "exec"), glob)
    return glob[entry]


def compile_method(
    method: Method,
    program: Program,
    in_region: bool,
    thread_labels: LabelPair,
    fusion: bool,
    region_body: bool,
    variant_name: str,
) -> CompiledMethod:
    """Translate ``method`` to a compiled context variant (see module doc)."""
    gen = _Codegen(
        method, program, in_region, thread_labels, fusion, region_body
    )
    source, glob = gen.generate()
    fn = bake_closure(source, glob, "_t2", f"<tier2:{variant_name}>")
    return CompiledMethod(fn, variant_name, gen.entry_index, gen.fused, source)


# -- the engine ---------------------------------------------------------------


class Tier2Engine:
    """Profiling + code cache + guard/deopt protocol for one interpreter.

    Compiled code is shared across engines through
    ``program.tier2_cache``; profiles and event counters are per-engine
    (they describe one interpreter's execution, and ``lamc run`` reports
    them).
    """

    def __init__(self, interp: Interpreter, policy: TierPolicy) -> None:
        self.interp = interp
        self.policy = policy
        self.program = interp.program
        self.cache = self.program.tier2_cache
        self.profiles: dict[str, MethodProfile] = {}
        #: method name -> set of context keys compiled (the deopt detector:
        #: a key miss while this is non-empty means the guard failed).
        self._variants: dict[str, set] = {}
        for name, key in self.cache:
            self._variants.setdefault(name, set()).add(key)
        self._backedges: dict[str, frozenset] = {}
        self._uncompilable: set[str] = set()
        # Per-engine event counters (lamc run's tier-2 report line).
        self.compiles = 0
        self.entries = 0
        self.deopts = 0
        self.osr_entries = 0

    # -- cache validity ---------------------------------------------------

    def validate(self, stamp: int) -> None:
        """Discard compiled code when the program shape or the fastpath
        code epoch moved (called once per ``Interpreter.run``)."""
        meta = (stamp, _CODE_EPOCH)
        if self.program.tier2_meta != meta:
            if self.cache:
                fastpath.counters.tier2_invalidations += 1
            self.cache.clear()
            self.program.tier2_meta = meta
            self._variants.clear()
            self._backedges.clear()
            self._uncompilable.clear()
            self.profiles.clear()

    # -- profiling + dispatch ---------------------------------------------

    def call(self, method: Method, args: list) -> Any:
        profile = self.profiles.get(method.name)
        if profile is None:
            profile = self.profiles[method.name] = MethodProfile()
        profile.invocations += 1
        if method.is_region:
            return self._call_region(method, args, profile)
        thread = self.interp.vm.current_thread
        if method.name in self.program.certified_methods:
            key: tuple = _CERT_KEY
        elif thread.in_region:
            key = ("in", thread.labels)
        else:
            key = _OUT_KEY
        compiled = self.cache.get((method.name, key))
        if compiled is None:
            compiled = self._maybe_compile(method, key, profile)
        if compiled is None:
            return self.interp._call_cold(method, args)
        return self._enter(
            compiled, thread, dict(zip(method.params, args)),
            compiled.entry_index[method.entry],
        )

    def _call_region(
        self, method: Method, args: list, profile: MethodProfile
    ) -> None:
        """Region prologue/epilogue live in the engine: enter the region,
        then dispatch the *body* on the label pair actually observed
        inside (nesting-proof, and spec mutations change the key)."""
        interp = self.interp
        spec = method.region_spec or RegionSpec()
        catch = None
        if spec.catch is not None:
            handler = self.program.method(spec.catch)

            def catch(exc: BaseException) -> None:
                interp._execute(handler, [])

        with interp.vm.region(
            secrecy=spec.secrecy,
            integrity=spec.integrity,
            caps=spec.caps,
            catch=catch,
            name=method.name,
        ):
            thread = interp.vm.current_thread
            if method.name in self.program.certified_methods:
                key = _CERT_KEY
            else:
                key = ("region", thread.labels)
            compiled = self.cache.get((method.name, key))
            if compiled is None:
                compiled = self._maybe_compile(method, key, profile)
            if compiled is None:
                interp._execute(method, args)
            else:
                self._enter(
                    compiled, thread, dict(zip(method.params, args)),
                    compiled.entry_index[method.entry],
                )
        return None

    def _enter(self, compiled: CompiledMethod, thread, regs, entry: int) -> Any:
        stats = self.interp.vm.barriers.stats
        stats.tier2_entries += 1
        fastpath.counters.tier2_entries += 1
        self.entries += 1
        return compiled.fn(self.interp.ctx, thread, regs, entry)

    def _maybe_compile(
        self, method: Method, key: tuple, profile: MethodProfile
    ) -> Optional[CompiledMethod]:
        if method.name in self._uncompilable:
            return None
        existing = self._variants.get(method.name)
        if existing:
            # Entry-guard miss: compiled code exists, but for a different
            # region context / label shape.  Deoptimize to the interpreter
            # (never raise StaleCompilationError); recompile this context
            # as its own clone once the misses repeat.
            profile.deopts += 1
            self.deopts += 1
            self.interp.vm.barriers.stats.tier2_deopts += 1
            fastpath.counters.tier2_deopts += 1
            if len(existing) >= MAX_VARIANTS:
                return None
            if profile.deopts < self.policy.deopt_recompile_threshold:
                return None
            return self._compile(method, key)
        policy = self.policy
        if (
            profile.invocations >= policy.invocation_threshold
            or profile.backedges >= policy.backedge_threshold
        ):
            return self._compile(method, key)
        return None

    def _compile(self, method: Method, key: tuple) -> Optional[CompiledMethod]:
        kind = key[0]
        if kind == "cert":
            # Certified method: barriers are already gone, so the code is
            # context-independent — one universal variant, no label-shape
            # specialization and no entry guard to deopt on.
            src_method, in_region, labels = (
                method, method.is_region, LabelPair.EMPTY
            )
        elif kind == "in":
            # The per-context clone of Section 5.1: materialized through
            # the cloning pass's machinery, compiled for the in-region
            # label shape that kept deopting.
            src_method = clone_variant(method, True)
            in_region, labels = True, key[1]
        elif kind == "region":
            src_method, in_region, labels = method, True, key[1]
        else:
            src_method, in_region, labels = method, False, LabelPair.EMPTY
        try:
            compiled = compile_method(
                src_method, self.program,
                in_region=in_region,
                thread_labels=labels,
                fusion=self.policy.fusion,
                region_body=method.is_region,
                variant_name=src_method.name,
            )
        except Exception:
            # Codegen must never take execution down: mark and interpret.
            self._uncompilable.add(method.name)
            return None
        compiled.key = key
        self.cache[(method.name, key)] = compiled
        self._variants.setdefault(method.name, set()).add(key)
        self.compiles += 1
        fastpath.counters.tier2_compiles += 1
        if kind == "in":
            fastpath.counters.tier2_clones += 1
        return compiled

    # -- OSR --------------------------------------------------------------

    def osr_probe(self, method: Method) -> Optional[Callable]:
        """A per-invocation back-edge hook for the interpreter loops.

        Returns ``None`` for loop-free methods (zero overhead); otherwise
        a closure the dispatch loop calls at every taken jump.  The
        closure counts back-edges and, past the threshold, compiles for
        the *current* context and transfers execution into the compiled
        body at the loop header (on-stack replacement) — returning the
        method result wrapped in a 1-tuple.
        """
        targets = self._backedges.get(method.name)
        if targets is None:
            targets = self._backedges[method.name] = backedge_targets(method)
        if not targets:
            return None
        profile = self.profiles.get(method.name)
        if profile is None:
            profile = self.profiles[method.name] = MethodProfile()
        policy = self.policy
        thread = self.interp.vm.current_thread

        def probe(label: str, regs: dict) -> Optional[tuple]:
            if label not in targets:
                return None
            profile.backedges += 1
            if profile.backedges < policy.backedge_threshold:
                return None
            if method.name in self._uncompilable:
                return None
            if method.name in self.program.certified_methods:
                key: tuple = _CERT_KEY
            elif method.is_region:
                key = ("region", thread.labels)
            elif thread.in_region:
                key = ("in", thread.labels)
            else:
                key = _OUT_KEY
            compiled = self.cache.get((method.name, key))
            if compiled is None:
                existing = self._variants.get(method.name)
                if existing and len(existing) >= MAX_VARIANTS:
                    return None
                compiled = self._compile(method, key)
                if compiled is None:
                    return None
            self.osr_entries += 1
            fastpath.counters.tier2_osr_entries += 1
            result = self._enter(
                compiled, thread, regs, compiled.entry_index[label]
            )
            return (result,)

        return probe
