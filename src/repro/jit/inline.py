"""Method inlining.

"Although the optimization is intraprocedural, the compiler already
inlines small and hot methods, increasing the scope of redundancy
elimination" (Section 5.1).  This pass inlines non-recursive calls to
small methods so that the barrier-elimination pass can see across the old
call boundary — the interaction the ablation benchmark measures.

Region methods are never inlined: a region is a dynamic scope change the
caller must not absorb (its barriers compile under a different context).

The rewrite for ``call dst, callee, a, b`` splices the callee in with
uniquely renamed registers and labels:

* parameter registers receive ``mov`` copies of the arguments,
* every ``ret v`` becomes ``mov dst, v`` (if ``dst``) + ``jmp`` to a
  fresh continuation block holding the instructions after the call.
"""

from __future__ import annotations

import itertools

from .ir import Instr, Method, Opcode, Program

#: Methods at or below this instruction count are inlined.
DEFAULT_INLINE_THRESHOLD = 24


def _renamer(counter: itertools.count) -> tuple[dict[str, str], int]:
    return {}, next(counter)


def _rename_reg(name: str, mapping: dict[str, str], serial: int) -> str:
    if name not in mapping:
        mapping[name] = f"{name}$i{serial}"
    return mapping[name]


def _rewrite_instr(
    instr: Instr,
    reg_map: dict[str, str],
    label_map: dict[str, str],
    serial: int,
) -> Instr:
    """Clone an instruction with registers and labels renamed."""
    op = instr.op
    ops = instr.operands

    def r(name: str) -> str:
        return _rename_reg(name, reg_map, serial)

    if op is Opcode.CONST:
        return Instr(op, (r(ops[0]), ops[1]), instr.flavor)
    if op is Opcode.MOV:
        return Instr(op, (r(ops[0]), r(ops[1])), instr.flavor)
    if op is Opcode.BINOP:
        return Instr(op, (r(ops[0]), ops[1], r(ops[2]), r(ops[3])), instr.flavor)
    if op is Opcode.UNOP:
        return Instr(op, (r(ops[0]), ops[1], r(ops[2])), instr.flavor)
    if op is Opcode.NEW:
        return Instr(op, (r(ops[0]), ops[1]), instr.flavor)
    if op is Opcode.NEWARRAY:
        return Instr(op, (r(ops[0]), r(ops[1])), instr.flavor)
    if op is Opcode.GETFIELD:
        return Instr(op, (r(ops[0]), r(ops[1]), ops[2]), instr.flavor)
    if op is Opcode.PUTFIELD:
        return Instr(op, (r(ops[0]), ops[1], r(ops[2])), instr.flavor)
    if op is Opcode.ALOAD:
        return Instr(op, (r(ops[0]), r(ops[1]), r(ops[2])), instr.flavor)
    if op is Opcode.ASTORE:
        return Instr(op, (r(ops[0]), r(ops[1]), r(ops[2])), instr.flavor)
    if op is Opcode.ARRAYLEN:
        return Instr(op, (r(ops[0]), r(ops[1])), instr.flavor)
    if op is Opcode.GETSTATIC:
        return Instr(op, (r(ops[0]), ops[1]), instr.flavor)
    if op is Opcode.PUTSTATIC:
        return Instr(op, (ops[0], r(ops[1])), instr.flavor)
    if op is Opcode.CALL:
        dst = None if ops[0] is None else r(ops[0])
        return Instr(op, (dst, ops[1], *(r(a) for a in ops[2:])), instr.flavor)
    if op is Opcode.RET:
        value = None if ops[0] is None else r(ops[0])
        return Instr(op, (value,), instr.flavor)
    if op is Opcode.JMP:
        return Instr(op, (label_map[ops[0]],), instr.flavor)
    if op is Opcode.BR:
        return Instr(op, (r(ops[0]), label_map[ops[1]], label_map[ops[2]]), instr.flavor)
    if op is Opcode.PRINT:
        return Instr(op, (r(ops[0]),), instr.flavor)
    if op in (Opcode.READBAR, Opcode.WRITEBAR, Opcode.ALLOCBAR):
        return Instr(op, (r(ops[0]),), instr.flavor)
    raise AssertionError(f"unhandled opcode {op}")


def _inlinable(program: Program, name: str, threshold: int) -> bool:
    callee = program.methods.get(name)
    if callee is None:  # intrinsic
        return False
    if callee.is_region:
        return False
    if callee.instruction_count() > threshold:
        return False
    # No self-recursion (direct); indirect recursion is bounded by the
    # single-pass structure of inline_program.
    for instr in callee.all_instrs():
        if instr.op is Opcode.CALL and instr.operands[1] == name:
            return False
    return True


def inline_method_calls(
    program: Program, method: Method, threshold: int, counter: itertools.count
) -> int:
    """Inline eligible call sites in ``method``.  Returns call sites
    inlined.  Single pass: newly exposed calls (from the inlined body) are
    not revisited, which bounds growth."""
    inlined = 0
    work_labels = list(method.blocks)
    for label in work_labels:
        block = method.blocks[label]
        index = 0
        while index < len(block.instrs):
            instr = block.instrs[index]
            if instr.op is not Opcode.CALL or not _inlinable(
                program, instr.operands[1], threshold
            ):
                index += 1
                continue
            callee = program.methods[instr.operands[1]]
            serial = next(counter)
            reg_map: dict[str, str] = {}
            label_map = {
                lbl: f"{lbl}$i{serial}" for lbl in callee.blocks
            }
            cont_label = f"cont$i{serial}"
            dst = instr.operands[0]
            args = instr.operands[2:]
            # 1. argument copies
            prologue = [
                Instr(Opcode.MOV, (_rename_reg(p, reg_map, serial), a))
                for p, a in zip(callee.params, args)
            ]
            # 2. continuation block receives the remainder of this block
            cont = method.add_block(cont_label)
            cont.instrs = block.instrs[index + 1 :]
            # 3. current block: prologue + jump into the callee's entry
            block.instrs = block.instrs[:index] + prologue + [
                Instr(Opcode.JMP, (label_map[callee.entry],))
            ]
            # 4. splice renamed callee blocks, rewriting rets
            for lbl, cblock in callee.blocks.items():
                spliced = method.add_block(label_map[lbl])
                for cinstr in cblock.instrs:
                    if cinstr.op is Opcode.RET:
                        value = cinstr.operands[0]
                        if dst is not None and value is not None:
                            spliced.instrs.append(
                                Instr(
                                    Opcode.MOV,
                                    (dst, _rename_reg(value, reg_map, serial)),
                                )
                            )
                        spliced.instrs.append(Instr(Opcode.JMP, (cont_label,)))
                    else:
                        spliced.instrs.append(
                            _rewrite_instr(cinstr, reg_map, label_map, serial)
                        )
            inlined += 1
            # Continue scanning in the continuation block.
            block = cont
            label = cont_label
            index = 0
    return inlined


def inline_program(
    program: Program, threshold: int = DEFAULT_INLINE_THRESHOLD
) -> int:
    """Inline small callees across the whole program (one pass per
    method).  Returns total call sites inlined."""
    counter = itertools.count(1)
    total = 0
    for method in list(program.methods.values()):
        total += inline_method_calls(program, method, threshold, counter)
    return total
