"""Bytecode verification for the mini-JIT.

Section 5.1 closes its discussion of the method-granularity prototype
with: "a production implementation of Laminar could decouple security
regions from methods by enforcing local variable restrictions as part of
bytecode verification."  This module is that verifier.  It runs before
any other pass and rejects programs that could subvert the analyses the
security passes rely on:

1. **Definite assignment** — every register is defined on *every* path
   before any use.  This is the foundation the local-variable restrictions
   stand on: a region's writes cannot leak through a register the verifier
   would have flagged as conditionally defined.  (A forward must-analysis,
   reusing the dataflow framework.)
2. **Call integrity** — every callee exists and is invoked with the right
   arity, and region methods are only invoked via plain calls (their
   return-value ban is already guaranteed by the region checker).
3. **Block structure** — exactly one terminator per block, at the end
   (a barrier smuggled after a ``ret`` would never execute but would fool
   barrier accounting).

Verification failures are :class:`VerificationError`; the compiler runs
the verifier as its first pass, so unverifiable code never reaches barrier
insertion or the interpreter.
"""

from __future__ import annotations

from .cfg import CFG
from .dataflow import ForwardMustAnalysis
from .ir import Instr, Method, Opcode, Program, TERMINATORS


class VerificationError(ValueError):
    """The program failed bytecode verification."""


def _defs_transfer(instr: Instr, facts: frozenset) -> frozenset:
    defined = instr.defined_register()
    if defined is not None:
        return facts | {defined}
    return facts


def verify_method(method: Method, program: Program) -> list[str]:
    """Return the list of verification errors for one method."""
    errors: list[str] = []
    # -- block structure ------------------------------------------------------
    for label, block in method.blocks.items():
        if not block.instrs:
            errors.append(f"{method.name}/{label}: empty block")
            continue
        for i, instr in enumerate(block.instrs):
            is_last = i == len(block.instrs) - 1
            if instr.op in TERMINATORS and not is_last:
                errors.append(
                    f"{method.name}/{label}: instruction after terminator "
                    f"'{instr!r}'"
                )
            if is_last and instr.op not in TERMINATORS:
                errors.append(
                    f"{method.name}/{label}: block does not end in a "
                    f"terminator"
                )
    if errors:
        return errors  # structural breakage invalidates the dataflow below

    # -- call integrity ---------------------------------------------------------
    for block in method.blocks.values():
        for instr in block.instrs:
            if instr.op not in (Opcode.CALL, Opcode.SPAWN):
                continue
            verb = instr.op.value
            callee_name = instr.operands[1]
            callee = program.methods.get(callee_name)
            if callee is None:
                errors.append(
                    f"{method.name}: {verb} of unknown method {callee_name!r}"
                )
                continue
            arity = len(instr.operands) - 2
            if arity != len(callee.params):
                errors.append(
                    f"{method.name}: {verb} of {callee_name} with {arity} "
                    f"args, expected {len(callee.params)}"
                )
            if instr.op is Opcode.SPAWN and callee.is_region:
                errors.append(
                    f"{method.name}: spawn of region method {callee_name} "
                    f"(threads are created outside security regions)"
                )
            if (
                instr.op is Opcode.CALL
                and callee.is_region
                and instr.operands[0] is not None
            ):
                errors.append(
                    f"{method.name}: region method {callee_name} used as "
                    f"an expression (regions produce no value)"
                )

    # -- definite assignment ------------------------------------------------------
    cfg = CFG(method)
    analysis: ForwardMustAnalysis = ForwardMustAnalysis(cfg, _defs_transfer)
    analysis.solve()
    params = frozenset(method.params)
    reachable = cfg.reachable()
    for label in reachable:
        facts_list = analysis.facts_before_each_instr(label)
        # entry block starts with the parameters defined
        for instr, defined in zip(cfg.block(label).instrs, facts_list):
            available = defined | params
            for reg in instr.used_registers():
                if reg not in available:
                    errors.append(
                        f"{method.name}/{label}: register {reg!r} may be "
                        f"used before assignment in '{instr!r}'"
                    )
    return errors


def verify_program(program: Program) -> None:
    """Verify every method; raise :class:`VerificationError` with the full
    error listing if anything fails."""
    errors: list[str] = []
    for method in program.methods.values():
        errors.extend(verify_method(method, program))
    if errors:
        listing = "\n  ".join(errors)
        raise VerificationError(f"bytecode verification failed:\n  {listing}")
