"""Global copy propagation.

Inlining introduces ``mov param$iN, arg`` copies; barrier-redundancy facts
attach to register *names*, so without copy propagation a barrier on the
renamed parameter register proves nothing about the caller's register that
holds the same object.  This pass rewrites uses of copies back to their
sources wherever the copy provably still holds, which is what lets the
elimination pass see across inlined call boundaries — the "inlining
increases the scope of redundancy elimination" interaction of Section 5.1.

The analysis is a forward must-analysis over facts ``(dst, src)`` meaning
"``dst`` currently holds the same value as ``src`` on every path".  A fact
dies when either register is redefined.
"""

from __future__ import annotations

from .cfg import CFG
from .dataflow import ForwardMustAnalysis
from .ir import Instr, Method, Opcode, Program


def _transfer(instr: Instr, facts: frozenset) -> frozenset:
    defined = instr.defined_register()
    if instr.op is Opcode.MOV:
        dst, src = instr.operands
        if dst == src:
            return facts
        pruned = frozenset(
            (d, s) for (d, s) in facts if d != dst and s != dst
        )
        # Chase the chain: if src is itself a live copy of r, record (dst, r)
        # so rewriting lands on the oldest name in one step.
        root = src
        for (d, s) in pruned:
            if d == src:
                root = s
                break
        return pruned | {(dst, root)}
    if defined is not None:
        return frozenset((d, s) for (d, s) in facts if d != defined and s != defined)
    return facts


def _rewrite_uses(instr: Instr, mapping: dict[str, str]) -> Instr:
    """Replace used registers per ``mapping``, leaving defined ones alone."""
    if not mapping:
        return instr
    op, ops = instr.op, instr.operands

    def r(name: str) -> str:
        return mapping.get(name, name)

    if op is Opcode.MOV:
        return Instr(op, (ops[0], r(ops[1])), instr.flavor)
    if op is Opcode.BINOP:
        return Instr(op, (ops[0], ops[1], r(ops[2]), r(ops[3])), instr.flavor)
    if op is Opcode.UNOP:
        return Instr(op, (ops[0], ops[1], r(ops[2])), instr.flavor)
    if op is Opcode.NEWARRAY:
        return Instr(op, (ops[0], r(ops[1])), instr.flavor)
    if op is Opcode.GETFIELD:
        return Instr(op, (ops[0], r(ops[1]), ops[2]), instr.flavor)
    if op is Opcode.PUTFIELD:
        return Instr(op, (r(ops[0]), ops[1], r(ops[2])), instr.flavor)
    if op is Opcode.ALOAD:
        return Instr(op, (ops[0], r(ops[1]), r(ops[2])), instr.flavor)
    if op is Opcode.ASTORE:
        return Instr(op, (r(ops[0]), r(ops[1]), r(ops[2])), instr.flavor)
    if op is Opcode.ARRAYLEN:
        return Instr(op, (ops[0], r(ops[1])), instr.flavor)
    if op is Opcode.PUTSTATIC:
        return Instr(op, (ops[0], r(ops[1])), instr.flavor)
    if op is Opcode.CALL:
        return Instr(
            op, (ops[0], ops[1], *(r(a) for a in ops[2:])), instr.flavor
        )
    if op is Opcode.RET:
        value = None if ops[0] is None else r(ops[0])
        return Instr(op, (value,), instr.flavor)
    if op is Opcode.BR:
        return Instr(op, (r(ops[0]), ops[1], ops[2]), instr.flavor)
    if op is Opcode.PRINT:
        return Instr(op, (r(ops[0]),), instr.flavor)
    if op in (Opcode.READBAR, Opcode.WRITEBAR, Opcode.ALLOCBAR):
        return Instr(op, (r(ops[0]),), instr.flavor)
    return instr


def propagate_copies_method(method: Method) -> int:
    """Rewrite register uses through provable copies; returns rewrites."""
    cfg = CFG(method)
    analysis: ForwardMustAnalysis = ForwardMustAnalysis(cfg, _transfer)
    analysis.solve()
    rewrites = 0
    for label, block in method.blocks.items():
        facts_before = analysis.facts_before_each_instr(label)
        new_instrs = []
        for instr, facts in zip(block.instrs, facts_before):
            mapping = {d: s for (d, s) in facts}
            rewritten = _rewrite_uses(instr, mapping)
            if rewritten.operands != instr.operands:
                rewrites += 1
            new_instrs.append(rewritten)
        block.instrs = new_instrs
    return rewrites


def propagate_copies(program: Program) -> int:
    return sum(propagate_copies_method(m) for m in program.methods.values())
