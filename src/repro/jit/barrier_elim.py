"""Redundant barrier elimination (Section 5.1).

"Because object labels are immutable and security regions cannot change
their labels, repeated barriers and checks on the same object are
redundant.  We implement an intraprocedural, flow-sensitive data-flow
analysis that identifies redundant barriers and removes them.  A read (or
write) barrier is redundant if the object has been read (written), or if
the object was allocated, along every incoming path."

Implementation: a forward *must* analysis over facts ``(register, kind)``
meaning "the object currently in ``register`` has already passed a
``kind`` barrier (or was freshly allocated) on every path to here".

Kill rules keep the analysis sound without alias tracking:

* redefining a register kills its facts (the register may now hold a
  different object);
* ``mov dst, src`` *copies* facts from ``src`` to ``dst`` (same object);
* allocation generates both read and write facts for the destination —
  fresh objects carry the region's own labels, so every check passes;
* calls kill nothing: object labels are immutable and a method's region
  context cannot change under it (regions are lexically scoped), so a
  callee cannot invalidate a caller's checks.

A read fact does **not** imply a write fact or vice versa: the secrecy and
integrity comparisons point in opposite directions.
"""

from __future__ import annotations

from .barrier_insertion import BARRIER_OPS
from .cfg import CFG
from .dataflow import ForwardMustAnalysis
from .ir import ALLOC_OPS, Instr, Method, Opcode, Program

#: Fact kinds.
READ = "read"
WRITE = "write"


#: Prefix marking static-barrier facts; cannot collide with registers
#: (identifiers never contain NUL).
_STATIC_KEY = "\0static\0"


def _transfer(instr: Instr, facts: frozenset) -> frozenset:
    op = instr.op
    if op is Opcode.READBAR:
        return facts | {(instr.operands[0], READ)}
    if op is Opcode.WRITEBAR:
        return facts | {(instr.operands[0], WRITE)}
    if op is Opcode.SREADBAR:
        # static labels are fixed at declaration, so the fact is permanent
        # within the method (no register redefinition can kill it)
        return facts | {(_STATIC_KEY + instr.operands[0], READ)}
    if op is Opcode.SWRITEBAR:
        return facts | {(_STATIC_KEY + instr.operands[0], WRITE)}
    if op in ALLOC_OPS or op is Opcode.ALLOCBAR:
        dst = instr.operands[0]
        pruned = frozenset(f for f in facts if f[0] != dst)
        return pruned | {(dst, READ), (dst, WRITE)}
    if op is Opcode.MOV:
        dst, src = instr.operands
        pruned = frozenset(f for f in facts if f[0] != dst)
        copied = {(dst, kind) for (reg, kind) in facts if reg == src}
        return pruned | frozenset(copied)
    defined = instr.defined_register()
    if defined is not None:
        return frozenset(f for f in facts if f[0] != defined)
    return facts


def eliminate_redundant_barriers_method(
    method: Method, entry_facts: frozenset = frozenset()
) -> int:
    """Remove provably redundant barriers from one method, in place.
    Returns the number of barriers removed.

    ``entry_facts`` seeds the analysis at method entry with facts proven
    to hold at *every* call site — the whole-program analysis in
    :mod:`repro.analysis.safety` computes them; plain intraprocedural
    elimination passes none."""
    cfg = CFG(method)
    analysis: ForwardMustAnalysis = ForwardMustAnalysis(
        cfg, _transfer, boundary=entry_facts
    )
    analysis.solve()
    removed = 0
    for label, block in method.blocks.items():
        facts_before = analysis.facts_before_each_instr(label)
        kept: list[Instr] = []
        for instr, facts in zip(block.instrs, facts_before):
            if instr.op is Opcode.READBAR and (instr.operands[0], READ) in facts:
                removed += 1
                continue
            if instr.op is Opcode.WRITEBAR and (instr.operands[0], WRITE) in facts:
                removed += 1
                continue
            if instr.op is Opcode.SREADBAR and (
                _STATIC_KEY + instr.operands[0], READ
            ) in facts:
                removed += 1
                continue
            if instr.op is Opcode.SWRITEBAR and (
                _STATIC_KEY + instr.operands[0], WRITE
            ) in facts:
                removed += 1
                continue
            kept.append(instr)
        block.instrs = kept
    return removed


def eliminate_redundant_barriers(program: Program) -> int:
    """Run the elimination over every method; returns total removed."""
    return sum(
        eliminate_redundant_barriers_method(m) for m in program.methods.values()
    )


def eliminate_interprocedural_barriers(program: Program) -> int:
    """Whole-program elimination: remove barriers whose check provably
    already ran in *every caller* (facts crossing call edges, subject to
    the flavor-compatibility rules in :mod:`repro.analysis.safety`).

    Run after :func:`eliminate_redundant_barriers` — intraprocedural
    removal never destroys facts (a removed barrier was redundant, so its
    fact was already present), and this pass then removes what only
    cross-call knowledge can prove.  Returns the number removed."""
    # Imported lazily: repro.analysis builds on this module.
    from ..analysis.safety import compute_interprocedural_facts

    facts = compute_interprocedural_facts(program)
    removed = 0
    for name, method in program.methods.items():
        redundant = set(facts.redundant_barriers(name))
        if not redundant:
            continue
        for label, block in method.blocks.items():
            kept = [
                instr
                for index, instr in enumerate(block.instrs)
                if (label, index) not in redundant
            ]
            removed += len(block.instrs) - len(kept)
            block.instrs = kept
    return removed


def eliminate_certified_barriers(
    program: Program, labeled_statics: bool = False
) -> int:
    """Certificate-driven elimination: delete *every* barrier in methods
    the security-type certifier fully discharges.

    Strictly subsumes the interprocedural pass: that pass removes a
    barrier when its specific check provably already ran, while a
    certificate proves every check in the method passes (or is a no-op)
    in every reachable context — so whole methods go barrier-free,
    including the allocation barriers no redundancy argument can touch.
    Label races void certificates (see :mod:`repro.analysis.races`):
    a method two threads can drive under different label contexts keeps
    its barriers even when each context individually discharges.

    Records the certified set on ``program.certified_methods`` so tier-2
    can compile guard-free universal variants.  Returns the number of
    barrier instructions removed."""
    # Imported lazily: repro.analysis builds on this module.
    from ..analysis.callgraph import CallGraph
    from ..analysis.races import detect_races
    from ..analysis.typecheck import typecheck_program

    cg = CallGraph(program)
    races = detect_races(program, cg)
    result = typecheck_program(
        program, labeled_statics=labeled_statics, callgraph=cg, races=races
    )
    certified = result.certified()
    removed = 0
    for name in certified:
        method = program.methods[name]
        for block in method.blocks.values():
            kept = [
                instr for instr in block.instrs
                if instr.op not in BARRIER_OPS
            ]
            removed += len(block.instrs) - len(kept)
            block.instrs = kept
    program.certified_methods = certified
    return removed


def count_barriers(program: Program) -> int:
    """Static barrier count (for the ablation benchmark's reporting)."""
    total = 0
    for method in program.methods.values():
        for instr in method.all_instrs():
            if instr.op in (
                Opcode.READBAR, Opcode.WRITEBAR, Opcode.ALLOCBAR,
                Opcode.SREADBAR, Opcode.SWRITEBAR,
            ):
                total += 1
    return total
