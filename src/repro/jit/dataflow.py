"""A small generic dataflow framework.

The original need was a forward *must* (all-paths) analysis for the
barrier-elimination pass: facts hold at a point only if they hold along
every incoming path, so the merge operator is set intersection and the
entry fact set is empty.  The whole-program analyses in
:mod:`repro.analysis` added two more axes, so the solver is now generic
over

* **direction** — facts flow with control (:class:`Direction.FORWARD`) or
  against it (:class:`Direction.BACKWARD`, e.g. liveness);
* **meet** — facts must hold on *all* paths (:class:`Meet.MUST`,
  intersection) or on *some* path (:class:`Meet.MAY`, union, e.g. the
  label-taint propagation of :mod:`repro.analysis.labelflow`);
* **boundary facts** — the fact set assumed at the entry (forward) or at
  every exit (backward).  Interprocedural passes seed a method's analysis
  with facts proven at its call sites this way.

The framework stays generic over the fact type so tests can instantiate
it with toy transfer functions and future passes can reuse it.
"""

from __future__ import annotations

import enum
from typing import Callable, Generic, Hashable, TypeVar

from .cfg import CFG
from .ir import Instr

Fact = TypeVar("Fact", bound=Hashable)

#: Transfer function: (instruction, incoming facts) -> outgoing facts.
#: For backward analyses "incoming" means the facts *after* the
#: instruction and the result is the facts *before* it.
Transfer = Callable[[Instr, frozenset], frozenset]


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


class Meet(enum.Enum):
    #: All-paths: merge with intersection; unvisited neighbors are TOP
    #: (the universal set) and are skipped during the merge.
    MUST = "must"
    #: Some-path: merge with union; unvisited neighbors are BOTTOM (empty).
    MAY = "may"


class DataflowAnalysis(Generic[Fact]):
    """Iterative worklist solver, parameterized by direction and meet.

    After :meth:`solve`, ``block_in[label]`` holds the facts at the
    *entry* of each block and ``block_out[label]`` the facts at its
    *exit* — the same convention for both directions (a backward analysis
    computes ``block_in`` from ``block_out``).

    For MUST analyses, TOP (the "everything holds" value before a block is
    first visited) is represented implicitly: blocks never yet computed
    are skipped during merge, which is equivalent to meeting with the
    universal set.
    """

    direction: Direction = Direction.FORWARD
    meet: Meet = Meet.MUST

    def __init__(
        self,
        cfg: CFG,
        transfer: Transfer,
        boundary: frozenset = frozenset(),
    ) -> None:
        self.cfg = cfg
        self.transfer = transfer
        #: Facts assumed at the entry block (forward) or at every block
        #: with no successors (backward).
        self.boundary = boundary
        #: facts at block entry, after solving.
        self.block_in: dict[str, frozenset] = {}
        #: facts at block exit, after solving.
        self.block_out: dict[str, frozenset] = {}

    # -- direction plumbing ---------------------------------------------------

    def _neighbors_in(self, label: str) -> list[str]:
        """Blocks whose solved facts feed ``label``."""
        if self.direction is Direction.FORWARD:
            return list(self.cfg.preds[label])
        return list(self.cfg.succs[label])

    def _neighbors_out(self, label: str) -> list[str]:
        """Blocks to revisit when ``label``'s result changes."""
        if self.direction is Direction.FORWARD:
            return list(self.cfg.succs[label])
        return list(self.cfg.preds[label])

    def _is_boundary_block(self, label: str) -> bool:
        if self.direction is Direction.FORWARD:
            return label == self.cfg.entry
        return not self.cfg.succs[label]

    def _feed(self, label: str) -> frozenset:
        """The solved fact set a neighbor contributes (its out for forward,
        its in for backward)."""
        side = self.block_out if self.direction is Direction.FORWARD else self.block_in
        return side[label]

    def _computed(self, label: str) -> bool:
        side = self.block_out if self.direction is Direction.FORWARD else self.block_in
        return label in side

    # -- the solver -----------------------------------------------------------

    def _merge(self, label: str) -> frozenset:
        computed = [
            self._feed(n) for n in self._neighbors_in(label) if self._computed(n)
        ]
        if self._is_boundary_block(label):
            computed.append(self.boundary)
        if not computed:
            # MUST: all neighbors still at TOP — treat as empty to stay
            # sound (the block is revisited when a neighbor changes).
            # MAY: bottom is empty anyway.
            return frozenset()
        if self.meet is Meet.MUST:
            return frozenset.intersection(*computed)
        return frozenset.union(*computed)

    def _apply_block(self, label: str, incoming: frozenset) -> frozenset:
        instrs = self.cfg.block(label).instrs
        if self.direction is Direction.BACKWARD:
            instrs = list(reversed(instrs))
        facts = incoming
        for instr in instrs:
            facts = self.transfer(instr, facts)
        return facts

    def solve(self) -> None:
        order = self.cfg.reverse_postorder()
        if self.direction is Direction.BACKWARD:
            order = list(reversed(order))
        position = {label: i for i, label in enumerate(order)}
        worklist = list(order)
        in_worklist = set(order)
        while worklist:
            worklist.sort(key=lambda lbl: position[lbl], reverse=True)
            label = worklist.pop()
            in_worklist.discard(label)
            incoming = self._merge(label)
            outgoing = self._apply_block(label, incoming)
            if self.direction is Direction.FORWARD:
                changed = (
                    label not in self.block_out
                    or self.block_out[label] != outgoing
                )
                self.block_in[label] = incoming
                self.block_out[label] = outgoing
            else:
                changed = (
                    label not in self.block_in
                    or self.block_in[label] != outgoing
                )
                self.block_out[label] = incoming
                self.block_in[label] = outgoing
            if changed:
                for succ in self._neighbors_out(label):
                    if succ not in in_worklist:
                        worklist.append(succ)
                        in_worklist.add(succ)

    # -- per-instruction replay ------------------------------------------------

    def facts_before_each_instr(self, label: str) -> list[frozenset]:
        """Facts holding immediately *before* each instruction of
        ``label``, in program order.  Used by passes that rewrite
        instructions based on the solved analysis."""
        if self.direction is Direction.FORWARD:
            facts = self.block_in.get(label, frozenset())
            result = []
            for instr in self.cfg.block(label).instrs:
                result.append(facts)
                facts = self.transfer(instr, facts)
            return result
        # Backward: replay from the block's exit facts in reverse; the
        # fact *before* an instruction is the transfer of the fact after.
        facts = self.block_out.get(label, frozenset())
        result = []
        for instr in reversed(self.cfg.block(label).instrs):
            facts = self.transfer(instr, facts)
            result.append(facts)
        result.reverse()
        return result

    def facts_after_each_instr(self, label: str) -> list[frozenset]:
        """Facts holding immediately *after* each instruction of
        ``label``, in program order."""
        if self.direction is Direction.FORWARD:
            facts = self.block_in.get(label, frozenset())
            result = []
            for instr in self.cfg.block(label).instrs:
                facts = self.transfer(instr, facts)
                result.append(facts)
            return result
        facts = self.block_out.get(label, frozenset())
        result = []
        instrs = self.cfg.block(label).instrs
        for instr in reversed(instrs):
            result.append(facts)
            facts = self.transfer(instr, facts)
        result.reverse()
        return result


class ForwardMustAnalysis(DataflowAnalysis[Fact]):
    """Forward all-paths analysis (e.g. barrier redundancy, definite
    assignment).  The entry boundary defaults to the empty set;
    interprocedural passes seed it with call-site-proven facts."""

    direction = Direction.FORWARD
    meet = Meet.MUST


class ForwardMayAnalysis(DataflowAnalysis[Fact]):
    """Forward some-path analysis (e.g. label-taint propagation)."""

    direction = Direction.FORWARD
    meet = Meet.MAY


class BackwardMustAnalysis(DataflowAnalysis[Fact]):
    """Backward all-paths analysis (e.g. very-busy expressions)."""

    direction = Direction.BACKWARD
    meet = Meet.MUST


class BackwardMayAnalysis(DataflowAnalysis[Fact]):
    """Backward some-path analysis (e.g. live registers)."""

    direction = Direction.BACKWARD
    meet = Meet.MAY
