"""A small forward dataflow framework.

The barrier-elimination pass needs a *must* (all-paths) forward analysis:
facts hold at a point only if they hold along every incoming path, so the
merge operator is set intersection and the entry fact set is empty.

The framework is generic over the fact type so tests can instantiate it
with toy transfer functions, and future passes (e.g. available-expressions
for the inliner's cleanup) can reuse it.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, TypeVar

from .cfg import CFG
from .ir import Instr

Fact = TypeVar("Fact", bound=Hashable)

#: Transfer function: (instruction, incoming facts) -> outgoing facts.
Transfer = Callable[[Instr, frozenset], frozenset]


class ForwardMustAnalysis(Generic[Fact]):
    """Iterative worklist solver for forward must-analyses.

    ``TOP`` (the "everything holds" value before a block is first visited)
    is represented implicitly: blocks never yet computed are skipped during
    merge, which is equivalent to meeting with the universal set.
    """

    def __init__(self, cfg: CFG, transfer: Transfer) -> None:
        self.cfg = cfg
        self.transfer = transfer
        #: facts at block entry, after solving.
        self.block_in: dict[str, frozenset] = {}
        #: facts at block exit, after solving.
        self.block_out: dict[str, frozenset] = {}

    def solve(self) -> None:
        order = self.cfg.reverse_postorder()
        position = {label: i for i, label in enumerate(order)}
        worklist = list(order)
        in_worklist = set(order)
        while worklist:
            worklist.sort(key=lambda lbl: position[lbl], reverse=True)
            label = worklist.pop()
            in_worklist.discard(label)
            preds = self.cfg.preds[label]
            if label == self.cfg.entry or not preds:
                incoming: frozenset = frozenset()
            else:
                computed = [
                    self.block_out[p] for p in preds if p in self.block_out
                ]
                if computed:
                    incoming = frozenset.intersection(*computed)
                else:
                    # All predecessors still at TOP: leave this block for a
                    # later visit (it is on the worklist whenever a pred
                    # changes); treat as empty to stay sound.
                    incoming = frozenset()
            outgoing = incoming
            for instr in self.cfg.block(label).instrs:
                outgoing = self.transfer(instr, outgoing)
            changed = (
                label not in self.block_out or self.block_out[label] != outgoing
            )
            self.block_in[label] = incoming
            self.block_out[label] = outgoing
            if changed:
                for succ in self.cfg.succs[label]:
                    if succ not in in_worklist:
                        worklist.append(succ)
                        in_worklist.add(succ)

    def facts_before_each_instr(self, label: str) -> list[frozenset]:
        """Replay the transfer function through ``label``, returning the
        fact set holding immediately *before* each instruction.  Used by
        passes that rewrite instructions based on the solved analysis."""
        facts = self.block_in.get(label, frozenset())
        result = []
        for instr in self.cfg.block(label).instrs:
            result.append(facts)
            facts = self.transfer(instr, facts)
        return result
