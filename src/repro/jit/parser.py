"""A small text assembler for the mini-JIT IR.

The workload programs (:mod:`repro.bench.workloads`) are written in this
format, which keeps them auditable and lets the parser itself be tested.

Grammar (line-oriented)::

    # comment                                 -- whole-line or trailing
    class Name { field, field, ... }
    [region] method name(param, param) {
    label:
        opcode operand, operand, ...
    }

Operands are registers (bare identifiers), integer/float literals, quoted
strings, ``true``/``false``/``null``, or ``_`` for "no destination" in
``call``.  Field names, class names, method names, and block labels are
bare identifiers in their respective positions.
"""

from __future__ import annotations

import re
from typing import Any

from ..core import CapabilitySet, Label, Tag
from .ir import (
    BINARY_OPS,
    Instr,
    Method,
    Opcode,
    Program,
    RegionSpec,
    UNARY_OPS,
)


class IRSyntaxError(ValueError):
    """The assembler text is malformed."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_CLASS_RE = re.compile(rf"^class\s+({_IDENT})\s*\{{(.*)\}}\s*$")
_METHOD_RE = re.compile(
    rf"^(region\s+|declassifier\s+)?method\s+({_IDENT})\s*\(([^)]*)\)\s*"
    rf"(.*?)\{{\s*$"
)
#: Region attributes between the parameter list and the opening brace:
#: ``secrecy(a, b)``, ``integrity(c)``, ``catch(handler)``.
_ATTR_RE = re.compile(r"(secrecy|integrity|catch)\s*\(([^)]*)\)")
#: First tag value handed out by the parser's per-program namespace; high
#: enough to stay clear of kernel-allocated and well-known test tags.
_TAG_BASE = 20_000_001
_LABEL_RE = re.compile(rf"^({_IDENT})\s*:\s*$")
_STRING_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"$')

_KEYWORD_LITERALS = {"true": True, "false": False, "null": None}


def _strip_comment(line: str) -> str:
    """Remove a trailing ``#`` comment, respecting string literals."""
    out = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        if ch == "#" and not in_string:
            break
        out.append(ch)
        i += 1
    return "".join(out)


def _split_operands(text: str, lineno: int) -> list[str]:
    """Split on commas outside string literals."""
    parts: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in text:
        if ch == '"' and (not current or current[-1] != "\\"):
            in_string = not in_string
        if ch == "," and not in_string:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    if in_string:
        raise IRSyntaxError(lineno, "unterminated string literal")
    return parts


def parse_value(token: str, lineno: int) -> Any:
    """Parse a literal operand token into a Python value."""
    if token in _KEYWORD_LITERALS:
        return _KEYWORD_LITERALS[token]
    string = _STRING_RE.match(token)
    if string:
        return string.group(1).replace('\\"', '"').replace("\\\\", "\\")
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    raise IRSyntaxError(lineno, f"not a literal: {token!r}")


def _is_register(token: str) -> bool:
    return re.fullmatch(_IDENT, token) is not None and token not in _KEYWORD_LITERALS


def _reg(token: str, lineno: int, what: str) -> str:
    if not _is_register(token):
        raise IRSyntaxError(lineno, f"{what} must be a register, got {token!r}")
    return token


def _value_or_reg(token: str, lineno: int) -> Any:
    """Operands that may be a register *or* a literal are disambiguated
    lexically: identifiers are registers, everything else is a literal."""
    if _is_register(token):
        return token
    return parse_value(token, lineno)


def _parse_instr(opname: str, args: list[str], lineno: int) -> Instr:
    try:
        op = Opcode(opname)
    except ValueError:
        raise IRSyntaxError(lineno, f"unknown opcode {opname!r}") from None

    def need(n: int) -> None:
        if len(args) != n:
            raise IRSyntaxError(
                lineno, f"{opname} takes {n} operands, got {len(args)}"
            )

    if op is Opcode.CONST:
        need(2)
        return Instr(op, (_reg(args[0], lineno, "dst"), parse_value(args[1], lineno)))
    if op is Opcode.MOV:
        need(2)
        return Instr(op, (_reg(args[0], lineno, "dst"), _reg(args[1], lineno, "src")))
    if op is Opcode.BINOP:
        need(4)
        if args[1] not in BINARY_OPS:
            raise IRSyntaxError(lineno, f"unknown binary op {args[1]!r}")
        return Instr(
            op,
            (
                _reg(args[0], lineno, "dst"),
                args[1],
                _reg(args[2], lineno, "lhs"),
                _reg(args[3], lineno, "rhs"),
            ),
        )
    if op is Opcode.UNOP:
        need(3)
        if args[1] not in UNARY_OPS:
            raise IRSyntaxError(lineno, f"unknown unary op {args[1]!r}")
        return Instr(
            op, (_reg(args[0], lineno, "dst"), args[1], _reg(args[2], lineno, "src"))
        )
    if op is Opcode.NEW:
        need(2)
        return Instr(op, (_reg(args[0], lineno, "dst"), args[1]))
    if op is Opcode.NEWARRAY:
        need(2)
        return Instr(op, (_reg(args[0], lineno, "dst"), _reg(args[1], lineno, "size")))
    if op is Opcode.GETFIELD:
        need(3)
        return Instr(
            op,
            (_reg(args[0], lineno, "dst"), _reg(args[1], lineno, "obj"), args[2]),
        )
    if op is Opcode.PUTFIELD:
        need(3)
        return Instr(
            op,
            (_reg(args[0], lineno, "obj"), args[1], _reg(args[2], lineno, "src")),
        )
    if op is Opcode.ALOAD:
        need(3)
        return Instr(
            op,
            (
                _reg(args[0], lineno, "dst"),
                _reg(args[1], lineno, "arr"),
                _reg(args[2], lineno, "idx"),
            ),
        )
    if op is Opcode.ASTORE:
        need(3)
        return Instr(
            op,
            (
                _reg(args[0], lineno, "arr"),
                _reg(args[1], lineno, "idx"),
                _reg(args[2], lineno, "src"),
            ),
        )
    if op is Opcode.ARRAYLEN:
        need(2)
        return Instr(op, (_reg(args[0], lineno, "dst"), _reg(args[1], lineno, "arr")))
    if op is Opcode.GETSTATIC:
        need(2)
        return Instr(op, (_reg(args[0], lineno, "dst"), args[1]))
    if op is Opcode.PUTSTATIC:
        need(2)
        return Instr(op, (args[0], _reg(args[1], lineno, "src")))
    if op is Opcode.CALL:
        if len(args) < 2:
            raise IRSyntaxError(lineno, "call needs a destination and a method")
        dst = None if args[0] == "_" else _reg(args[0], lineno, "dst")
        callee = args[1]
        call_args = tuple(_reg(a, lineno, "arg") for a in args[2:])
        return Instr(op, (dst, callee, *call_args))
    if op is Opcode.RET:
        if len(args) > 1:
            raise IRSyntaxError(lineno, "ret takes at most one operand")
        value = _reg(args[0], lineno, "src") if args else None
        return Instr(op, (value,))
    if op is Opcode.JMP:
        need(1)
        return Instr(op, (args[0],))
    if op is Opcode.BR:
        need(3)
        return Instr(op, (_reg(args[0], lineno, "cond"), args[1], args[2]))
    if op is Opcode.PRINT:
        need(1)
        return Instr(op, (_reg(args[0], lineno, "src"),))
    if op is Opcode.SPAWN:
        if len(args) < 2:
            raise IRSyntaxError(lineno, "spawn needs a handle and a method")
        dst = _reg(args[0], lineno, "handle")
        callee = args[1]
        spawn_args = tuple(_reg(a, lineno, "arg") for a in args[2:])
        return Instr(op, (dst, callee, *spawn_args))
    if op is Opcode.JOIN:
        need(1)
        return Instr(op, (_reg(args[0], lineno, "handle"),))
    if op in (Opcode.LOCK, Opcode.UNLOCK):
        need(1)
        return Instr(op, (_reg(args[0], lineno, "obj"),))
    raise IRSyntaxError(
        lineno, f"{opname!r} is compiler-internal and cannot be written by hand"
    )


def _program_tag(program: Program, name: str) -> Tag:
    """Resolve a tag name to a Tag in the program's own namespace (values
    are assigned sequentially in first-appearance order, so the mapping is
    deterministic for a given source)."""
    tag = program.tags.get(name)
    if tag is None:
        tag = Tag(_TAG_BASE + len(program.tags), name)
        program.tags[name] = tag
    return tag


def _parse_region_attrs(program: Program, text: str, lineno: int) -> RegionSpec:
    """Parse ``secrecy(...) integrity(...) catch(...)`` region attributes.

    Declared tags receive dual capabilities in the region's capability set
    (the region must be able to acquire its own labels); the embedder is
    expected to grant the entry thread the same capabilities (``lamc run``
    does this for every tag in :attr:`Program.tags`)."""
    consumed = _ATTR_RE.sub("", text).strip()
    if consumed:
        raise IRSyntaxError(lineno, f"malformed region attributes: {text!r}")
    seen: set[str] = set()
    secrecy = Label.EMPTY
    integrity = Label.EMPTY
    catch: str | None = None
    all_tags: list[Tag] = []
    for attr_match in _ATTR_RE.finditer(text):
        kind, body = attr_match.group(1), attr_match.group(2)
        if kind in seen:
            raise IRSyntaxError(lineno, f"duplicate region attribute {kind!r}")
        seen.add(kind)
        names = [n.strip() for n in body.split(",") if n.strip()]
        for n in names:
            if not re.fullmatch(_IDENT, n):
                raise IRSyntaxError(
                    lineno, f"bad name {n!r} in region attribute {kind!r}"
                )
        if kind == "catch":
            if len(names) != 1:
                raise IRSyntaxError(
                    lineno, "catch attribute takes exactly one method name"
                )
            catch = names[0]
            continue
        tags = [_program_tag(program, n) for n in names]
        all_tags.extend(tags)
        if kind == "secrecy":
            secrecy = Label(tags)
        else:
            integrity = Label(tags)
    caps = CapabilitySet.dual(*all_tags) if all_tags else CapabilitySet.EMPTY
    return RegionSpec(
        secrecy=secrecy, integrity=integrity, caps=caps, catch=catch
    )


def parse_program(text: str) -> Program:
    """Assemble ``text`` into a :class:`Program`.

    All methods are normalized (every block ends in a terminator) and
    cross-references (branch targets, callees, class names) are validated.
    """
    program = Program()
    method: Method | None = None
    block = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        class_match = _CLASS_RE.match(line)
        if class_match:
            if method is not None:
                raise IRSyntaxError(lineno, "class declaration inside a method")
            name = class_match.group(1)
            fields = tuple(
                f.strip() for f in class_match.group(2).split(",") if f.strip()
            )
            program.declare_class(name, fields)
            continue
        method_match = _METHOD_RE.match(line)
        if method_match:
            if method is not None:
                raise IRSyntaxError(lineno, "nested method declaration")
            qualifier = (method_match.group(1) or "").strip()
            is_region = qualifier == "region"
            is_declassifier = qualifier == "declassifier"
            name = method_match.group(2)
            params = tuple(
                p.strip() for p in method_match.group(3).split(",") if p.strip()
            )
            method = Method(
                name,
                params,
                is_region=is_region,
                is_declassifier=is_declassifier,
            )
            attrs = method_match.group(4).strip()
            if attrs:
                if not is_region:
                    raise IRSyntaxError(
                        lineno,
                        f"method {name!r}: region attributes on a "
                        f"non-region method",
                    )
                method.region_spec = _parse_region_attrs(
                    program, attrs, lineno
                )
            block = None
            continue
        if line == "}":
            if method is None:
                raise IRSyntaxError(lineno, "unmatched '}'")
            if not method.blocks:
                raise IRSyntaxError(lineno, f"method {method.name!r} has no blocks")
            method.normalize()
            program.add_method(method)
            method = None
            block = None
            continue
        if method is None:
            raise IRSyntaxError(lineno, f"statement outside a method: {line!r}")
        label_match = _LABEL_RE.match(line)
        if label_match:
            block = method.add_block(label_match.group(1))
            continue
        if block is None:
            block = method.add_block("entry")
        opname, _, rest = line.partition(" ")
        args = _split_operands(rest, lineno) if rest.strip() else []
        block.instrs.append(_parse_instr(opname, args, lineno))
    if method is not None:
        raise IRSyntaxError(0, f"method {method.name!r} missing closing '}}'")
    _validate(program)
    return program


def _validate(program: Program) -> None:
    for method in program.methods.values():
        spec = method.region_spec
        if spec is not None and spec.catch is not None:
            handler = program.methods.get(spec.catch)
            if handler is None:
                raise IRSyntaxError(
                    0,
                    f"{method.name}: catch handler {spec.catch!r} is not a "
                    f"method in this program",
                )
            if handler.is_region or handler.params:
                raise IRSyntaxError(
                    0,
                    f"{method.name}: catch handler {spec.catch!r} must be a "
                    f"zero-parameter non-region method",
                )
        for block in method.blocks.values():
            for target in block.successors():
                if target not in method.blocks:
                    raise IRSyntaxError(
                        0,
                        f"{method.name}/{block.label}: branch to unknown "
                        f"block {target!r}",
                    )
            for instr in block.instrs:
                if instr.op is Opcode.NEW and instr.operands[1] not in program.classes:
                    raise IRSyntaxError(
                        0,
                        f"{method.name}: new of undeclared class "
                        f"{instr.operands[1]!r}",
                    )
                if instr.op is Opcode.SPAWN:
                    callee = program.methods.get(instr.operands[1])
                    if callee is None:
                        raise IRSyntaxError(
                            0,
                            f"{method.name}: spawn of unknown method "
                            f"{instr.operands[1]!r}",
                        )
                    if callee.is_region:
                        raise IRSyntaxError(
                            0,
                            f"{method.name}: spawn of region method "
                            f"{callee.name!r} (threads start outside "
                            f"regions; the thread body may *call* one)",
                        )
                    if len(callee.params) != len(instr.operands) - 2:
                        raise IRSyntaxError(
                            0,
                            f"{method.name}: spawn of {callee.name!r} with "
                            f"{len(instr.operands) - 2} args, expected "
                            f"{len(callee.params)}",
                        )
