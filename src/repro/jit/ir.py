"""The mini-JIT's intermediate representation.

The paper's compiler work happens inside Jikes RVM's JIT: it inserts read
and write barriers at every object access, chooses static or dynamic
barrier variants, clones methods for in-region/out-of-region contexts, and
runs an intraprocedural flow-sensitive pass that removes redundant barriers
(Section 5.1).  To reproduce those compiler results we need an actual
compiler, so this package defines a small register-based IR:

* unbounded virtual registers (named strings);
* methods of basic blocks ending in explicit terminators;
* heap operations (``new``/``newarray``/``getfield``/``putfield``/
  ``aload``/``astore``/``arraylen``) that the barrier-insertion pass
  instruments;
* barrier pseudo-instructions (``readbar``/``writebar``/``allocbar``) in
  three flavors mirroring the paper's compilation strategies.

The IR is deliberately Java-flavored (objects with named fields, arrays
with bounds) because the workloads stand in for DaCapo programs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core import CapabilitySet, Label


class Opcode(enum.Enum):
    # data movement / arithmetic
    CONST = "const"        # const dst, literal
    MOV = "mov"            # mov dst, src
    BINOP = "binop"        # binop dst, op, a, b
    UNOP = "unop"          # unop dst, op, a
    # heap
    NEW = "new"            # new dst, classname
    NEWARRAY = "newarray"  # newarray dst, size
    GETFIELD = "getfield"  # getfield dst, obj, field
    PUTFIELD = "putfield"  # putfield obj, field, src
    ALOAD = "aload"        # aload dst, arr, idx
    ASTORE = "astore"      # astore arr, idx, src
    ARRAYLEN = "arraylen"  # arraylen dst, arr
    # statics (a single global table, as in the JVM)
    GETSTATIC = "getstatic"  # getstatic dst, name
    PUTSTATIC = "putstatic"  # putstatic name, src
    # control
    CALL = "call"          # call dst, method, args...   (dst may be None)
    RET = "ret"            # ret [src]
    JMP = "jmp"            # jmp label
    BR = "br"              # br cond, then_label, else_label
    PRINT = "print"        # print src (debug aid)
    # threads (Section 2.2: threads share the labeled heap; regions are
    # per-thread).  ``spawn`` names a plain method run on a fresh thread
    # and yields a handle; ``join`` waits for it.  ``lock``/``unlock``
    # bracket accesses to a shared object for the race detector — the
    # runtime itself is deterministic, so they are no-ops at execution.
    SPAWN = "spawn"        # spawn dst, method, args...
    JOIN = "join"          # join handle
    LOCK = "lock"          # lock obj
    UNLOCK = "unlock"      # unlock obj
    # barriers (inserted by the compiler, never written by hand)
    READBAR = "readbar"    # readbar obj
    WRITEBAR = "writebar"  # writebar obj
    ALLOCBAR = "allocbar"  # allocbar dst  (labels the fresh object)
    # static barriers (the labeled-statics extension; operand is the
    # static's *name*, not a register)
    SREADBAR = "sreadbar"    # sreadbar name
    SWRITEBAR = "swritebar"  # swritebar name

TERMINATORS = {Opcode.RET, Opcode.JMP, Opcode.BR}

#: Heap reads that need a read barrier before them.
READ_OPS = {Opcode.GETFIELD, Opcode.ALOAD, Opcode.ARRAYLEN}
#: Heap writes that need a write barrier before them.
WRITE_OPS = {Opcode.PUTFIELD, Opcode.ASTORE}
#: Allocations that need an allocation barrier after them.
ALLOC_OPS = {Opcode.NEW, Opcode.NEWARRAY}

BINARY_OPS = {
    "add", "sub", "mul", "div", "mod",
    "lt", "le", "gt", "ge", "eq", "ne",
    "band", "bor", "bxor", "shl", "shr",
}
UNARY_OPS = {"neg", "not"}


class BarrierFlavor(enum.Enum):
    """How a barrier pseudo-instruction was compiled (Section 5.1).

    * ``STATIC_IN`` / ``STATIC_OUT`` — the context (inside/outside a
      security region) was decided at compile time; the barrier body is
      the corresponding single-variant check.
    * ``DYNAMIC`` — the barrier tests the thread's region state at run
      time and then dispatches to the right variant.
    """

    STATIC_IN = "static-in"
    STATIC_OUT = "static-out"
    DYNAMIC = "dynamic"


@dataclass
class Instr:
    """One IR instruction.  ``operands`` layout depends on the opcode (see
    :class:`Opcode` comments); ``flavor`` is set on barrier instructions by
    the barrier-insertion pass."""

    op: Opcode
    operands: tuple[Any, ...]
    flavor: Optional[BarrierFlavor] = None

    # -- structural queries used by the passes --------------------------------

    def defined_register(self) -> Optional[str]:
        """The register this instruction writes, if any."""
        op = self.op
        if op in (
            Opcode.CONST, Opcode.MOV, Opcode.BINOP, Opcode.UNOP, Opcode.NEW,
            Opcode.NEWARRAY, Opcode.GETFIELD, Opcode.ALOAD, Opcode.ARRAYLEN,
            Opcode.GETSTATIC, Opcode.SPAWN,
        ):
            return self.operands[0]
        if op is Opcode.CALL:
            return self.operands[0]  # may be None
        return None

    def used_registers(self) -> tuple[str, ...]:
        """Registers this instruction reads."""
        op, ops = self.op, self.operands
        if op is Opcode.MOV:
            return (ops[1],)
        if op is Opcode.BINOP:
            return (ops[2], ops[3])
        if op is Opcode.UNOP:
            return (ops[2],)
        if op is Opcode.NEWARRAY:
            return (ops[1],)
        if op is Opcode.GETFIELD:
            return (ops[1],)
        if op is Opcode.PUTFIELD:
            return (ops[0], ops[2])
        if op is Opcode.ALOAD:
            return (ops[1], ops[2])
        if op is Opcode.ASTORE:
            return (ops[0], ops[1], ops[2])
        if op is Opcode.ARRAYLEN:
            return (ops[1],)
        if op is Opcode.PUTSTATIC:
            return (ops[1],)
        if op is Opcode.CALL:
            return tuple(ops[2:])
        if op is Opcode.RET:
            return tuple(r for r in ops if r is not None)
        if op is Opcode.BR:
            return (ops[0],)
        if op is Opcode.PRINT:
            return (ops[0],)
        if op in (Opcode.READBAR, Opcode.WRITEBAR):
            return (ops[0],)
        if op is Opcode.ALLOCBAR:
            return (ops[0],)
        if op is Opcode.SPAWN:
            return tuple(ops[2:])
        if op in (Opcode.JOIN, Opcode.LOCK, Opcode.UNLOCK):
            return (ops[0],)
        return ()

    def __repr__(self) -> str:
        parts = ", ".join(str(o) for o in self.operands)
        suffix = f" [{self.flavor.value}]" if self.flavor else ""
        return f"{self.op.value} {parts}{suffix}"


@dataclass
class BasicBlock:
    """A label plus straight-line instructions; the last one is a
    terminator after :meth:`Method.normalize` runs."""

    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].op in TERMINATORS:
            return self.instrs[-1]
        return None

    def successors(self) -> tuple[str, ...]:
        term = self.terminator
        if term is None or term.op is Opcode.RET:
            return ()
        if term.op is Opcode.JMP:
            return (term.operands[0],)
        return (term.operands[1], term.operands[2])

    def __repr__(self) -> str:
        return f"BasicBlock({self.label}, {len(self.instrs)} instrs)"


@dataclass
class RegionSpec:
    """Security-region parameters attached to a region method by the
    embedder (the harness or the application driver) or declared in the
    assembler text (``region method f(p) secrecy(a) integrity(b)``): the
    labels and capability set the region runs with, plus an optional
    catch-handler method executed if the region body throws."""

    secrecy: Label = Label.EMPTY
    integrity: Label = Label.EMPTY
    caps: CapabilitySet = CapabilitySet.EMPTY
    #: Name of a zero-parameter non-region method run as the region's
    #: ``catch`` block (the paper's ``secure {...} catch {...}`` form).
    catch: Optional[str] = None


class Method:
    """One IR method: parameters and an ordered dict of basic blocks."""

    def __init__(
        self,
        name: str,
        params: tuple[str, ...] = (),
        is_region: bool = False,
        is_declassifier: bool = False,
    ) -> None:
        self.name = name
        self.params = params
        self.is_region = is_region
        #: Declared trusted declassification module (``declassifier
        #: method``): the analog of :class:`repro.runtime.declassifiers.
        #: Declassifier` — its return value is audited policy output, so
        #: the taint analyses treat it as laundered, not as secret.
        self.is_declassifier = is_declassifier
        self.region_spec: Optional[RegionSpec] = None
        self.blocks: dict[str, BasicBlock] = {}
        self.entry: Optional[str] = None

    def add_block(self, label: str) -> BasicBlock:
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry is None:
            self.entry = label
        return block

    def normalize(self) -> None:
        """Ensure every block ends in a terminator: blocks that fall off
        the end get a jump to the lexically next block, or a ``ret``."""
        labels = list(self.blocks)
        for i, label in enumerate(labels):
            block = self.blocks[label]
            if block.terminator is None:
                if i + 1 < len(labels):
                    block.instrs.append(Instr(Opcode.JMP, (labels[i + 1],)))
                else:
                    block.instrs.append(Instr(Opcode.RET, (None,)))

    def instruction_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks.values())

    def all_instrs(self) -> list[Instr]:
        out: list[Instr] = []
        for block in self.blocks.values():
            out.extend(block.instrs)
        return out

    def __repr__(self) -> str:
        if self.is_region:
            kind = "region method"
        elif self.is_declassifier:
            kind = "declassifier method"
        else:
            kind = "method"
        return f"Method({self.name!r}, {kind}, {len(self.blocks)} blocks)"


class Program:
    """A compilation unit: methods plus class field declarations."""

    def __init__(self) -> None:
        self.methods: dict[str, Method] = {}
        #: class name -> field names (used by ``new`` to zero-init fields).
        self.classes: dict[str, tuple[str, ...]] = {}
        #: tag name -> Tag for tags declared in region attributes; the
        #: embedder grants the entry thread capabilities for these before
        #: running (``lamc run`` does).
        self.tags: dict[str, Any] = {}
        #: Tier policy attached by ``Compiler(tier="jit")``; ``None`` means
        #: pure interpretation.  It lives on the program because the tier
        #: choice is a property of the compiled unit, not of one VM.
        self.tier_policy: Any = None
        #: Shared execution caches, validated against :meth:`shape_stamp`:
        #: per-method handler tables (tier 1, see
        #: :func:`repro.jit.interpreter.build_handler_table`) and tier-2
        #: compiled code (:mod:`repro.jit.tier2`).  Both are keyed here so
        #: every :class:`~repro.jit.interpreter.Interpreter` over the same
        #: program shares one copy of the "compiled" artifacts.
        self.exec_tables: dict[str, dict[str, list]] = {}
        self.exec_tables_stamp: int = -1
        #: How many per-method handler tables were ever built for this
        #: program (the build-once regression test reads this).
        self.table_builds: int = 0
        #: (method name, context key) -> tier-2 CompiledMethod.
        self.tier2_cache: dict = {}
        #: (shape stamp, fastpath code epoch) the tier-2 cache is valid for.
        self.tier2_meta: tuple = (-1, -1)
        #: Methods whose :class:`~repro.analysis.typecheck.
        #: SecurityCertificate` fully discharged, set by the compiler's
        #: ``optimize_barriers="certified"`` mode.  Tier-2 uses this to
        #: compile one universal (guard-free) variant per certified
        #: method; empty outside certified builds.
        self.certified_methods: frozenset = frozenset()

    def shape_stamp(self) -> int:
        """Cheap structural fingerprint guarding the execution caches.

        IR passes mutate methods in place but never *during* a run, so
        validating once per entry suffices: a changed stamp means blocks
        or instructions were added/removed and cached handler tables and
        tier-2 code must be rebuilt.
        """
        return sum(
            len(m.blocks) + m.instruction_count()
            for m in self.methods.values()
        )

    def add_method(self, method: Method) -> None:
        if method.name in self.methods:
            raise ValueError(f"duplicate method {method.name!r}")
        self.methods[method.name] = method

    def declare_class(self, name: str, fields: tuple[str, ...]) -> None:
        self.classes[name] = fields

    def method(self, name: str) -> Method:
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(f"no method {name!r} in program") from None

    def __repr__(self) -> str:
        return f"Program({len(self.methods)} methods, {len(self.classes)} classes)"
