"""The compilation pipeline driver.

Mirrors the paper's JIT configurations:

========================  ======================================================
Configuration             Pipeline
========================  ======================================================
``BASELINE``              parse → inline               (unmodified JVM)
``STATIC``                parse → inline → clone → insert static barriers →
                          eliminate redundant → expand barrier bodies
``DYNAMIC``               parse → inline → insert dynamic barriers →
                          eliminate redundant → expand barrier bodies
========================  ======================================================

Compile-time accounting (Section 6.1): "on average, static barriers double
[compilation time], and dynamic barriers triple it ... because we instruct
the compiler to inline the barriers aggressively, which bloats the code and
slows downstream optimizations."  The pipeline reproduces the *mechanism*:
the final ``expand barrier bodies`` stage lowers each barrier to a sequence
of pseudo-machine operations — the static variants lower to one check
sequence, the dynamic variant lowers to the dispatch *plus both* variants —
and the expanded code is what downstream passes (here: the lowering walk
itself and the elimination pass re-scan) must chew through.  The
``CompileReport`` captures both real seconds and deterministic work units.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from .barrier_elim import (
    count_barriers,
    eliminate_certified_barriers,
    eliminate_interprocedural_barriers,
    eliminate_redundant_barriers,
)
from .barrier_insertion import (
    BARRIER_OPS,
    CompileContext,
    insert_barriers,
    insert_barriers_method,
)
from .cloning import IN_SUFFIX, clone_for_contexts
from .copyprop import propagate_copies
from .inline import DEFAULT_INLINE_THRESHOLD, inline_program
from .ir import BarrierFlavor, Program
from .parser import parse_program
from .region_checker import check_program_regions
from .verifier import verify_program


class JITConfig(enum.Enum):
    """The three compiled configurations of Section 6.1."""

    BASELINE = "baseline"
    STATIC = "static"
    DYNAMIC = "dynamic"


#: Pseudo-machine-ops emitted per lowered unit.  One IR instruction lowers
#: to one op; a static barrier lowers to one aggressively inlined check
#: body; a dynamic barrier lowers to a context test plus *both* check
#: bodies.  The constants are large because that is the paper's stated
#: mechanism for its 2x/3x compile times: "we instruct the compiler to
#: inline the barriers aggressively, which bloats the code and slows
#: downstream optimizations" — the downstream passes here really do walk
#: the expanded op stream (see :meth:`Compiler._lower`).
_OPS_PER_INSTR = 1
_OPS_PER_STATIC_BARRIER = 400
_OPS_PER_DYNAMIC_BARRIER = 1 + 2 * _OPS_PER_STATIC_BARRIER
#: Downstream passes that re-scan the lowered code (register allocation,
#: scheduling, ... in a real JIT).
_DOWNSTREAM_PASSES = 3


@dataclass
class CompileReport:
    """What one compilation did, for the §6.1 ablation."""

    config: JITConfig
    methods: int = 0
    input_instrs: int = 0
    inlined_calls: int = 0
    barriers_inserted: int = 0
    barriers_removed: int = 0
    #: Removed only thanks to cross-call facts (the interprocedural mode).
    barriers_removed_interproc: int = 0
    #: Removed because the security-type certifier discharged every check
    #: in the method (the "certified" mode).
    barriers_removed_certified: int = 0
    barriers_final: int = 0
    machine_ops: int = 0
    seconds: float = 0.0
    #: Execution tier the program was compiled for ("interp" or "jit").
    tier: str = "interp"
    passes: list[str] = field(default_factory=list)


class Compiler:
    """Compile IR source (or an already-parsed program) under a config."""

    def __init__(
        self,
        config: JITConfig = JITConfig.STATIC,
        optimize_barriers: "bool | str" = True,
        inline: bool = True,
        inline_threshold: int = DEFAULT_INLINE_THRESHOLD,
        clone: bool = False,
        labeled_statics: bool = False,
        tier: str = "interp",
        tier2: "TierPolicy | None" = None,
    ) -> None:
        # clone defaults to False because the paper's measured prototype
        # chooses one static variant at first compilation; cloning is the
        # production alternative and is exercised by the cloning ablation.
        self.config = config
        # optimize_barriers: False (keep every barrier), True (the paper's
        # intraprocedural elimination), "interprocedural" (additionally
        # consume whole-program proven-safe facts from repro.analysis), or
        # "certified" (additionally delete *every* barrier in methods the
        # security-type certifier fully discharges — strictly subsumes
        # the interprocedural mode).
        if optimize_barriers not in (
            True, False, "interprocedural", "certified"
        ):
            raise ValueError(
                f"optimize_barriers must be True, False, 'interprocedural' "
                f"or 'certified', got {optimize_barriers!r}"
            )
        self.optimize_barriers = optimize_barriers
        self.inline = inline
        self.inline_threshold = inline_threshold
        self.clone = clone
        #: Extension: guard statics with barriers instead of banning them
        #: from regions (Section 5.1's production alternative).
        self.labeled_statics = labeled_statics
        #: Execution tier: "interp" runs the program in the interpreter /
        #: handler tables; "jit" additionally attaches a
        #: :class:`~repro.jit.tier2.TierPolicy` so interpreters over the
        #: compiled program profile and promote hot methods to the tier-2
        #: template JIT.  Passing an explicit ``tier2`` policy implies
        #: ``tier="jit"``.
        if tier2 is not None:
            tier = "jit"
        if tier not in ("interp", "jit"):
            raise ValueError(f"tier must be 'interp' or 'jit', got {tier!r}")
        self.tier = tier
        self.tier_policy = tier2

    def compile(self, source: str | Program) -> tuple[Program, CompileReport]:
        report = CompileReport(config=self.config)
        start = time.perf_counter()
        if isinstance(source, str):
            program = parse_program(source)
            report.passes.append("parse")
        else:
            program = source
        report.methods = len(program.methods)
        report.input_instrs = sum(
            m.instruction_count() for m in program.methods.values()
        )
        verify_program(program)
        report.passes.append("verify")
        check_program_regions(program, allow_statics=self.labeled_statics)
        report.passes.append("region-check")
        if self.inline:
            report.inlined_calls = inline_program(program, self.inline_threshold)
            report.passes.append("inline")
            if report.inlined_calls:
                # Clean up the mov-chains inlining introduced, so barrier
                # facts attach to the caller's register names.
                propagate_copies(program)
                report.passes.append("copy-propagation")
        if self.config is not JITConfig.BASELINE:
            if self.config is JITConfig.STATIC:
                if self.clone:
                    program = clone_for_contexts(program)
                    report.passes.append("clone")
                report.barriers_inserted = self._insert_static(program)
                report.passes.append("insert-static-barriers")
            else:
                report.barriers_inserted = insert_barriers(
                    program,
                    CompileContext.UNKNOWN,
                    labeled_statics=self.labeled_statics,
                )
                report.passes.append("insert-dynamic-barriers")
            if self.optimize_barriers:
                report.barriers_removed = eliminate_redundant_barriers(program)
                report.passes.append("eliminate-redundant-barriers")
            if self.optimize_barriers in ("interprocedural", "certified"):
                report.barriers_removed_interproc = (
                    eliminate_interprocedural_barriers(program)
                )
                report.passes.append("interprocedural-barrier-elim")
            if self.optimize_barriers == "certified":
                report.barriers_removed_certified = (
                    eliminate_certified_barriers(
                        program, labeled_statics=self.labeled_statics
                    )
                )
                report.passes.append("certified-barrier-elim")
            report.barriers_final = count_barriers(program)
        report.machine_ops = self._lower(program)
        report.passes.append("lower")
        if self.tier == "jit":
            from .tier2 import TierPolicy

            program.tier_policy = self.tier_policy or TierPolicy()
            report.tier = "jit"
            report.passes.append("attach-tier2")
        report.seconds = time.perf_counter() - start
        return program, report

    # -- helpers ----------------------------------------------------------------

    def _insert_static(self, program: Program) -> int:
        """Static insertion over a (possibly cloned) program: variants named
        ``*$in`` and region methods compile in-region, the rest compile
        out-of-region."""
        total = 0
        for method in program.methods.values():
            if method.is_region or method.name.endswith(IN_SUFFIX):
                context = CompileContext.IN_REGION
            else:
                context = CompileContext.OUT_OF_REGION
            total += insert_barriers_method(
                method, context, self.labeled_statics
            )
        return total

    def _lower(self, program: Program) -> int:
        """Lower to pseudo-machine ops and run the downstream passes over
        them.  Both the op list and the passes are real allocated/scanned
        work (not counters), so wall-clock compile time scales with code
        bloat the way the paper describes."""
        ops: list[int] = []
        emit = ops.append
        for method in program.methods.values():
            for instr in method.all_instrs():
                if instr.op in BARRIER_OPS:
                    if instr.flavor is BarrierFlavor.DYNAMIC:
                        for unit in range(_OPS_PER_DYNAMIC_BARRIER):
                            emit(unit)
                    else:
                        for unit in range(_OPS_PER_STATIC_BARRIER):
                            emit(unit)
                else:
                    emit(0)
        # Downstream optimizations chew through the (possibly bloated)
        # lowered stream; this is where barrier inlining costs compile time.
        checksum = 0
        for _ in range(_DOWNSTREAM_PASSES):
            for op in ops:
                checksum ^= op
        assert checksum >= 0
        return len(ops)


def compile_source(
    source: str | Program, config: JITConfig = JITConfig.STATIC, **kwargs
) -> tuple[Program, CompileReport]:
    """One-shot convenience wrapper."""
    return Compiler(config, **kwargs).compile(source)
