"""The mini-JIT: IR, compiler passes, and interpreter.

Reproduces the compiler half of Section 5.1: barrier insertion with static
and dynamic variants (:mod:`.barrier_insertion`), intraprocedural
flow-sensitive redundant-barrier elimination (:mod:`.barrier_elim`) on a
generic dataflow framework (:mod:`.dataflow`), inlining that widens the
elimination's scope (:mod:`.inline`), method cloning for dual contexts
(:mod:`.cloning`), static region-method checks (:mod:`.region_checker`),
a text assembler for workloads (:mod:`.parser`), an interpreter that
executes instrumented programs against the Laminar VM (:mod:`.interpreter`),
and a profile-guided tier-2 template JIT that promotes hot methods to
label-shape-specialized compiled code with guard/deopt recovery
(:mod:`.tier2`).
"""

from .barrier_elim import (
    count_barriers,
    eliminate_interprocedural_barriers,
    eliminate_redundant_barriers,
    eliminate_redundant_barriers_method,
)
from .barrier_insertion import (
    CompileContext,
    insert_barriers,
    insert_barriers_method,
)
from .cfg import CFG
from .cloning import IN_SUFFIX, clone_count, clone_for_contexts
from .compiler import CompileReport, Compiler, JITConfig, compile_source
from .copyprop import propagate_copies, propagate_copies_method
from .dataflow import (
    BackwardMayAnalysis,
    BackwardMustAnalysis,
    DataflowAnalysis,
    Direction,
    ForwardMayAnalysis,
    ForwardMustAnalysis,
    Meet,
)
from .inline import DEFAULT_INLINE_THRESHOLD, inline_program
from .interpreter import Interpreter, IRArray, IRObject, StaleCompilationError
from .ir import (
    BarrierFlavor,
    BasicBlock,
    Instr,
    Method,
    Opcode,
    Program,
    RegionSpec,
)
from .parser import IRSyntaxError, parse_program
from .region_checker import check_program_regions, check_region_method
from .tier2 import Tier2Engine, TierPolicy
from .verifier import VerificationError, verify_method, verify_program

__all__ = [
    "BarrierFlavor",
    "BasicBlock",
    "CFG",
    "CompileContext",
    "BackwardMayAnalysis",
    "BackwardMustAnalysis",
    "CompileReport",
    "Compiler",
    "DEFAULT_INLINE_THRESHOLD",
    "DataflowAnalysis",
    "Direction",
    "ForwardMayAnalysis",
    "ForwardMustAnalysis",
    "Meet",
    "IN_SUFFIX",
    "IRArray",
    "IRObject",
    "IRSyntaxError",
    "Instr",
    "Interpreter",
    "JITConfig",
    "Method",
    "Opcode",
    "Program",
    "RegionSpec",
    "StaleCompilationError",
    "Tier2Engine",
    "TierPolicy",
    "check_program_regions",
    "check_region_method",
    "clone_count",
    "clone_for_contexts",
    "compile_source",
    "propagate_copies",
    "propagate_copies_method",
    "count_barriers",
    "eliminate_interprocedural_barriers",
    "eliminate_redundant_barriers",
    "eliminate_redundant_barriers_method",
    "insert_barriers",
    "insert_barriers_method",
    "inline_program",
    "parse_program",
    "VerificationError",
    "verify_method",
    "verify_program",
]
