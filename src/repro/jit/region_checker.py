"""Static checks on IR region methods (Section 5.1).

The prototype requires each security region to be its own method and
verifies, at compile time, that:

1. the method does not return a value (a returned value could carry secret
   data out of the region through the caller's locals);
2. the method takes only reference-type parameters and only *dereferences*
   them — a parameter register may appear as the object operand of a heap
   access or as a call argument, but never in arithmetic, comparisons,
   moves, stores to it, or returns;
3. the method does not read or write statics (the prototype forbids
   static writes under secrecy labels and static reads under integrity
   labels; "for simplicity our implementation requires both properties for
   every security region").

Violations are compile errors, raised as
:class:`~repro.core.StaticCheckError` before the program runs.
"""

from __future__ import annotations

from ..core import StaticCheckError
from .ir import Instr, Method, Opcode, Program


def _check_param_use(method: Method, instr: Instr, violations: list[str]) -> None:
    params = set(method.params)
    op, ops = instr.op, instr.operands
    # Positions where a parameter may legally appear (dereferences).
    allowed: set[str] = set()
    if op in (Opcode.GETFIELD, Opcode.ARRAYLEN):
        allowed = {ops[1]}
    elif op is Opcode.ALOAD:
        allowed = {ops[1]}  # the array; a parameter used as *index* is by-value
    elif op is Opcode.PUTFIELD:
        allowed = {ops[0]}
    elif op is Opcode.ASTORE:
        allowed = {ops[0]}
    elif op is Opcode.CALL:
        allowed = set(ops[2:])
    elif op in (Opcode.READBAR, Opcode.WRITEBAR, Opcode.ALLOCBAR):
        allowed = {ops[0]}
    elif op in (Opcode.LOCK, Opcode.UNLOCK):
        allowed = {ops[0]}  # lock brackets name a reference, not its value
    for reg in instr.used_registers():
        if reg in params and reg not in allowed:
            violations.append(
                f"parameter {reg!r} used by value in '{instr!r}'"
            )
    defined = instr.defined_register()
    if defined in params:
        violations.append(f"parameter {defined!r} is written by '{instr!r}'")


def check_region_method(method: Method, allow_statics: bool = False) -> None:
    """Verify one region method; raises :class:`StaticCheckError` listing
    every violation found.

    ``allow_statics`` enables the labeled-statics extension: static
    accesses are then permitted in regions because the compiler guards
    them with static barriers instead (Section 5.1's "a production
    implementation could support labeling statics")."""
    violations: list[str] = []
    for block in method.blocks.values():
        for instr in block.instrs:
            if instr.op is Opcode.RET and instr.operands[0] is not None:
                violations.append(
                    f"region method returns a value in '{instr!r}'"
                )
            if not allow_statics and instr.op in (
                Opcode.GETSTATIC, Opcode.PUTSTATIC
            ):
                violations.append(
                    f"static access in region method: '{instr!r}'"
                )
            if instr.op in (Opcode.SPAWN, Opcode.JOIN):
                violations.append(
                    f"thread operation in region method: '{instr!r}' "
                    f"(threads are created and joined outside regions)"
                )
            _check_param_use(method, instr, violations)
    if violations:
        listing = "\n  ".join(violations)
        raise StaticCheckError(
            f"region method {method.name!r} violates static restrictions:\n"
            f"  {listing}"
        )


def check_program_regions(program: Program, allow_statics: bool = False) -> int:
    """Check every region method in the program; returns how many were
    checked."""
    checked = 0
    for method in program.methods.values():
        if method.is_region:
            check_region_method(method, allow_statics)
            checked += 1
    return checked
