"""A HiStar-style page-granularity baseline.

HiStar "can enforce information flow at page granularity and supports a
form of multithreading by requiring each thread to have a page mapping
compatible with its label.  Using page table protections to track
information flow is expensive, both in execution time and space
fragmentation, and complicates the programming model by tightly coupling
memory management with DIFC enforcement" (Section 2).

This baseline makes those costs measurable:

* :class:`PagedHeap` allocates objects into fixed-size pages; a page has
  exactly one label, so two objects with different labels can never share
  one — heterogeneously labeled data fragments the heap
  (:meth:`PagedHeap.fragmentation` is the Table 1 ablation's metric).
* Access checks happen per *page fault*: the first touch of a page by a
  thread with given labels installs a mapping (an expensive check); later
  touches through an installed mapping are free — but any label change
  flushes the thread's mappings, which is why fine-grained region-style
  label switching is slow here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core import IFCViolation, LabelPair, can_flow

#: Objects per page.  Real systems use bytes; object slots keep the model
#: comparable with the Laminar heap while preserving the fragmentation math.
DEFAULT_PAGE_SLOTS = 64


@dataclass
class Page:
    labels: LabelPair
    slots: list[Any] = field(default_factory=list)
    capacity: int = DEFAULT_PAGE_SLOTS

    @property
    def full(self) -> bool:
        return len(self.slots) >= self.capacity


@dataclass
class PagedObject:
    page: Page
    slot: int

    def value(self) -> Any:
        return self.page.slots[self.slot]

    def store(self, value: Any) -> None:
        self.page.slots[self.slot] = value


@dataclass
class PageStats:
    pages: int = 0
    objects: int = 0
    faults: int = 0
    mapping_hits: int = 0
    flushes: int = 0


class PagedThread:
    """A thread with a label and a set of installed page mappings."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.labels = LabelPair.EMPTY
        #: pages this thread has faulted in, split by access kind.
        self.read_mappings: set[int] = set()
        self.write_mappings: set[int] = set()

    def set_labels(self, labels: LabelPair, stats: PageStats) -> None:
        """Label changes invalidate every mapping (the page tables must be
        rebuilt), the cost that makes region-style label switching
        expensive at page granularity."""
        if labels != self.labels:
            self.labels = labels
            self.read_mappings.clear()
            self.write_mappings.clear()
            stats.flushes += 1


class PagedHeap:
    """Allocation and checked access at page granularity."""

    def __init__(self, page_slots: int = DEFAULT_PAGE_SLOTS) -> None:
        self.page_slots = page_slots
        self.pages: list[Page] = []
        #: label -> open (non-full) page accepting new objects.
        self._open_pages: dict[LabelPair, Page] = {}
        self.stats = PageStats()

    # -- allocation --------------------------------------------------------------

    def allocate(self, labels: LabelPair, value: Any = None) -> PagedObject:
        """Place an object on a page with exactly its labels, opening a new
        page when none has room — two labels never share a page."""
        page = self._open_pages.get(labels)
        if page is None or page.full:
            page = Page(labels, capacity=self.page_slots)
            self.pages.append(page)
            self._open_pages[labels] = page
            self.stats.pages += 1
        page.slots.append(value)
        self.stats.objects += 1
        return PagedObject(page, len(page.slots) - 1)

    # -- checked access ------------------------------------------------------------

    def read(self, thread: PagedThread, obj: PagedObject) -> Any:
        page_id = id(obj.page)
        if page_id not in thread.read_mappings:
            self.stats.faults += 1
            if not can_flow(obj.page.labels, thread.labels):
                raise IFCViolation(
                    f"page fault: {thread.name} may not map page "
                    f"{obj.page.labels!r} for reading"
                )
            thread.read_mappings.add(page_id)
        else:
            self.stats.mapping_hits += 1
        return obj.value()

    def write(self, thread: PagedThread, obj: PagedObject, value: Any) -> None:
        page_id = id(obj.page)
        if page_id not in thread.write_mappings:
            self.stats.faults += 1
            if not can_flow(thread.labels, obj.page.labels):
                raise IFCViolation(
                    f"page fault: {thread.name} may not map page "
                    f"{obj.page.labels!r} for writing"
                )
            thread.write_mappings.add(page_id)
        else:
            self.stats.mapping_hits += 1
        obj.store(value)

    # -- the fragmentation metric ------------------------------------------------------

    def fragmentation(self) -> float:
        """Fraction of allocated slots wasted by label-driven page splits:
        0.0 means perfectly packed, approaching 1.0 means pages hold one
        object each (the heterogeneous-label worst case)."""
        if not self.pages:
            return 0.0
        capacity = sum(p.capacity for p in self.pages)
        used = sum(len(p.slots) for p in self.pages)
        return 1.0 - used / capacity
