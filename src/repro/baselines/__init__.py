"""Comparison systems.

* **vanilla** — unmodified Linux + unmodified JVM: a kernel with the
  :class:`~repro.osim.lsm.NullSecurityModule` and a VM in
  :class:`~repro.runtime.barriers.BarrierMode` ``NONE``.  The
  normalization denominator for Table 2 and Figure 8.
* **Flume** (:mod:`.flume`) — user-level reference monitor with
  address-space labels and endpoints; the 4-35× syscall-latency and
  granularity comparison of Sections 6.2 and 7.5.
* **page-level** (:mod:`.pagelevel`) — HiStar-style page-granularity
  enforcement; the fragmentation/label-switch ablation behind Table 1's
  "inefficient because of page table mechanisms" row.
"""

from ..osim.kernel import Kernel
from ..osim.lsm import NullSecurityModule
from ..runtime.barriers import BarrierMode
from ..runtime.vm import LaminarVM
from .flume import FlatNamespace, FlumeEndpoint, FlumeMonitor, FlumeProcess
from .pagelevel import (
    DEFAULT_PAGE_SLOTS,
    Page,
    PagedHeap,
    PagedObject,
    PagedThread,
    PageStats,
)


def vanilla_kernel() -> Kernel:
    """A kernel with no DIFC enforcement (unmodified Linux)."""
    return Kernel(NullSecurityModule())


def vanilla_vm(kernel: Kernel | None = None) -> LaminarVM:
    """A VM with no barriers (unmodified JVM) on a vanilla kernel."""
    return LaminarVM(kernel or vanilla_kernel(), mode=BarrierMode.NONE, name="vanilla")


__all__ = [
    "DEFAULT_PAGE_SLOTS",
    "FlatNamespace",
    "FlumeEndpoint",
    "FlumeMonitor",
    "FlumeProcess",
    "Page",
    "PagedHeap",
    "PagedObject",
    "PagedThread",
    "PageStats",
    "vanilla_kernel",
    "vanilla_vm",
]
