"""A Flume-style baseline: user-level reference monitor, per-address-space
labels, endpoints.

Flume (Krohn et al., SOSP 2007) is the OS-level comparison point the paper
uses twice:

* **Granularity** — "Flume tracks information flow at the granularity of an
  entire address space"; it cannot enforce DIFC on heterogeneously labeled
  objects inside one process (Section 7.5).  :class:`FlumeProcess` has
  exactly one label pair for everything it holds.
* **Cost** — "Flume adds a factor of 4-35× to the latency of system calls
  relative to unmodified Linux" (Section 6.2) because every mediated call
  leaves the kernel for a user-space monitor over an RPC.
  :class:`FlumeMonitor` models that path faithfully enough to measure: each
  intercepted syscall serializes its arguments, crosses into the monitor
  (a message queue hop), re-parses, label-checks, and only then performs
  the underlying operation on a vanilla kernel.

The monitor sits on top of an *unmodified* kernel
(:class:`~repro.osim.lsm.NullSecurityModule`), exactly like the real Flume.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import Any, Optional

from ..core import (
    CapabilitySet,
    Label,
    LabelPair,
    Tag,
    can_flow,
    check_flow,
    check_label_change,
)
from ..osim.kernel import Kernel
from ..osim.lsm import NullSecurityModule
from ..osim.task import EACCES, SyscallError, Task


class FlumeProcess:
    """A confined process: one label pair for the whole address space."""

    def __init__(self, name: str, task: Task) -> None:
        self.name = name
        self.task = task
        self.labels = LabelPair.EMPTY
        self.caps = CapabilitySet.EMPTY
        self.endpoints: list["FlumeEndpoint"] = []

    def raise_label(self, secrecy: Label) -> None:
        """Self-tainting to read secret data taints *everything* the
        process holds — the whole-address-space granularity."""
        check_label_change(
            self.labels.secrecy,
            self.labels.secrecy.union(secrecy),
            self.caps,
            context=f"{self.name} raise",
        )
        self.labels = LabelPair(
            self.labels.secrecy.union(secrecy), self.labels.integrity
        )


class FlumeEndpoint:
    """A communication endpoint with its own label; Flume checks flows at
    endpoint granularity so a process can hold endpoints it is not
    currently allowed to use."""

    def __init__(self, labels: LabelPair) -> None:
        self.labels = labels
        self.queue: deque[bytes] = deque()


class FlatNamespace:
    """Flume's flat namespace for labeled data (referenced in §5.2).

    Hierarchical filesystems entangle a file's integrity with every
    directory on its path (creating a name writes the parent; resolving a
    name reads it).  Flume side-steps the whole problem with a flat store:
    objects are named by opaque ids, there are no directories, so the only
    labels in play are the object's own.  A high-integrity task can store
    and retrieve endorsed data with no administrator trust and no
    relative-path gymnastics — at the cost of giving up names entirely.
    """

    def __init__(self) -> None:
        self._objects: dict[int, tuple[LabelPair, bytes]] = {}
        self._next_id = 1

    def put(self, process: "FlumeProcess", labels: LabelPair, data: bytes) -> int:
        """Store a labeled object; the write must flow from the process."""
        check_flow(process.labels, labels, context="flatns put")
        handle = self._next_id
        self._next_id += 1
        self._objects[handle] = (labels, bytes(data))
        return handle

    def get(self, process: "FlumeProcess", handle: int) -> bytes:
        """Fetch by id; the read must flow to the process.  Unknown and
        unreadable handles are indistinguishable (no name channel)."""
        entry = self._objects.get(handle)
        if entry is None:
            raise KeyError("no such object")
        labels, data = entry
        if not can_flow(labels, process.labels):
            raise KeyError("no such object")
        return data

    def __len__(self) -> int:
        return len(self._objects)


class FlumeMonitor:
    """The user-level reference monitor.

    Every mediated operation pays the RPC round trip:
    ``_rpc`` pickles the request, hops it through the monitor's message
    queue, unpickles, and dispatches — the structural source of the 4-35×
    syscall latency factor the comparison benchmark measures.
    """

    def __init__(self, kernel: Optional[Kernel] = None) -> None:
        self.kernel = kernel if kernel is not None else Kernel(NullSecurityModule())
        self.processes: dict[str, FlumeProcess] = {}
        self.flatns = FlatNamespace()
        self._inbox: deque[bytes] = deque()
        self.rpc_count = 0

    # -- process management --------------------------------------------------------

    def spawn(self, name: str) -> FlumeProcess:
        task = self.kernel.spawn_task(f"flume-{name}")
        process = FlumeProcess(name, task)
        self.processes[name] = process
        return process

    def create_tag(self, process: FlumeProcess, name: str = "") -> Tag:
        request = self._rpc("create_tag", process.name, name)
        tag = self.kernel.tags.alloc(request[2])
        process.caps = process.caps.union(CapabilitySet.dual(tag))
        return tag

    # -- the RPC path ----------------------------------------------------------------

    #: Simulated cost of the monitor round trip (two context switches plus
    #: IPC copies), in the same loop-iteration currency as
    #: :attr:`repro.osim.kernel.Kernel.SYSCALL_WORK`.  Real Flume pays
    #: ~10-30 µs against ~0.13 µs null syscalls; the simulated kernel's
    #: time scale is ~60x, so the hop is scaled to match (this is what
    #: makes the 4-35x factor of Section 6.2 reproducible).
    MONITOR_HOP_WORK = 25_000

    def _rpc(self, op: str, *args: Any) -> tuple:
        """One user-level monitor round trip: serialize, enqueue, cross
        into the monitor (simulated context switches), dequeue,
        deserialize."""
        self.rpc_count += 1
        wire = pickle.dumps((op, *args))
        self._inbox.append(wire)
        for _ in range(self.MONITOR_HOP_WORK):
            pass
        received = self._inbox.popleft()
        return pickle.loads(received)

    # -- mediated filesystem operations ----------------------------------------------

    def open(self, process: FlumeProcess, path: str, mode: str = "r") -> int:
        self._rpc("open", process.name, path, mode)
        inode = self.kernel.fs.resolve(path, process.task.cwd)
        if "r" in mode and not can_flow(inode.labels, process.labels):
            raise SyscallError(EACCES, f"flume: {process.name} may not read {path}")
        if ("w" in mode or "a" in mode) and not can_flow(process.labels, inode.labels):
            raise SyscallError(EACCES, f"flume: {process.name} may not write {path}")
        return self.kernel.sys_open(process.task, path, mode)

    def read(self, process: FlumeProcess, fd: int, count: int = -1) -> bytes:
        self._rpc("read", process.name, fd, count)
        file = process.task.lookup_fd(fd)
        check_flow(file.inode.labels, process.labels, context="flume read")
        return self.kernel.sys_read(process.task, fd, count)

    def write(self, process: FlumeProcess, fd: int, data: bytes) -> int:
        self._rpc("write", process.name, fd, len(data))
        file = process.task.lookup_fd(fd)
        check_flow(process.labels, file.inode.labels, context="flume write")
        return self.kernel.sys_write(process.task, fd, data)

    def stat(self, process: FlumeProcess, path: str) -> dict[str, Any]:
        self._rpc("stat", process.name, path)
        inode = self.kernel.fs.resolve(path, process.task.cwd)
        check_flow(inode.labels, process.labels, context="flume stat")
        return self.kernel.sys_stat(process.task, path)

    # -- endpoints ---------------------------------------------------------------------

    def create_endpoint(
        self, process: FlumeProcess, labels: Optional[LabelPair] = None
    ) -> FlumeEndpoint:
        self._rpc("create_endpoint", process.name)
        endpoint = FlumeEndpoint(labels if labels is not None else process.labels)
        process.endpoints.append(endpoint)
        return endpoint

    def send(self, process: FlumeProcess, endpoint: FlumeEndpoint, data: bytes) -> None:
        """Flume checks the *endpoint* labels; a process may only use an
        endpoint whose labels its own labels allow."""
        self._rpc("send", process.name, len(data))
        check_flow(process.labels, endpoint.labels, context="flume send")
        endpoint.queue.append(bytes(data))

    def receive(self, process: FlumeProcess, endpoint: FlumeEndpoint) -> bytes:
        self._rpc("receive", process.name)
        check_flow(endpoint.labels, process.labels, context="flume receive")
        if not endpoint.queue:
            return b""
        return endpoint.queue.popleft()
