"""``bench_check`` — guard committed benchmark snapshots against drift.

Every benchmark writes a machine-readable ``BENCH_*.json`` at the
repository root, and those snapshots are committed.  CI regenerates them
on every push and compares fresh numbers against the committed ones with
this tool::

    python -m repro.tools.bench_check <committed-dir> [<fresh-dir>]

Two kinds of fields are checked, declared per file in :data:`SPECS`:

* **ratio fields** — relative performance metrics (speedups, geomeans of
  normalized throughput).  These are machine-noise-resistant because
  both sides of the ratio ran on the same machine; a fresh value below
  ``committed * (1 - tolerance)`` is a throughput regression and fails
  the check (one-sided: getting *faster* never fails).
* **exact fields** — invariants of the security record: equivalence
  booleans, barrier/step/retry counts, deterministic fault totals.  Any
  difference is drift in *what the system does*, not how fast it does
  it, and fails the check regardless of direction.

Raw ``seconds`` / ``ops_per_sec`` numbers are deliberately *not* gated:
absolute wall-clock on shared CI runners is too noisy to compare across
machines.  The committed snapshot documents one machine's run; the
gates above catch real regressions without flaking on scheduler jitter.

Exit status: 0 when every present snapshot passes, 1 on any failure.
A file listed in :data:`SPECS` but absent from the committed directory
is skipped (the benchmark has not been committed yet); a committed file
whose fresh counterpart is missing fails (the benchmark stopped
producing its snapshot).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence

#: One-sided tolerance band for ratio fields: fresh may not fall more
#: than this fraction below the committed value.
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class BenchSpec:
    """What to compare in one ``BENCH_*.json`` snapshot."""

    file: str
    ratio_fields: tuple[str, ...] = ()
    exact_fields: tuple[str, ...] = ()
    tolerance: float = DEFAULT_TOLERANCE


SPECS: tuple[BenchSpec, ...] = (
    BenchSpec(
        file="BENCH_label_cache.json",
        ratio_fields=("speedup_all_on",),
        exact_fields=(
            "observables_identical",
            "configs.all_on.set_ops",
            "configs.all_off.set_ops",
        ),
    ),
    BenchSpec(
        file="BENCH_os_throughput.json",
        ratio_fields=("batched_speedup",),
        exact_fields=(
            "observables_identical",
            "configs.vanilla.ops",
            "configs.laminar.ops",
            "configs.laminar.steps",
            "configs.laminar_batched.steps",
            "configs.laminar.pipe_drops",
        ),
    ),
    BenchSpec(
        file="BENCH_os_throughput.json",
        # The multi-core arm: wall-clock scaling across fork workers is a
        # same-machine ratio but carries process-scheduling noise — use
        # the widened band (same reasoning as BENCH_cluster_throughput);
        # the acceptance floors (>=3x at 4, >=5x at 8) are asserted by
        # the benchmark itself.  Everything else is the security record
        # and deterministic workload totals: exact.
        ratio_fields=("multicore.scaling_ratio_4x",),
        exact_fields=(
            "multicore.audit_parity",
            "multicore.traffic_parity",
            "multicore.ops",
            "multicore.audit_entries",
            "multicore.pipe_drops",
            "multicore.denials",
            "multicore.hookchain_active",
        ),
        tolerance=0.30,
    ),
    BenchSpec(
        file="BENCH_degraded_throughput.json",
        exact_fields=(
            "points.0.ops",
            "points.0.retries",
            "points.50.retries",
            "points.50.faults_fired",
            "points.10.retries",
            "points.10.faults_fired",
        ),
    ),
    BenchSpec(
        file="BENCH_static_elim.json",
        exact_fields=(
            "observables_identical",
            "strictly_better",
            "totals.static_interproc",
            "totals.static_certified",
            "totals.removed_certified",
        ),
    ),
    BenchSpec(
        file="BENCH_cluster_throughput.json",
        # Wall-clock scaling is a same-machine ratio (4 workers vs 1), but
        # process scheduling is noisier than in-process speedups — widen
        # the one-sided band; the acceptance floor (>=3x) is asserted by
        # the benchmark itself.
        ratio_fields=("scaling_ratio_4x",),
        exact_fields=(
            "parity.audit_parity",
            "parity.traffic_parity",
            "parity.audit_entries",
            "parity.denials",
            # Deferred work is deterministic iteration *counts*, not
            # timings: the Flume-vs-Laminar virtual costs may never drift.
            "flume.laminar_deferred",
            "flume.flume_deferred",
        ),
        tolerance=0.30,
    ),
    BenchSpec(
        file="BENCH_fuzz_coverage.json",
        # Everything here is seed-deterministic — trace counts, op
        # totals, kind coverage, the zero-violation invariant, and the
        # planted-leak catch budgets — so only exact fields are gated;
        # traces/sec is informational (shared runners are too noisy).
        exact_fields=(
            "traces",
            "ops_total",
            "violations",
            "kinds_covered",
            "kinds_total",
            "leak_budgets.pipe-read",
            "leak_budgets.file-read",
        ),
    ),
    BenchSpec(
        file="BENCH_wire_throughput.json",
        # Codec speedup and bytes-per-request ratio are same-machine,
        # same-run interleaved comparisons (binary vs pickle alternate
        # rep by rep), so they resist scheduler noise; still widen the
        # band because per-call ns on shared runners wobbles.  The
        # acceptance floors (>=2x combined encode+decode, >=3x fewer
        # bytes) are asserted by the benchmark itself.  Parity of the
        # merged security record across wire modes and worker counts is
        # the invariant: exact, both wires, 1/4/8 workers.
        ratio_fields=("speedup_encode_decode", "bytes_ratio"),
        exact_fields=(
            "parity.workers_1.binary.audit_parity",
            "parity.workers_1.binary.traffic_parity",
            "parity.workers_1.pickle.audit_parity",
            "parity.workers_1.pickle.traffic_parity",
            "parity.workers_4.binary.audit_parity",
            "parity.workers_4.binary.traffic_parity",
            "parity.workers_4.pickle.audit_parity",
            "parity.workers_4.pickle.traffic_parity",
            "parity.workers_8.binary.audit_parity",
            "parity.workers_8.binary.traffic_parity",
            "parity.workers_8.pickle.audit_parity",
            "parity.workers_8.pickle.traffic_parity",
            "parity.cross_wire_identical",
            "dictionary.epoch_resend_ok",
        ),
        tolerance=0.30,
    ),
    BenchSpec(
        file="BENCH_jit_tier.json",
        ratio_fields=(
            "geomean_fig8_tier2_vs_interp",
            "geomean_fig8_tier2_vs_table",
        ),
        exact_fields=("observables_identical",),
    ),
)


@dataclass
class CheckResult:
    """Outcome of comparing one snapshot pair."""

    file: str
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def lookup(payload: Any, path: str) -> Any:
    """Resolve a dotted ``a.b.c`` path into nested dicts."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def check_payloads(
    committed: dict, fresh: dict, spec: BenchSpec
) -> CheckResult:
    """Compare one committed/fresh snapshot pair against its spec."""
    result = CheckResult(spec.file)
    for path in spec.ratio_fields:
        try:
            base = lookup(committed, path)
        except KeyError:
            # Committed snapshot predates the field: nothing to gate yet.
            result.notes.append(f"{path}: not in committed snapshot, skipped")
            continue
        try:
            value = lookup(fresh, path)
        except KeyError:
            result.failures.append(f"{path}: missing from fresh snapshot")
            continue
        floor = base * (1.0 - spec.tolerance)
        if value < floor:
            result.failures.append(
                f"{path}: {value:.3f} regressed below "
                f"{floor:.3f} (committed {base:.3f}, "
                f"tolerance {spec.tolerance:.0%})"
            )
        else:
            result.notes.append(
                f"{path}: {value:.3f} vs committed {base:.3f} ok"
            )
    for path in spec.exact_fields:
        try:
            base = lookup(committed, path)
        except KeyError:
            result.notes.append(f"{path}: not in committed snapshot, skipped")
            continue
        try:
            value = lookup(fresh, path)
        except KeyError:
            result.failures.append(f"{path}: missing from fresh snapshot")
            continue
        if value != base:
            result.failures.append(
                f"{path}: {value!r} drifted from committed {base!r}"
            )
        else:
            result.notes.append(f"{path}: {value!r} ok")
    return result


def check_dirs(
    committed_dir: Path, fresh_dir: Path, specs: Sequence[BenchSpec] = SPECS
) -> list[CheckResult]:
    """Check every spec whose committed snapshot exists."""
    results = []
    for spec in specs:
        committed_path = committed_dir / spec.file
        if not committed_path.exists():
            result = CheckResult(spec.file)
            result.notes.append("no committed snapshot, skipped")
            results.append(result)
            continue
        fresh_path = fresh_dir / spec.file
        if not fresh_path.exists():
            result = CheckResult(spec.file)
            result.failures.append(
                f"committed snapshot exists but {fresh_path} was not "
                f"regenerated"
            )
            results.append(result)
            continue
        committed = json.loads(committed_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        results.append(check_payloads(committed, fresh, spec))
    return results


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="bench_check",
        description="compare fresh BENCH_*.json snapshots against "
        "committed ones",
    )
    parser.add_argument("committed", help="directory with committed snapshots")
    parser.add_argument(
        "fresh",
        nargs="?",
        default=".",
        help="directory with freshly generated snapshots (default: .)",
    )
    args = parser.parse_args(argv)
    results = check_dirs(Path(args.committed), Path(args.fresh))
    failed = False
    for result in results:
        status = "FAIL" if result.failures else "ok"
        print(f"{result.file}: {status}", file=out)
        for line in result.notes:
            print(f"  {line}", file=out)
        for line in result.failures:
            print(f"  FAIL {line}", file=out)
        failed = failed or bool(result.failures)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
