"""Command-line tools: ``lamc`` (the mini-JIT driver)."""
