"""``lamc`` — the Laminar mini-JIT command-line driver.

A small compiler driver for IR files, the tool a downstream user reaches
for when debugging a workload or a pass::

    python -m repro.tools.lamc compile prog.ir --config dynamic --dump
    python -m repro.tools.lamc run prog.ir --config static --entry main
    python -m repro.tools.lamc run prog.ir --tier2 --tier2-threshold 4
    python -m repro.tools.lamc verify prog.ir --format sarif
    python -m repro.tools.lamc disasm prog.ir
    python -m repro.tools.lamc disasm prog.ir --tiers --tier2
    python -m repro.tools.lamc lint prog.ir --json
    python -m repro.tools.lamc fsck --seed 1234 --points 40
    python -m repro.tools.lamc fuzz --seed 7 --traces 50
    python -m repro.tools.lamc fuzz --seed 7 --ops 3 --leak pipe-read
    python -m repro.tools.lamc cluster --shards 4 --workers 2 \
        --topology edge,shuffle,central

``compile`` prints the pass pipeline and barrier accounting (optionally
the instrumented program); ``run`` executes on a fresh VM over a vanilla
kernel and reports the result plus barrier statistics; ``verify`` runs
the deep pipeline — lint, the label-race detector (LAM007/LAM008) and
the security-type certifier (LAM009 + per-method certificates), exit 1
on any error; ``disasm`` parses and pretty-prints; ``lint``
runs the whole-program lamlint analyses and reports IFC findings (exit 1
when any error-severity finding exists, 2 on syntax errors); both
``lint`` and ``verify`` speak ``--format sarif`` for CI upload; ``fsck``
runs the OS-layer crash-consistency sweep (deterministic by default,
seed-randomized with ``--seed`` — the command CI prints for replaying a
nightly chaos failure) and exits 1 on any recovery-invariant violation;
``cluster`` boots N kernel shards behind the label-aware router, runs a
generated trace, and exits 1 unless the merged cluster audit is
byte-identical to a single-kernel replay of the same routed trace;
``fuzz`` runs lamfuzz — seed-deterministic whole-OS workloads under the
two-run secret-swap noninterference oracle across the execution matrix
(cooperative / replicated-parallel / fault-composed arms), shrinking any
violation to a minimal op sequence and printing the one-line
``lamc fuzz --seed N --ops K`` replay command (exit 1 on violation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..analysis import run_lint, run_verify, to_sarif
from ..baselines import vanilla_kernel
from ..core import CapabilitySet
from ..jit import (
    Compiler,
    Interpreter,
    JITConfig,
    VerificationError,
    parse_program,
    verify_program,
)
from ..jit.disasm import disassemble
from ..jit.parser import IRSyntaxError
from ..runtime import LaminarVM


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _tier_policy(args: argparse.Namespace):
    if not getattr(args, "tier2", False):
        return None
    from ..jit.tier2 import TierPolicy

    threshold = getattr(args, "tier2_threshold", None)
    if threshold is None:
        return TierPolicy()
    # One knob scales both promotion points; back-edges run hotter than
    # invocations by the same 5x ratio as the defaults.
    return TierPolicy(
        invocation_threshold=threshold, backedge_threshold=5 * threshold
    )


def _build_compiler(args: argparse.Namespace) -> Compiler:
    if args.no_elim:
        optimize = False
    elif getattr(args, "certified", False):
        optimize = "certified"
    elif getattr(args, "interproc", False):
        optimize = "interprocedural"
    else:
        optimize = True
    return Compiler(
        JITConfig(args.config),
        optimize_barriers=optimize,
        inline=not args.no_inline,
        clone=args.clone,
        labeled_statics=args.labeled_statics,
        tier2=_tier_policy(args),
    )


def cmd_compile(args: argparse.Namespace, out) -> int:
    program, report = _build_compiler(args).compile(_read_source(args.file))
    print(f"config:   {report.config.value}", file=out)
    print(f"passes:   {' -> '.join(report.passes)}", file=out)
    print(
        f"methods:  {report.methods}   input instrs: {report.input_instrs}",
        file=out,
    )
    interproc = (
        f" (+{report.barriers_removed_interproc} interprocedural)"
        if report.barriers_removed_interproc
        else ""
    )
    certified = (
        f" (+{report.barriers_removed_certified} certified)"
        if report.barriers_removed_certified
        else ""
    )
    print(
        f"barriers: {report.barriers_inserted} inserted, "
        f"{report.barriers_removed} removed{interproc}{certified}, "
        f"{report.barriers_final} final",
        file=out,
    )
    if program.certified_methods:
        print(
            f"certified: {', '.join(sorted(program.certified_methods))}",
            file=out,
        )
    print(
        f"inlined:  {report.inlined_calls} call sites   "
        f"lowered: {report.machine_ops} ops   "
        f"({report.seconds * 1000:.2f} ms)",
        file=out,
    )
    if args.dump:
        print(file=out)
        print(disassemble(program), file=out)
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:
    program, report = _build_compiler(args).compile(_read_source(args.file))
    vm = LaminarVM(vanilla_kernel())
    if program.tags:
        # Region attributes declared in the source mint program-local tags;
        # the driver thread owns them all so declared regions are enterable.
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
    interp = Interpreter(program, vm)
    result = interp.run(args.entry)
    print(f"result:   {result!r}", file=out)
    stats = vm.barriers.stats
    print(
        f"executed: {interp.executed} instrs   barriers: {stats.total} "
        f"({stats.read_barriers}r/{stats.write_barriers}w/"
        f"{stats.alloc_barriers}a, {stats.dynamic_dispatches} dispatches)",
        file=out,
    )
    engine = interp._tier2
    if engine is not None:
        print(
            f"tier-2:   {engine.compiles} compiles, {engine.entries} entries, "
            f"{engine.deopts} deopts, {engine.osr_entries} OSR entries",
            file=out,
        )
    if interp.output:
        print("output:", file=out)
        for item in interp.output:
            print(f"  {item!r}", file=out)
    return 0


def cmd_verify(args: argparse.Namespace, out) -> int:
    program = parse_program(_read_source(args.file))
    report = run_verify(program, labeled_statics=args.labeled_statics)
    fmt = getattr(args, "format", "human")
    if fmt == "json":
        json.dump(report.to_dict(), out, indent=2)
        print(file=out)
    elif fmt == "sarif":
        json.dump(report.to_sarif(artifact=args.file), out, indent=2)
        print(file=out)
    else:
        print(report.format_human(), file=out)
    return 1 if report.errors else 0


def cmd_disasm(args: argparse.Namespace, out) -> int:
    if getattr(args, "tiers", False):
        # Tier report wants the *compiled* program: barrier flavors and
        # fusable pairs only exist after the pipeline runs.
        from ..jit.disasm import disassemble_tiers

        program, _report = _build_compiler(args).compile(
            _read_source(args.file)
        )
        print(
            disassemble_tiers(program, _tier_policy(args)), file=out
        )
        return 0
    print(disassemble(parse_program(_read_source(args.file))), file=out)
    return 0


def cmd_fsck(args: argparse.Namespace, out) -> int:
    from ..osim.chaos import run_crash_sweep, run_random_sweep

    if args.seed is not None:
        result = run_random_sweep(args.seed, count=args.points)
        header = f"randomized sweep (seed {args.seed})"
    else:
        result = run_crash_sweep(target=args.points)
        header = "deterministic crash-point sweep"
    if args.json:
        json.dump(
            {
                "mode": "random" if args.seed is not None else "deterministic",
                "seed": args.seed,
                "points": [
                    {
                        "site": r.site,
                        "nth": r.nth,
                        "kind": r.kind.value,
                        "outcome": r.outcome,
                        "violations": r.violations,
                    }
                    for r in result.results
                ],
                "ok": result.ok,
            },
            out,
            indent=2,
        )
        print(file=out)
    else:
        print(f"{header}: {result.summary()}", file=out)
        for site, nth, violation in result.violations:
            print(f"  {site}#{nth}: {violation}", file=out)
        if not result.ok and args.seed is not None:
            print(f"replay locally: lamc fsck --seed {args.seed}", file=out)
    return 0 if result.ok else 1


def cmd_fuzz(args: argparse.Namespace, out) -> int:
    import hashlib
    from pathlib import Path

    from ..analysis.fuzz import (
        ALL_ARMS,
        check_trace,
        fuzz_sweep,
        generate_plan,
        shrink_trace,
    )
    from ..osim.lsm import LeakySecurityModule

    arms = tuple(args.arms.split(","))
    for arm in arms:
        if arm not in ALL_ARMS:
            print(f"error: unknown arm {arm!r} (known: {ALL_ARMS})", file=out)
            return 2
    if args.leak is not None and args.leak not in LeakySecurityModule.LEAKS:
        print(
            f"error: unknown leak {args.leak!r} "
            f"(known: {LeakySecurityModule.LEAKS})",
            file=out,
        )
        return 2

    if args.dump_trace:
        for i in range(args.traces):
            plan = generate_plan(args.seed + i)
            if args.ops is not None:
                plan = plan.truncated(args.ops)
            print(plan.serialize(), file=out, end="")
        return 0

    report = fuzz_sweep(
        args.seed,
        args.traces,
        ops=args.ops,
        leak=args.leak,
        arms=arms,
        workers=args.workers,
    )

    payload = {
        "base_seed": args.seed,
        "traces": report.traces,
        "ops_total": report.ops_total,
        "arms": list(arms),
        "leak": args.leak,
        "coverage": report.coverage,
        "ok": report.ok,
        "violations": [],
    }
    replay = None
    for verdict in report.failures:
        plan = verdict.plan
        k, minimal = len(plan.ops), plan
        if not args.no_shrink:
            k, minimal = shrink_trace(
                plan, leak=args.leak, arms=("coop",), workers=args.workers
            )
        replay = f"lamc fuzz --seed {verdict.seed} --ops {k}"
        if args.leak:
            replay += f" --leak {args.leak}"
        payload["violations"].append(
            {
                "seed": verdict.seed,
                "ops": k,
                "replay": replay,
                "minimal_trace": minimal.serialize(),
                "plan_sha256": hashlib.sha256(
                    plan.serialize().encode()
                ).hexdigest(),
                "findings": [
                    {"arm": v.arm, "kind": v.kind, "detail": v.detail}
                    for v in verdict.violations
                ],
            }
        )
        if args.artifacts:
            artifact_dir = Path(args.artifacts)
            artifact_dir.mkdir(parents=True, exist_ok=True)
            lines = [f"# replay locally: {replay}", ""]
            lines.extend(
                f"# {v.arm}/{v.kind}: {v.detail}" for v in verdict.violations
            )
            lines.append("")
            lines.append(minimal.serialize())
            (artifact_dir / f"fuzz_seed{verdict.seed}.trace").write_text(
                "\n".join(lines)
            )
        break  # stop_on_violation: at most one failing verdict

    if args.json:
        json.dump(payload, out, indent=2, default=str)
        print(file=out)
    else:
        print(f"lamfuzz: {report.summary()} [arms: {','.join(arms)}]", file=out)
        for entry in payload["violations"]:
            for finding in entry["findings"][:8]:
                print(
                    f"  {finding['arm']}/{finding['kind']}: "
                    f"{finding['detail'][:200]}",
                    file=out,
                )
            print(f"  minimal failing trace ({entry['ops']} ops):", file=out)
            for line in entry["minimal_trace"].rstrip().splitlines():
                print(f"    {line}", file=out)
            print(f"replay locally: {entry['replay']}", file=out)
    return 0 if report.ok else 1


def cmd_cluster(args: argparse.Namespace, out) -> int:
    import time
    from collections import Counter

    from ..bench.loadgen import UserWorld, build_trace
    from ..osim.cluster import (
        Cluster,
        LabelAwareRouter,
        RoutingError,
        render_audit,
        replay_single,
    )

    world = UserWorld()
    trace = build_trace(
        world,
        args.requests,
        users=args.users,
        tainted_fraction=args.tainted,
        seed=args.seed,
    )
    cluster = Cluster(
        world,
        shards=args.shards,
        topology=args.topology,
        executor=args.executor,
        workers=args.workers,
        defer_work=True,
        work_ns=args.work_ns,
        seed=args.seed,
        wire=args.wire,
    )
    # Pre-filter with a throwaway router (routing is a pure function of
    # (principal, labels)): requests no tier can hold fail closed at the
    # router and never reach a shard.
    probe = LabelAwareRouter(cluster.specs)
    routable, refused = [], 0
    for req in trace:
        try:
            probe.route(req.principal, req.labels)
        except RoutingError:
            refused += 1
        else:
            routable.append(req)
    run_kwargs = {}
    if args.coalesce_rate:
        from ..bench.loadgen import coalesced_plan

        run_kwargs = coalesced_plan(
            routable, args.coalesce_rate, seed=args.seed
        )
    start = time.perf_counter()
    responses = cluster.run_trace(routable, **run_kwargs)
    seconds = time.perf_counter() - start
    wire_stats = cluster.wire_stats()
    merged = cluster.merged_audit()
    single, _ = replay_single(world, routable)
    parity = merged == render_audit(single.kernel.audit)
    agg = cluster.aggregate()
    per_shard = Counter(resp.shard_id for resp in responses)
    if args.json:
        json.dump(
            {
                "shards": [
                    {
                        "shard_id": spec.shard_id,
                        "tier": spec.tier,
                        "requests": per_shard.get(spec.shard_id, 0),
                    }
                    for spec in cluster.specs
                ],
                "executor": args.executor,
                "seed": args.seed,
                "requests": len(routable),
                "refused_at_router": refused,
                "seconds": seconds,
                "requests_per_sec": len(routable) / seconds,
                "denials": sum(agg["denials"].values()),
                "audit_entries": len(merged),
                "audit_parity": parity,
                "wire": wire_stats,
            },
            out,
            indent=2,
        )
        print(file=out)
    else:
        print(
            f"cluster:  {args.shards} shards ({args.topology}), "
            f"{args.executor} executor",
            file=out,
        )
        for spec in cluster.specs:
            print(
                f"  shard {spec.shard_id} [{spec.tier:>7}]: "
                f"{per_shard.get(spec.shard_id, 0)} requests",
                file=out,
            )
        print(
            f"routed:   {len(routable)} requests "
            f"({refused} refused at router)   "
            f"{len(routable) / seconds:.0f} req/s",
            file=out,
        )
        print(
            f"audit:    {len(merged)} entries, "
            f"{sum(agg['denials'].values())} denials, "
            f"parity {'ok' if parity else 'MISMATCH'}",
            file=out,
        )
        wire_line = (
            f"wire:     {wire_stats['wire']}, "
            f"{wire_stats['frames']} frames, "
            f"{wire_stats.get('bytes_per_request', 0)} B/req, "
            f"label dict {wire_stats['label_dict_hits']} hits / "
            f"{wire_stats['label_dict_misses']} misses"
        )
        coalescing = wire_stats.get("coalescing")
        if coalescing:
            wire_line += (
                f", {coalescing['coalesced_waves']}/{coalescing['waves']} "
                f"waves coalesced"
            )
        print(wire_line, file=out)
    cluster.shutdown()
    return 0 if parity else 1


def cmd_lint(args: argparse.Namespace, out) -> int:
    program = parse_program(_read_source(args.file))
    report = run_lint(program, labeled_statics=args.labeled_statics)
    fmt = getattr(args, "format", None) or (
        "json" if args.json else "human"
    )
    if fmt == "json":
        json.dump(report.to_dicts(), out, indent=2)
        print(file=out)
    elif fmt == "sarif":
        json.dump(
            to_sarif(report.diagnostics, "lamlint", artifact=args.file),
            out, indent=2,
        )
        print(file=out)
    else:
        print(report.format_human(), file=out)
    return 1 if report.errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lamc", description="Laminar mini-JIT driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="IR source file ('-' for stdin)")
        p.add_argument(
            "--config",
            choices=[c.value for c in JITConfig],
            default="static",
            help="compilation configuration (default: static)",
        )
        p.add_argument("--no-elim", action="store_true",
                       help="disable redundant-barrier elimination")
        p.add_argument("--no-inline", action="store_true",
                       help="disable inlining")
        p.add_argument("--clone", action="store_true",
                       help="clone methods for both region contexts")
        p.add_argument("--labeled-statics", action="store_true",
                       help="enable the labeled-statics extension")
        p.add_argument("--interproc", action="store_true",
                       help="also eliminate barriers using whole-program "
                            "(interprocedural) proven-safe facts")
        p.add_argument("--certified", action="store_true",
                       help="additionally delete every barrier in methods "
                            "the security-type certifier fully discharges "
                            "(implies --interproc)")
        p.add_argument("--tier2", action="store_true",
                       help="attach the tier-2 template JIT (profile-guided "
                            "promotion of hot methods to compiled code)")
        p.add_argument("--tier2-threshold", type=int, default=None,
                       metavar="N",
                       help="tier-2 promotion threshold: compile after N "
                            "invocations (back-edge OSR at 5*N)")

    p_compile = sub.add_parser("compile", help="compile and report")
    common(p_compile)
    p_compile.add_argument("--dump", action="store_true",
                           help="print the compiled program")
    p_compile.set_defaults(fn=cmd_compile)

    p_run = sub.add_parser("run", help="compile and execute")
    common(p_run)
    p_run.add_argument("--entry", default="main", help="entry method")
    p_run.set_defaults(fn=cmd_run)

    p_verify = sub.add_parser(
        "verify",
        help="run the security-type certifier and race detector "
             "(lint + LAM007-LAM009 + per-method certificates)",
    )
    p_verify.add_argument("file", help="IR source file ('-' for stdin)")
    p_verify.add_argument("--format", choices=("human", "json", "sarif"),
                          default="human",
                          help="output format (default: human)")
    p_verify.add_argument("--labeled-statics", action="store_true",
                          help="verify under the labeled-statics extension")
    p_verify.set_defaults(fn=cmd_verify)

    p_disasm = sub.add_parser("disasm", help="parse and pretty-print")
    common(p_disasm)
    p_disasm.add_argument("--tiers", action="store_true",
                          help="compile and print the per-method tier plan "
                               "(tier, baked barrier flavors, fused "
                               "superinstructions, guard points)")
    p_disasm.set_defaults(fn=cmd_disasm)

    p_lint = sub.add_parser(
        "lint", help="run the lamlint whole-program IFC analyses"
    )
    p_lint.add_argument("file", help="IR source file ('-' for stdin)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit findings as JSON (same as --format json)")
    p_lint.add_argument("--format", choices=("human", "json", "sarif"),
                        default=None,
                        help="output format (default: human)")
    p_lint.add_argument("--labeled-statics", action="store_true",
                        help="lint under the labeled-statics extension")
    p_lint.set_defaults(fn=cmd_lint)

    p_fsck = sub.add_parser(
        "fsck", help="run the OS crash-consistency sweep and audit recovery"
    )
    p_fsck.add_argument("--seed", type=int, default=None,
                        help="randomized sweep from this seed (default: "
                             "deterministic sweep of recorded crash points)")
    p_fsck.add_argument("--points", type=int, default=60,
                        help="fault points to schedule (default: 60)")
    p_fsck.add_argument("--json", action="store_true",
                        help="emit the sweep result as JSON")
    p_fsck.set_defaults(fn=cmd_fsck)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="seed-deterministic whole-OS noninterference fuzzing under "
             "the secret-swap oracle across the execution matrix",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; trace i uses seed+i (default: 0)")
    p_fuzz.add_argument("--traces", type=int, default=1,
                        help="number of consecutive seeds to check "
                             "(default: 1)")
    p_fuzz.add_argument("--ops", type=int, default=None, metavar="K",
                        help="truncate each trace to its first K ops (the "
                             "shrinker's replay form)")
    p_fuzz.add_argument("--arms", default="coop,par2,fault",
                        help="comma-separated execution arms (default: "
                             "coop,par2,fault; add 'fork' for the real "
                             "fork-worker pool)")
    p_fuzz.add_argument("--workers", type=int, default=2,
                        help="replicas/workers for the parallel arms "
                             "(default: 2)")
    p_fuzz.add_argument("--leak", default=None,
                        help="plant a deliberate kernel leak (negative "
                             "control; pipe-read or file-read) — the run "
                             "must exit 1")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking failing traces")
    p_fuzz.add_argument("--dump-trace", action="store_true",
                        help="print the generated trace plan(s) and exit")
    p_fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write shrunk failing traces to DIR (one "
                             ".trace file per failing seed)")
    p_fuzz.add_argument("--json", action="store_true",
                        help="emit the sweep report as JSON")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_cluster = sub.add_parser(
        "cluster",
        help="boot N kernel shards behind the label-aware router, run a "
             "generated trace, and check single-kernel audit parity",
    )
    p_cluster.add_argument("--shards", type=int, default=2,
                           help="number of kernel shards (default: 2)")
    p_cluster.add_argument("--workers", type=int, default=None, metavar="M",
                           help="worker processes for the multiprocess "
                                "executor (default: one per shard)")
    p_cluster.add_argument("--topology", default="edge",
                           help="comma-separated trust tiers, cycled over "
                                "the shards (default: edge; e.g. "
                                "edge,shuffle,central)")
    p_cluster.add_argument("--executor",
                           choices=("same-process", "multiprocess"),
                           default="same-process",
                           help="shard executor (default: same-process)")
    p_cluster.add_argument("--requests", type=int, default=64,
                           help="generated trace length (default: 64)")
    p_cluster.add_argument("--users", type=int, default=100_000,
                           help="simulated user id space (default: 100000)")
    p_cluster.add_argument("--tainted", type=float, default=0.0,
                           metavar="FRACTION",
                           help="fraction of requests carrying a secrecy "
                                "tag (default: 0.0)")
    p_cluster.add_argument("--seed", type=int, default=0,
                           help="base seed for trace generation and the "
                                "per-worker RNG derivation rule (workers "
                                "reseed with crc32(f'{seed}:{worker_id}'), "
                                "so repeated runs are bit-reproducible)")
    p_cluster.add_argument("--work-ns", type=float, default=0.0,
                           help="nanoseconds slept per deferred work unit "
                                "(default: 0)")
    p_cluster.add_argument("--wire", choices=("binary", "pickle"),
                           default="binary",
                           help="data-plane codec: the zero-copy binary "
                                "lamwire protocol or the legacy pickle "
                                "frames kept for differential testing "
                                "(default: binary)")
    p_cluster.add_argument("--coalesce-rate", type=float, default=0.0,
                           metavar="RPS",
                           help="dispatch through the adaptive coalescer "
                                "against a Poisson arrival schedule at "
                                "this rate (requests/sec; default: off, "
                                "one wave for the whole trace)")
    p_cluster.add_argument("--json", action="store_true",
                           help="emit the run summary as JSON")
    p_cluster.set_defaults(fn=cmd_cluster)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args, out)
    except IRSyntaxError as exc:
        print(f"syntax error: {exc}", file=out)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
