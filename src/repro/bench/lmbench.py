"""lmbench-style OS micro-benchmarks (Table 2).

The paper measures eight lmbench rows on unmodified Linux and on the
Laminar OS, reporting overheads of less than 8% everywhere except null
I/O (31%), "the worst case for Laminar in that the system call being
measured does little work to amortize the cost of the label check."

Each function here drives the corresponding syscall path on a simulated
kernel; the comparison harness runs it twice — once against a kernel with
the :class:`~repro.osim.lsm.NullSecurityModule` and once with the
:class:`~repro.osim.lsm.LaminarSecurityModule` — and normalizes.

The rows match Table 2::

    stat, fork, exec, 0k file create, 0k file delete,
    mmap latency, prot fault, null I/O
"""

from __future__ import annotations

from typing import Callable

from ..osim.kernel import Kernel, Mapping
from ..osim.lsm import Mask
from ..osim.task import Task


def _fresh_actor(kernel: Kernel) -> Task:
    return kernel.spawn_task("lmbench")


def setup_tree(kernel: Kernel) -> Task:
    """Shared fixture: a benchmark directory and a target file."""
    actor = _fresh_actor(kernel)
    kernel.sys_mkdir(actor, "/tmp/lm")
    fd = kernel.sys_creat(actor, "/tmp/lm/target")
    kernel.sys_write(actor, fd, b"x" * 512)
    kernel.sys_close(actor, fd)
    return actor


def bench_stat(kernel: Kernel, actor: Task, iterations: int) -> None:
    for _ in range(iterations):
        kernel.sys_stat(actor, "/tmp/lm/target")


def bench_fork(kernel: Kernel, actor: Task, iterations: int) -> None:
    for _ in range(iterations):
        child = kernel.sys_fork(actor)
        kernel.sys_exit(child, 0)


def bench_exec(kernel: Kernel, actor: Task, iterations: int) -> None:
    for _ in range(iterations):
        child = kernel.sys_fork(actor)
        kernel.sys_exec(child, "/tmp/lm/target")
        kernel.sys_exit(child, 0)


def bench_create_0k(kernel: Kernel, actor: Task, iterations: int) -> None:
    for i in range(iterations):
        fd = kernel.sys_creat(actor, f"/tmp/lm/f{i}")
        kernel.sys_close(actor, fd)


def bench_delete_0k(kernel: Kernel, actor: Task, iterations: int) -> None:
    # Files pre-created outside the timed region by the harness caller;
    # here create+delete pairs keep the loop self-sustaining.
    for i in range(iterations):
        fd = kernel.sys_creat(actor, f"/tmp/lm/d{i}")
        kernel.sys_close(actor, fd)
        kernel.sys_unlink(actor, f"/tmp/lm/d{i}")


def bench_mmap(kernel: Kernel, actor: Task, iterations: int) -> None:
    fd = kernel.sys_open(actor, "/tmp/lm/target", "r")
    for _ in range(iterations):
        kernel.sys_mmap(actor, fd, Mask.READ)
    kernel.sys_close(actor, fd)


def bench_prot_fault(kernel: Kernel, actor: Task, iterations: int) -> None:
    fd = kernel.sys_open(actor, "/tmp/lm/target", "r")
    mapping: Mapping = kernel.sys_mmap(actor, fd, Mask.READ)
    for _ in range(iterations):
        kernel.fault_protection(actor, mapping)
    kernel.sys_close(actor, fd)


def bench_null_io(kernel: Kernel, actor: Task, iterations: int) -> None:
    """1-byte reads of /dev/zero and writes to /dev/null: almost no base
    work, so the label check dominates — Table 2's outlier row."""
    zero_fd = kernel.sys_open(actor, "/dev/zero", "r")
    null_fd = kernel.sys_open(actor, "/dev/null", "w")
    for _ in range(iterations):
        kernel.sys_read(actor, zero_fd, 1)
        kernel.sys_write(actor, null_fd, b"x")
    kernel.sys_close(actor, zero_fd)
    kernel.sys_close(actor, null_fd)


def bench_pipe_latency(kernel: Kernel, actor: Task, iterations: int) -> None:
    """lmbench's pipe-latency row (not in the paper's Table 2; an extended
    measurement): a 1-byte message round-trips through a pipe."""
    rfd, wfd = kernel.sys_pipe(actor)
    for _ in range(iterations):
        kernel.sys_write(actor, wfd, b"x")
        kernel.sys_read(actor, rfd)


def bench_signal(kernel: Kernel, actor: Task, iterations: int) -> None:
    """lmbench's signal-delivery row (extended measurement)."""
    peer = kernel.sys_spawn_thread(actor)
    for _ in range(iterations):
        kernel.sys_kill(actor, peer.tid, 10)
        peer.pending_signals.clear()


#: Extended rows beyond the paper's Table 2 (no paper column).
LMBENCH_EXTENDED_ROWS: dict[str, tuple[Callable[[Kernel, Task, int], None], int]] = {
    "pipe latency": (bench_pipe_latency, 500),
    "signal": (bench_signal, 500),
}

#: Table 2 rows in paper order: name -> (bench fn, default iterations).
LMBENCH_ROWS: dict[str, tuple[Callable[[Kernel, Task, int], None], int]] = {
    "stat": (bench_stat, 400),
    "fork": (bench_fork, 80),
    "exec": (bench_exec, 40),
    "0k file create": (bench_create_0k, 150),
    "0k file delete": (bench_delete_0k, 120),
    "mmap latency": (bench_mmap, 40),
    "prot fault": (bench_prot_fault, 600),
    "null I/O": (bench_null_io, 500),
}

#: The paper's measured overheads, for shape comparison in EXPERIMENTS.md.
PAPER_TABLE2_OVERHEAD_PCT = {
    "stat": 2.0,
    "fork": 0.6,
    "exec": 0.6,
    "0k file create": 4.0,
    "0k file delete": 6.0,
    "mmap latency": 2.0,
    "prot fault": 7.0,
    "null I/O": 31.0,
}
