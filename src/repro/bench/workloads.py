"""Synthetic IR workloads standing in for DaCapo and pseudojbb (Fig. 8).

The paper measures its JVM overhead on the DaCapo suite plus a fixed-work
SPECjbb2000 (pseudojbb) — programs *without security regions*, so all
cost comes from barriers on ordinary heap traffic.  The suite here spans
the same axis that determines barrier overhead: heap-access density (heap
operations per instruction).

=============  ====================================  ===================
Workload       Shape                                 Heap density
=============  ====================================  ===================
``listsum``    build + traverse a linked list        high (field-heavy)
``sortbench``  insertion-sort an int array           high (array-heavy)
``treebuild``  build + sum a binary search tree      medium
``hashchurn``  open-addressing hash table churn      medium
``matmul``     dense matrix multiply on arrays       high (array-heavy)
``objgraph``   pointer-chasing over an object graph  high (field-heavy)
``arith``      scalar arithmetic loop                near zero
``txnmix``     order-processing transactions          medium (pseudojbb)
=============  ====================================  ===================

Each generator returns IR assembler text parameterized by a size knob so
benchmarks can scale run time; ``main`` returns a checksum so tests can
verify all three JIT configurations compute identical results.
"""

from __future__ import annotations

LISTSUM = """
class Node {{ value, next }}

method main() {{
entry:
  const n, {n}
  call head, build, n
  const total, 0
  const k, 0
  const reps, {reps}
  jmp outer
outer:
  binop c, lt, k, reps
  br c, inner, done
inner:
  call s, total, head
  binop total, add, total, s
  const one, 1
  binop k, add, k, one
  jmp outer
done:
  ret total
}}

method build(n) {{
entry:
  const i, 0
  const head, null
  jmp loop
loop:
  binop cond, lt, i, n
  br cond, body, done
body:
  new node, Node
  putfield node, value, i
  putfield node, next, head
  mov head, node
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret head
}}

method total(head) {{
entry:
  const sum, 0
  mov cur, head
  jmp loop
loop:
  const nullv, null
  binop cond, ne, cur, nullv
  br cond, body, done
body:
  getfield v, cur, value
  binop sum, add, sum, v
  getfield cur, cur, next
  jmp loop
done:
  ret sum
}}
"""


SORTBENCH = """
method main() {{
entry:
  const n, {n}
  newarray a, n
  call _, fill, a
  call _, isort, a
  call chk, checksum, a
  ret chk
}}

method fill(a) {{
entry:
  arraylen n, a
  const i, 0
  const seed, 12345
  jmp loop
loop:
  binop c, lt, i, n
  br c, body, done
body:
  const m, 1103515245
  const inc, 12345
  const mask, 2147483647
  binop seed, mul, seed, m
  binop seed, add, seed, inc
  binop seed, band, seed, mask
  astore a, i, seed
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret
}}

method isort(a) {{
entry:
  arraylen n, a
  const i, 1
  jmp outer
outer:
  binop c, lt, i, n
  br c, load, done
load:
  aload key, a, i
  const one, 1
  binop j, sub, i, one
  jmp inner
inner:
  const zero, 0
  binop ge, ge, j, zero
  br ge, check, place
check:
  aload v, a, j
  binop gtv, gt, v, key
  br gtv, shift, place
shift:
  const one, 1
  binop j1, add, j, one
  astore a, j1, v
  binop j, sub, j, one
  jmp inner
place:
  const one, 1
  binop j1, add, j, one
  astore a, j1, key
  binop i, add, i, one
  jmp outer
done:
  ret
}}

method checksum(a) {{
entry:
  arraylen n, a
  const i, 0
  const sum, 0
  jmp loop
loop:
  binop c, lt, i, n
  br c, body, done
body:
  aload v, a, i
  binop sum, bxor, sum, v
  binop sum, add, sum, i
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret sum
}}
"""


TREEBUILD = """
class Tree {{ key, left, right }}

method main() {{
entry:
  const n, {n}
  const root, null
  const i, 0
  const seed, 777
  jmp loop
loop:
  binop c, lt, i, n
  br c, body, sum
body:
  const m, 48271
  const mod, 2147483647
  binop seed, mul, seed, m
  binop seed, mod, seed, mod
  call root, insert, root, seed
  const one, 1
  binop i, add, i, one
  jmp loop
sum:
  call total, sumtree, root
  ret total
}}

method insert(node, key) {{
entry:
  const nullv, null
  binop isnull, eq, node, nullv
  br isnull, fresh, descend
fresh:
  new t, Tree
  putfield t, key, key
  putfield t, left, nullv
  putfield t, right, nullv
  ret t
descend:
  getfield k, node, key
  binop less, lt, key, k
  br less, goleft, goright
goleft:
  getfield l, node, left
  call l2, insert, l, key
  putfield node, left, l2
  ret node
goright:
  getfield r, node, right
  call r2, insert, r, key
  putfield node, right, r2
  ret node
}}

method sumtree(node) {{
entry:
  const nullv, null
  binop isnull, eq, node, nullv
  br isnull, zero, walk
zero:
  const z, 0
  ret z
walk:
  getfield k, node, key
  getfield l, node, left
  call ls, sumtree, l
  getfield r, node, right
  call rs, sumtree, r
  binop s, add, ls, rs
  binop s, add, s, k
  const mask, 1073741823
  binop s, band, s, mask
  ret s
}}
"""


HASHCHURN = """
method main() {{
entry:
  const cap, {cap}
  newarray keys, cap
  newarray vals, cap
  const n, {n}
  const i, 0
  const seed, 31
  const hits, 0
  jmp loop
loop:
  binop c, lt, i, n
  br c, body, done
body:
  const m, 1103515245
  const inc, 12345
  const mask, 2147483647
  binop seed, mul, seed, m
  binop seed, add, seed, inc
  binop seed, band, seed, mask
  call h, probe, keys, seed
  aload existing, keys, h
  binop hit, eq, existing, seed
  br hit, count, store
count:
  const one, 1
  binop hits, add, hits, one
  jmp next
store:
  astore keys, h, seed
  astore vals, h, i
  jmp next
next:
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  binop out, shl, hits, i
  ret out
}}

method probe(keys, key) {{
entry:
  arraylen cap, keys
  binop h, mod, key, cap
  const tries, 0
  jmp loop
loop:
  aload slot, keys, h
  const empty, 0
  binop isempty, eq, slot, empty
  br isempty, found, checkkey
checkkey:
  binop same, eq, slot, key
  br same, found, advance
advance:
  const one, 1
  binop h, add, h, one
  binop h, mod, h, cap
  binop tries, add, tries, one
  binop full, ge, tries, cap
  br full, found, loop
found:
  ret h
}}
"""


MATMUL = """
method main() {{
entry:
  const n, {n}
  binop nn, mul, n, n
  newarray a, nn
  newarray b, nn
  newarray c, nn
  call _, fill, a
  call _, fill, b
  call _, mul, a, b, c
  call chk, checksum, c
  ret chk
}}

method fill(m) {{
entry:
  arraylen nn, m
  const i, 0
  jmp loop
loop:
  binop cnd, lt, i, nn
  br cnd, body, done
body:
  const seven, 7
  binop v, mul, i, seven
  const mask, 1023
  binop v, band, v, mask
  astore m, i, v
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret
}}

method mul(a, b, c) {{
entry:
  arraylen nn, a
  const i, 0
  jmp guessn
guessn:
  const n, {n}
  jmp rows
rows:
  binop cnd, lt, i, n
  br cnd, cols_init, done
cols_init:
  const j, 0
  jmp cols
cols:
  binop cnd2, lt, j, n
  br cnd2, inner_init, next_row
inner_init:
  const k, 0
  const acc, 0
  jmp inner
inner:
  binop cnd3, lt, k, n
  br cnd3, body, store
body:
  binop ai, mul, i, n
  binop ai, add, ai, k
  aload av, a, ai
  binop bi, mul, k, n
  binop bi, add, bi, j
  aload bv, b, bi
  binop p, mul, av, bv
  binop acc, add, acc, p
  const one, 1
  binop k, add, k, one
  jmp inner
store:
  binop ci, mul, i, n
  binop ci, add, ci, j
  astore c, ci, acc
  const one, 1
  binop j, add, j, one
  jmp cols
next_row:
  const one, 1
  binop i, add, i, one
  jmp rows
done:
  ret
}}

method checksum(m) {{
entry:
  arraylen nn, m
  const i, 0
  const sum, 0
  jmp loop
loop:
  binop cnd, lt, i, nn
  br cnd, body, done
body:
  aload v, m, i
  binop sum, bxor, sum, v
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret sum
}}
"""


OBJGRAPH = """
class Vertex {{ id, weight, a, b }}

method main() {{
entry:
  const n, {n}
  call start, buildring, n
  const steps, {steps}
  call w, walk, start, steps
  ret w
}}

method buildring(n) {{
entry:
  new first, Vertex
  const zero, 0
  putfield first, id, zero
  putfield first, weight, zero
  mov prev, first
  const i, 1
  jmp loop
loop:
  binop c, lt, i, n
  br c, body, close
body:
  new v, Vertex
  putfield v, id, i
  const three, 3
  binop w, mul, i, three
  putfield v, weight, w
  putfield prev, a, v
  putfield v, b, prev
  mov prev, v
  const one, 1
  binop i, add, i, one
  jmp loop
close:
  putfield prev, a, first
  putfield first, b, prev
  ret first
}}

method walk(start, steps) {{
entry:
  mov cur, start
  const acc, 0
  const i, 0
  jmp loop
loop:
  binop c, lt, i, steps
  br c, body, done
body:
  getfield w, cur, weight
  binop acc, add, acc, w
  const two, 2
  binop parity, band, i, two
  br parity, fwd, back
fwd:
  getfield cur, cur, a
  jmp next
back:
  getfield cur, cur, b
  jmp next
next:
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret acc
}}
"""


ARITH = """
method main() {{
entry:
  const n, {n}
  const i, 0
  const acc, 1
  jmp loop
loop:
  binop c, lt, i, n
  br c, body, done
body:
  const k, 2654435761
  binop acc, mul, acc, k
  const mask, 4294967295
  binop acc, band, acc, mask
  binop acc, bxor, acc, i
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret acc
}}
"""


TXNMIX = """
class Order {{ id, qty, price, total, status }}
class Account {{ id, balance, orders }}

method main() {{
entry:
  const n, {n}
  new acct, Account
  const zero, 0
  putfield acct, id, zero
  const opening, 1000000
  putfield acct, balance, opening
  putfield acct, orders, zero
  const i, 0
  jmp loop
loop:
  binop c, lt, i, n
  br c, body, done
body:
  call _, txn, acct, i
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  getfield bal, acct, balance
  getfield cnt, acct, orders
  binop out, bxor, bal, cnt
  ret out
}}

method txn(acct, i) {{
entry:
  new order, Order
  putfield order, id, i
  const seven, 7
  binop q, mod, i, seven
  const one, 1
  binop q, add, q, one
  putfield order, qty, q
  const base, 99
  binop p, mul, q, base
  putfield order, price, p
  getfield qq, order, qty
  getfield pp, order, price
  binop tot, mul, qq, pp
  putfield order, total, tot
  const filled, 1
  putfield order, status, filled
  getfield bal, acct, balance
  binop bal, sub, bal, tot
  putfield acct, balance, bal
  getfield cnt, acct, orders
  binop cnt, add, cnt, one
  putfield acct, orders, cnt
  ret
}}
"""


GRADESHEET = """
class Cell {{ v }}

method bump(c, x) {{
entry:
  getfield t, c, v
  binop t, add, t, x
  const mask, 1073741823
  binop t, band, t, mask
  putfield c, v, t
  ret t
}}

region method grade() secrecy(gsec) {{
entry:
  new acc, Cell
  const zero, 0
  putfield acc, v, zero
  const i, 0
  jmp loop
loop:
  const n, {n}
  binop c, lt, i, n
  br c, body, done
body:
  call _, bump, acc, i
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret
}}

method main() {{
entry:
  const j, 0
  const z, 0
  new pub, Cell
  const zero, 0
  putfield pub, v, zero
  jmp outer
outer:
  const reps, {reps}
  binop c, lt, j, reps
  br c, obody, odone
obody:
  call _, grade
  call z, bump, pub, j
  const one, 1
  binop j, add, j, one
  jmp outer
odone:
  ret z
}}
"""


BATTLESHIP = """
class Board {{ hits, shots }}

method fire(b, x) {{
entry:
  getfield s, b, shots
  const one, 1
  binop s, add, s, one
  putfield b, shots, s
  const mask, 7
  binop h, band, x, mask
  const zero, 0
  binop isz, eq, h, zero
  br isz, hit, miss
hit:
  getfield t, b, hits
  const one, 1
  binop t, add, t, one
  putfield b, hits, t
  ret t
miss:
  getfield t, b, hits
  ret t
}}

region method turn_a() secrecy(pa) {{
entry:
  new b, Board
  const zero, 0
  putfield b, hits, zero
  putfield b, shots, zero
  const i, 0
  jmp loop
loop:
  const n, {n}
  binop c, lt, i, n
  br c, body, done
body:
  call _, fire, b, i
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret
}}

region method turn_b() secrecy(pb) {{
entry:
  new b, Board
  const zero, 0
  putfield b, hits, zero
  putfield b, shots, zero
  const i, 0
  jmp loop
loop:
  const n, {n}
  binop c, lt, i, n
  br c, body, done
body:
  call _, fire, b, i
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret
}}

method main() {{
entry:
  const r, 0
  new open, Board
  const zero, 0
  putfield open, hits, zero
  putfield open, shots, zero
  jmp outer
outer:
  const rounds, {rounds}
  binop c, lt, r, rounds
  br c, obody, odone
obody:
  call _, turn_a
  call _, turn_b
  call _, fire, open, r
  const one, 1
  binop r, add, r, one
  jmp outer
odone:
  getfield hs, open, hits
  getfield ss, open, shots
  binop out, bxor, hs, ss
  ret out
}}
"""


def listsum(n: int = 400, reps: int = 40) -> str:
    return LISTSUM.format(n=n, reps=reps)


def sortbench(n: int = 220) -> str:
    return SORTBENCH.format(n=n)


def treebuild(n: int = 700) -> str:
    return TREEBUILD.format(n=n)


def hashchurn(n: int = 2000, cap: int = 8192) -> str:
    # n well below cap: open addressing degrades to full-table scans near
    # saturation, which would measure the probe loop, not barrier cost.
    return HASHCHURN.format(n=n, cap=cap)


def matmul(n: int = 18) -> str:
    return MATMUL.format(n=n)


def objgraph(n: int = 300, steps: int = 20000) -> str:
    return OBJGRAPH.format(n=n, steps=steps)


def arith(n: int = 30000) -> str:
    return ARITH.format(n=n)


def txnmix(n: int = 2500) -> str:
    return TXNMIX.format(n=n)


def gradesheet(n: int = 200, reps: int = 12) -> str:
    """Apps slice: one secrecy region plus a helper shared with plain code.

    ``bump`` runs hot inside ``grade``'s region *and* from ``main``'s
    outer loop — the dual-context shape (Section 5.3) that forces a
    tiered engine to guard on region context, deoptimize on the
    opposite-context call, and clone.  Compile with ``inline=False`` or
    the compiler inlines the interesting call sites away.
    """
    return GRADESHEET.format(n=n, reps=reps)


def battleship(n: int = 120, rounds: int = 10) -> str:
    """Apps slice: two players' regions with distinct tags sharing ``fire``.

    The helper is hot under three label shapes — two different in-region
    secrecy labels plus the unlabeled caller — so a label-specializing
    compiler must hold multiple specialized variants live at once.
    """
    return BATTLESHIP.format(n=n, rounds=rounds)


#: Fig. 9-style security-region application slices (legal flows only:
#: every configuration must finish with an empty audit log).
REGION_APPS = {
    "gradesheet": gradesheet,
    "battleship": battleship,
}

#: name -> zero-argument source generator with paper-bench default sizes.
DACAPO_LIKE = {
    "listsum": listsum,
    "sortbench": sortbench,
    "treebuild": treebuild,
    "hashchurn": hashchurn,
    "matmul": matmul,
    "objgraph": objgraph,
    "arith": arith,
}

#: The pseudojbb stand-in.
PSEUDOJBB = {"txnmix": txnmix}

ALL_WORKLOADS = {**DACAPO_LIKE, **PSEUDOJBB}


# =========================================================================
# OS throughput workload: a multi-user labeled file server
# =========================================================================
#
# The JVM workloads above measure *barrier* overhead; this one measures
# the OS layer at server scale.  Per user: a secrecy tag, a labeled data
# file, a server task and a client task (both labeled with the user's
# tag), and a labeled request/response pipe pair.  Clients send requests;
# the server answers each by reading the user's file in chunks and
# writing back one response.  Every flow is legal, so all three
# benchmark configurations (vanilla / Laminar / Laminar+batching) must
# produce empty audit logs and zero denials — the interesting axis is
# ops/sec.  The server's read loop is the batching target: sequential
# mode issues one scheduler-mediated syscall per chunk; batched mode
# issues a single ``sys_submit`` covering the rewind and every chunk
# read.


def _os_server_body(kernel, batched, path, req_fd, resp_fd, chunks, chunk_size):
    from ..osim.kernel import Sqe
    from ..osim.sched import read_blocking, submit, syscall

    def body(task):
        fd = yield syscall("open", path, "r")
        if batched:
            sqes = [Sqe("lseek", fd, 0)]
            sqes += [Sqe("read", fd, chunk_size) for _ in range(chunks)]
        while True:
            request = yield read_blocking(req_fd)
            if not request:
                break  # request pipe hung up: client is done
            if batched:
                cqes = yield submit(sqes)
                payload = b"".join(c.result for c in cqes[1:])
            else:
                yield syscall("lseek", fd, 0)
                parts = []
                for _ in range(chunks):
                    parts.append((yield syscall("read", fd, chunk_size)))
                payload = b"".join(parts)
            yield syscall("write", resp_fd, payload)
        yield syscall("close", resp_fd)

    return body


def _os_client_body(requests, req_fd, resp_fd, expected_len, served):
    from ..osim.sched import read_blocking, syscall

    def body(task):
        # Pipeline: queue every request, hang up, then drain responses.
        # Keeps the servers hot (their blocking reads always find data),
        # which is the realistic shape for a loaded server anyway.
        for _ in range(requests):
            yield syscall("write", req_fd, b"get")
        yield syscall("close", req_fd)
        for _ in range(requests):
            response = yield read_blocking(resp_fd)
            if len(response) != expected_len:
                raise AssertionError(
                    f"short response: {len(response)} != {expected_len}"
                )
            served.append(len(response))

    return body


def setup_os_server(
    kernel,
    *,
    users: int = 4,
    requests: int = 6,
    chunks: int = 96,
    chunk_size: int = 96,
    batched: bool = False,
):
    """Prime ``kernel`` with the multi-user server workload.

    Returns ``(scheduler, stats)``: run ``scheduler.run()`` (timing it,
    if you care) and then read ``stats`` — ``ops`` is the number of file
    chunks served, ``bytes_served`` the client-verified response bytes.
    Setup is identical for every configuration; only the server's inner
    loop differs with ``batched``.
    """
    from ..core import Label, LabelPair
    from ..osim.sched import Scheduler

    sched = Scheduler(kernel)
    setup = kernel.spawn_task("srv-setup")
    kernel.sys_mkdir(setup, "/tmp/srv")
    served: list[int] = []
    for i in range(users):
        tag, _caps = kernel.sys_alloc_tag(setup, f"u{i}")
        secret = LabelPair(Label.of(tag))
        home = f"/tmp/srv/user{i}"
        kernel.sys_mkdir(setup, home)
        fd = kernel.sys_create_file_labeled(setup, f"{home}/data", secret)
        kernel.sys_write(setup, fd, bytes([i % 251]) * (chunks * chunk_size))
        kernel.sys_close(setup, fd)

        server = kernel.spawn_task(f"server{i}", labels=secret)
        client = kernel.spawn_task(f"client{i}", labels=secret)
        req_r, req_w = kernel.sys_pipe(setup, labels=secret)
        resp_r, resp_w = kernel.sys_pipe(setup, labels=secret)
        s_req = kernel.share_fd(setup, req_r, server)
        s_resp = kernel.share_fd(setup, resp_w, server)
        c_req = kernel.share_fd(setup, req_w, client)
        c_resp = kernel.share_fd(setup, resp_r, client)
        for fd_ in (req_r, req_w, resp_r, resp_w):
            kernel.sys_close(setup, fd_)

        sched.spawn(
            _os_server_body(
                kernel, batched, f"{home}/data", s_req, s_resp, chunks, chunk_size
            ),
            task=server,
        )
        sched.spawn(
            _os_client_body(requests, c_req, c_resp, chunks * chunk_size, served),
            task=client,
        )

    stats = {
        "users": users,
        "tasks": 2 * users,
        "requests": users * requests,
        "ops": users * requests * chunks,
        "batched": batched,
        "served": served,
        "bytes_served": lambda: sum(served),
    }
    return sched, stats


# =========================================================================
# Degraded mode: the same server under a steady background fault rate
# =========================================================================
#
# The chaos sweep (repro.osim.chaos) kills the machine at one point per
# run; this workload instead measures *throughput under partial failure*:
# a periodic-EIO fault plan makes every Nth read syscall fail, and the
# server retries.  The interesting numbers are ops/sec relative to the
# healthy server (the cost of the error path + retries) and the retry
# count (which must match the fault plan's firing count exactly —
# deterministic injection means deterministic degradation).


def _os_server_body_degraded(
    kernel, path, req_fd, resp_fd, chunks, chunk_size, retries
):
    from ..osim.sched import read_blocking, syscall
    from ..osim.task import EIO, SyscallError

    def body(task):
        fd = yield syscall("open", path, "r")
        while True:
            try:
                request = yield read_blocking(req_fd)
            except SyscallError as exc:
                if exc.errno != EIO:
                    raise
                retries.append(-1)
                continue
            if not request:
                break
            yield syscall("lseek", fd, 0)
            parts = []
            while len(parts) < chunks:
                try:
                    parts.append((yield syscall("read", fd, chunk_size)))
                except SyscallError as exc:
                    if exc.errno != EIO:
                        raise
                    retries.append(len(parts))  # retry the same chunk
            payload = b"".join(parts)
            assert len(payload) == chunks * chunk_size
            yield syscall("write", resp_fd, payload)
        yield syscall("close", resp_fd)

    return body


def _os_client_body_degraded(requests, req_fd, resp_fd, expected_len, served, retries):
    from ..osim.sched import read_blocking, syscall
    from ..osim.task import EIO, SyscallError

    def body(task):
        for _ in range(requests):
            yield syscall("write", req_fd, b"get")
        yield syscall("close", req_fd)
        drained = 0
        while drained < requests:
            try:
                response = yield read_blocking(resp_fd)
            except SyscallError as exc:
                if exc.errno != EIO:
                    raise
                retries.append(-2)
                continue
            if len(response) != expected_len:
                raise AssertionError(
                    f"short response: {len(response)} != {expected_len}"
                )
            served.append(len(response))
            drained += 1

    return body


def setup_degraded_os_server(
    kernel,
    *,
    users: int = 4,
    requests: int = 6,
    chunks: int = 96,
    chunk_size: int = 96,
    eio_every: int = 0,
):
    """Prime ``kernel`` with the retry-on-EIO file-server workload.

    ``eio_every=N`` installs a :class:`~repro.osim.faults.FaultPlan` that
    fails every Nth ``read`` syscall with EIO (0 = no plan: the healthy
    baseline, but still running the retry-capable server body so the two
    configurations differ only in injected faults).  Returns
    ``(scheduler, stats)`` like :func:`setup_os_server`; ``stats`` gains
    ``retries`` (a list with one entry per retried chunk read).
    """
    from ..core import Label, LabelPair
    from ..osim.faults import FaultKind, FaultPlan, FaultRule
    from ..osim.sched import Scheduler

    sched = Scheduler(kernel)
    setup = kernel.spawn_task("srv-setup")
    kernel.sys_mkdir(setup, "/tmp/srv")
    served: list[int] = []
    retries: list[int] = []
    bodies = []
    for i in range(users):
        tag, _caps = kernel.sys_alloc_tag(setup, f"u{i}")
        secret = LabelPair(Label.of(tag))
        home = f"/tmp/srv/user{i}"
        kernel.sys_mkdir(setup, home)
        fd = kernel.sys_create_file_labeled(setup, f"{home}/data", secret)
        kernel.sys_write(setup, fd, bytes([i % 251]) * (chunks * chunk_size))
        kernel.sys_close(setup, fd)

        server = kernel.spawn_task(f"server{i}", labels=secret)
        client = kernel.spawn_task(f"client{i}", labels=secret)
        req_r, req_w = kernel.sys_pipe(setup, labels=secret)
        resp_r, resp_w = kernel.sys_pipe(setup, labels=secret)
        s_req = kernel.share_fd(setup, req_r, server)
        s_resp = kernel.share_fd(setup, resp_w, server)
        c_req = kernel.share_fd(setup, req_w, client)
        c_resp = kernel.share_fd(setup, resp_r, client)
        for fd_ in (req_r, req_w, resp_r, resp_w):
            kernel.sys_close(setup, fd_)

        bodies.append((
            _os_server_body_degraded(
                kernel, f"{home}/data", s_req, s_resp, chunks, chunk_size,
                retries,
            ),
            server,
            _os_client_body_degraded(
                requests, c_req, c_resp, chunks * chunk_size, served, retries
            ),
            client,
        ))

    # Faults go in *after* setup so the healthy prefix (labeled creates,
    # grants) is identical across configurations and only served traffic
    # sees EIO.
    if eio_every:
        kernel.install_faults(
            FaultPlan([FaultRule("syscall:read", FaultKind.EIO, every=eio_every)])
        )
    for server_body, server, client_body, client in bodies:
        sched.spawn(server_body, task=server)
        sched.spawn(client_body, task=client)

    stats = {
        "users": users,
        "tasks": 2 * users,
        "requests": users * requests,
        "ops": users * requests * chunks,
        "eio_every": eio_every,
        "served": served,
        "retries": retries,
        "bytes_served": lambda: sum(served),
    }
    return sched, stats


# =========================================================================
# Group-partitioned mode: the same server as a ParallelScheduler world
# =========================================================================
#
# The parallel scheduler backend (repro.osim.psched) partitions *task
# groups* — sets of tasks sharing fds only with each other — across a
# worker pool.  One user of the file server is exactly such a group:
# their server, client, and courier tasks touch only the user's own
# labeled file, pipes, and tag.  ``OSServerWorld`` packages a user-per-
# group build of the server so the identical world can be replicated
# onto every worker's kernel image (same creation order → same tids,
# inode numbers, and tag values → byte-identical denial text).
#
# Unlike the all-legal workload above, every group also exercises the
# *denied* paths so executor-equivalence checks are not vacuous: the
# labeled client attempts a network transmit each round (denied and
# audited — labeled data must not reach the unlabeled world), writes a
# probe into an unlabeled pipe (silently dropped: denied ≡ empty), and
# an unlabeled courier task transmits a heartbeat (delivered: one
# traffic-log entry).  The server stats its file once per request, so
# the hot path exercises compiled LSM hook chains (walk + getattr and
# per-chunk file_permission) as well.


def _psrv_server_body(kernel, batched, path, req_fd, resp_fd, chunks, chunk_size):
    from ..osim.kernel import Sqe
    from ..osim.sched import read_blocking, submit, syscall

    def body(task):
        fd = yield syscall("open", path, "r")
        if batched:
            sqes = [Sqe("lseek", fd, 0)]
            sqes += [Sqe("read", fd, chunk_size) for _ in range(chunks)]
        while True:
            request = yield read_blocking(req_fd)
            if not request:
                break
            # Freshness check before serving: the per-request stat is
            # what makes the walk+getattr hook chain hot.
            yield syscall("stat", path)
            if batched:
                cqes = yield submit(sqes)
                payload = b"".join(c.result for c in cqes[1:])
            else:
                yield syscall("lseek", fd, 0)
                parts = []
                for _ in range(chunks):
                    parts.append((yield syscall("read", fd, chunk_size)))
                payload = b"".join(parts)
            yield syscall("write", resp_fd, payload)
        yield syscall("close", resp_fd)

    return body


def _psrv_client_body(
    user, requests, req_fd, resp_fd, drop_fd, expected_len, served, denied
):
    from ..osim.sched import read_blocking, syscall
    from ..osim.task import EACCES, SyscallError

    def body(task):
        for _ in range(requests):
            yield syscall("write", req_fd, b"get")
        yield syscall("close", req_fd)
        for k in range(requests):
            response = yield read_blocking(resp_fd)
            if len(response) != expected_len:
                raise AssertionError(
                    f"short response: {len(response)} != {expected_len}"
                )
            served.append(len(response))
            # Exfiltration attempt: a labeled task may not reach the
            # unlabeled network.  Denied loudly (audit + EACCES) — the
            # network is outside the denied≡empty regime.
            try:
                yield syscall("transmit", f"exfil:{user}:{k}".encode())
            except SyscallError as exc:
                if exc.errno != EACCES:
                    raise
                denied.append(k)
            # Leak probe into an unlabeled pipe: silently dropped (the
            # write "succeeds"), counted only by the pipe's drop counter.
            yield syscall("write", drop_fd, b"leak?")

    return body


def _psrv_courier_body(user, requests, transmitted):
    from ..osim.sched import syscall, yield_

    def body(task):
        for k in range(requests):
            n = yield syscall("transmit", f"hb:{user}:{k}".encode())
            transmitted.append(n)
            yield yield_()

    return body


class OSServerWorld:
    """The multi-user file server as a replicable task-group world.

    Satisfies the :class:`repro.osim.psched.ParallelScheduler` world
    protocol: ``group_count`` plus ``build(kernel)`` returning one
    :class:`~repro.osim.psched.GroupHandle` per user.  ``build`` performs
    the *same* setup sequence on every kernel image it is given, so every
    worker's replica allocates identical tids, inode numbers, and tags.
    """

    def __init__(
        self,
        *,
        users: int = 4,
        requests: int = 12,
        chunks: int = 8,
        chunk_size: int = 64,
        batched: bool = False,
        heartbeat: bool = True,
    ) -> None:
        self.users = users
        self.requests = requests
        self.chunks = chunks
        self.chunk_size = chunk_size
        self.batched = batched
        self.heartbeat = heartbeat
        self.group_count = users

    def build(self, kernel):
        from ..core import Label, LabelPair
        from ..osim.psched import GroupHandle

        setup = kernel.spawn_task("psrv-setup")
        kernel.sys_mkdir(setup, "/tmp/psrv")
        handles = []
        for i in range(self.users):
            tag, _caps = kernel.sys_alloc_tag(setup, f"pu{i}")
            secret = LabelPair(Label.of(tag))
            home = f"/tmp/psrv/user{i}"
            path = f"{home}/data"
            kernel.sys_mkdir(setup, home)
            fd = kernel.sys_create_file_labeled(setup, path, secret)
            kernel.sys_write(
                setup, fd, bytes([i % 251]) * (self.chunks * self.chunk_size)
            )
            kernel.sys_close(setup, fd)

            server = kernel.spawn_task(f"psrv{i}", labels=secret)
            client = kernel.spawn_task(f"pcli{i}", labels=secret)
            req_r, req_w = kernel.sys_pipe(setup, labels=secret)
            resp_r, resp_w = kernel.sys_pipe(setup, labels=secret)
            drop_r, drop_w = kernel.sys_pipe(setup, labels=LabelPair.EMPTY)
            s_req = kernel.share_fd(setup, req_r, server)
            s_resp = kernel.share_fd(setup, resp_w, server)
            c_req = kernel.share_fd(setup, req_w, client)
            c_resp = kernel.share_fd(setup, resp_r, client)
            c_drop = kernel.share_fd(setup, drop_w, client)
            drop_pipe = setup.lookup_fd(drop_r).inode.pipe
            for fd_ in (req_r, req_w, resp_r, resp_w, drop_r, drop_w):
                kernel.sys_close(setup, fd_)

            served: list[int] = []
            denied: list[int] = []
            transmitted: list[int] = []
            server_body = _psrv_server_body(
                kernel, self.batched, path, s_req, s_resp,
                self.chunks, self.chunk_size,
            )
            client_body = _psrv_client_body(
                i, self.requests, c_req, c_resp, c_drop,
                self.chunks * self.chunk_size, served, denied,
            )
            courier = None
            courier_body = None
            if self.heartbeat:
                courier = kernel.spawn_task(f"pcour{i}")
                courier_body = _psrv_courier_body(i, self.requests, transmitted)

            def spawn(sched, _sb=server_body, _srv=server, _cb=client_body,
                      _cli=client, _hb=courier_body, _cour=courier):
                sched.spawn(_sb, task=_srv)
                sched.spawn(_cb, task=_cli)
                if _hb is not None:
                    sched.spawn(_hb, task=_cour)

            def stats(_served=served, _denied=denied, _tx=transmitted,
                      _pipe=drop_pipe, _n=self.requests, _c=self.chunks,
                      _cs=self.chunk_size):
                assert sum(_served) == _n * _c * _cs, (sum(_served), _n, _c, _cs)
                return {
                    "ops": _n * _c,
                    "bytes_served": sum(_served),
                    "denied_transmits": len(_denied),
                    "heartbeats": len(_tx),
                    "pipe_drops": _pipe.dropped,
                }

            handles.append(GroupHandle(f"user{i}", spawn, stats))
        return handles
