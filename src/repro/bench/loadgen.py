"""Open-loop cluster load generator: Zipfian keys, 10^5–10^6 users.

The cluster benchmark needs a workload that looks like a front-end fleet,
not like a unit test: a large simulated user population (10^5–10^6 ids),
Zipfian key popularity (a few hot keys take most of the traffic), and an
*open-loop* arrival process — requests arrive on a schedule independent
of completions, so queueing delay shows up in the tail instead of being
hidden by back-pressure, which is the methodological point of open-loop
load generation.

Three pieces:

* :class:`ZipfianSampler` — rank-``s`` Zipf over ``n`` keys via
  cumulative weights + bisection (no numpy in the container).
* :class:`UserWorld` — the replicated world image every shard boots:
  gateway tasks (front-ends acting for users), hot data files the
  gateways hold open, and a small pre-allocated tag set for labeled
  traffic.  Builds are deterministic, so fds, inode numbers, and tag
  values are identical on every shard and on the single-kernel parity
  replay.  User ids map onto gateways (``gw{uid % gateways}``) — the
  million-user id space rides on a bounded principal set, the way a real
  front-end fleet multiplexes users onto worker processes.
* :func:`build_trace` / :func:`open_loop_arrivals` /
  :func:`simulate_queueing` — compose a routed trace, give each request
  an arrival time at a configurable rate, and replay measured per-request
  service times through a virtual-time per-shard FIFO queue to get
  p50/p95/p99 latency and saturation curves.  Virtual time makes the
  latency distribution a pure function of (trace, measured service),
  reproducible across hosts.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core import LabelPair
from ..core.labels import Label
from ..core.tags import Tag
from ..osim.cluster import ClusterRequest
from ..osim.kernel import Sqe

#: Default simulated-user population (the "million user" arm raises this
#: to 10**6; smoke runs lower it).
DEFAULT_USERS = 100_000


class ZipfianSampler:
    """Sample ranks 1..n with probability proportional to ``1/rank**s``.

    Cumulative-weight table + ``bisect`` keeps sampling O(log n) with a
    one-time O(n) setup — fine up to 10^6 keys without numpy.
    """

    def __init__(self, n: int, s: float = 1.1, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("need at least one key")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        cum: list[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / rank**s
            cum.append(total)
        self._cum = cum
        self._total = total

    def sample(self) -> int:
        """One key in [0, n): 0 is the hottest."""
        return bisect.bisect_left(self._cum, self._rng.random() * self._total)


class UserWorld:
    """Replicated world image for cluster runs.

    Parameters
    ----------
    gateways:
        Front-end tasks per shard image (principal names ``gw0..``);
        user ids multiplex onto them.
    keys:
        Hot data files (``/tmp/srv/k<i>``), each held open read-write by
        every gateway so data-plane batches are pure fd traffic.
    tags:
        Pre-allocated secrecy tags for labeled requests; identical values
        on every shard because allocation order is identical.
    payload:
        Bytes of seed content per key file.
    """

    def __init__(
        self,
        gateways: int = 16,
        keys: int = 32,
        tags: int = 4,
        payload: int = 64,
    ) -> None:
        self.gateways = gateways
        self.keys = keys
        self.ntags = tags
        self.payload = payload
        #: (gateway name, key index) -> fd, recorded on every build;
        #: deterministic, so any build's map describes all of them.
        self.fd_map: dict[tuple[str, int], int] = {}
        #: Tag values allocated by the last build (same on every shard).
        self.tag_values: list[int] = []

    def principal_for(self, uid: int) -> str:
        return f"gw{uid % self.gateways}"

    def ensure_built(self) -> "UserWorld":
        """Populate ``fd_map``/``tag_values`` by building a throwaway probe
        image — builds are deterministic, so the probe's map describes every
        shard that will ever boot this world."""
        if not self.fd_map:
            from ..osim.cluster import ShardSpec, boot_shard

            boot_shard(self, ShardSpec(0, "edge"))
        return self

    def build(self, kernel) -> dict:
        root = kernel.init_task
        self.tag_values = [
            kernel.tags.alloc(f"zone{i}").value for i in range(self.ntags)
        ]
        kernel.sys_mkdir(root, "/tmp/srv")
        seed = bytes(self.payload)
        for key in range(self.keys):
            fd = kernel.sys_creat(root, f"/tmp/srv/k{key}")
            kernel.sys_write(root, fd, seed)
            kernel.sys_close(root, fd)
        tasks: dict = {}
        for g in range(self.gateways):
            name = f"gw{g}"
            task = kernel.spawn_task(name, user="web")
            for key in range(self.keys):
                self.fd_map[(name, key)] = kernel.sys_open(
                    task, f"/tmp/srv/k{key}", "r+"
                )
            tasks[name] = task
        tasks[root.name] = root
        return tasks


def build_trace(
    world: UserWorld,
    requests: int,
    *,
    users: int = DEFAULT_USERS,
    zipf_s: float = 1.1,
    seed: int = 0,
    ops_per_request: int = 4,
    write_fraction: float = 0.1,
    tainted_fraction: float = 0.0,
) -> list[ClusterRequest]:
    """Compose an open-loop trace: each request picks a user uniformly
    from the id space, a key Zipfian-popularly, and issues a small
    lseek/read (or write) batch against the gateway's open fd.  A
    ``tainted_fraction`` of requests carry one secrecy tag from the
    world's tag set — those exercise the router's tier filter."""
    world.ensure_built()
    rng = random.Random(seed ^ 0x5EED)
    zipf = ZipfianSampler(world.keys, s=zipf_s, seed=seed)
    payload = bytes(16)
    trace: list[ClusterRequest] = []
    for _ in range(requests):
        uid = rng.randrange(users)
        key = zipf.sample()
        principal = world.principal_for(uid)
        fd = world.fd_map[(principal, key)]
        sqes = []
        for _ in range(ops_per_request):
            if rng.random() < write_fraction:
                sqes.append(Sqe("write", fd, payload))
            else:
                sqes.append(Sqe("lseek", fd, 0))
                sqes.append(Sqe("read", fd, 16))
        labels = LabelPair.EMPTY
        if tainted_fraction and rng.random() < tainted_fraction:
            value = world.tag_values[uid % len(world.tag_values)]
            labels = LabelPair(Label.of(Tag(value, f"zone{uid % len(world.tag_values)}")))
        trace.append(ClusterRequest(principal, labels, tuple(sqes)))
    return trace


def open_loop_arrivals(n: int, rate: float, seed: int = 0) -> list[float]:
    """Poisson arrival times (seconds) for ``n`` requests at ``rate``
    requests/second — the open-loop schedule: arrivals never wait for
    completions."""
    rng = random.Random(seed ^ 0xA441)
    t = 0.0
    out: list[float] = []
    for _ in range(n):
        t += rng.expovariate(rate)
        out.append(t)
    return out


def coalesced_plan(
    trace: Sequence[ClusterRequest],
    rate: float,
    *,
    seed: int = 0,
    target_bytes: int = 4096,
    max_wave: int = 64,
) -> dict:
    """Keyword arguments for a coalesced ``Cluster.run_trace`` call:
    an open-loop Poisson arrival schedule for the trace plus an
    :class:`~repro.osim.lamwire.AdaptiveCoalescer` sized for it —
    ``cluster.run_trace(trace, **coalesced_plan(trace, rate))``.  The
    schedule is seeded, so the wave plan (and therefore the framing) is
    reproducible; the merged observables are wave-plan-independent
    either way."""
    from ..osim.lamwire import AdaptiveCoalescer

    return {
        "arrivals": open_loop_arrivals(len(trace), rate, seed=seed),
        "coalescer": AdaptiveCoalescer(
            target_bytes=target_bytes, max_wave=max_wave
        ),
    }


@dataclass
class QueueStats:
    """Latency distribution from one virtual-time queueing replay."""

    rate: float
    latencies: list[float] = field(default_factory=list)

    def percentile(self, p: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        # Nearest-rank percentile.
        idx = min(len(ordered) - 1, max(0, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[idx]

    def summary(self) -> dict:
        return {
            "rate_rps": self.rate,
            "requests": len(self.latencies),
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "max_ms": (max(self.latencies) * 1e3) if self.latencies else 0.0,
        }


def simulate_queueing(
    arrivals: Sequence[float],
    shard_ids: Sequence[int],
    service_s: Sequence[float],
    rate: float,
) -> QueueStats:
    """Replay measured per-request service times through per-shard FIFO
    queues in virtual time: completion = max(arrival, shard free) +
    service; latency = completion − arrival.  Deterministic given its
    inputs, so saturation curves (rate sweeps over the same measured
    services) are reproducible anywhere."""
    free: dict[int, float] = {}
    stats = QueueStats(rate=rate)
    for t, shard, svc in zip(arrivals, shard_ids, service_s):
        start = max(t, free.get(shard, 0.0))
        done = start + svc
        free[shard] = done
        stats.latencies.append(done - t)
    return stats


def saturation_curve(
    shard_ids: Sequence[int],
    service_s: Sequence[float],
    rates: Sequence[float],
    seed: int = 0,
) -> list[dict]:
    """Sweep arrival rates over the same measured service times: the
    open-loop saturation curve (latency blows up past capacity)."""
    out = []
    for rate in rates:
        arrivals = open_loop_arrivals(len(service_s), rate, seed=seed)
        out.append(simulate_queueing(arrivals, shard_ids, service_s, rate).summary())
    return out
