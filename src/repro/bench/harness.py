"""Measurement and reporting helpers shared by the benchmark modules.

The paper's methodology (Section 6): run each experiment multiple times,
take the median (compilation decisions are nondeterministic there; timer
jitter is the issue here), and normalize everything to the unmodified
system.  These helpers reproduce that: :func:`median_seconds` for timing,
:func:`overhead_pct` for normalization, and small fixed-width table
renderers so each benchmark prints rows shaped like the paper's tables.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

DEFAULT_TRIALS = 5


def median_seconds(
    fn: Callable[[], object],
    trials: int = DEFAULT_TRIALS,
    warmup: int = 1,
) -> float:
    """Median wall-clock seconds of ``fn`` over ``trials`` runs.

    A warm-up run (the paper's first iteration "includes compilation")
    precedes measurement, and the collector is quiesced around each timed
    run so allocation-heavy workloads aren't charged for GC debt created
    by a previous one.
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(trials):
        gc.collect()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def overhead_pct(baseline: float, measured: float) -> float:
    """Percentage overhead of ``measured`` relative to ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline time must be positive")
    return (measured / baseline - 1.0) * 100.0


@dataclass
class Row:
    """One line of a paper-shaped comparison table."""

    name: str
    baseline: float
    measured: float
    paper_pct: float | None = None

    @property
    def pct(self) -> float:
        return overhead_pct(self.baseline, self.measured)


def render_table(
    title: str,
    rows: Sequence[Row],
    baseline_label: str = "vanilla",
    measured_label: str = "laminar",
    unit: str = "s",
) -> str:
    """Fixed-width table: name, baseline, measured, % overhead, and the
    paper's number when supplied — the rows a reader compares against the
    publication."""
    lines = [title, "=" * len(title)]
    header = (
        f"{'benchmark':<18} {baseline_label + ' (' + unit + ')':>14} "
        f"{measured_label + ' (' + unit + ')':>14} {'overhead':>9} {'paper':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        paper = f"{row.paper_pct:5.1f}%" if row.paper_pct is not None else "    --"
        lines.append(
            f"{row.name:<18} {row.baseline:>14.6f} {row.measured:>14.6f} "
            f"{row.pct:>8.1f}% {paper:>7}"
        )
    return "\n".join(lines)


def fastpath_snapshot() -> dict[str, int | bool]:
    """Counter + flag state of every :mod:`repro.core.fastpath` cache
    layer, for embedding in ``BENCH_*.json`` payloads — every published
    measurement records how much of it the caches absorbed."""
    from ..core import fastpath

    out: dict[str, int | bool] = dict(fastpath.counters.snapshot())
    out.update({f"flag_{k}": v for k, v in vars(fastpath.flags).items()})
    return out


def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("no values")
    return statistics.geometric_mean(vals)


def render_breakdown(
    title: str, components: dict[str, float], total: float
) -> str:
    """Render a Fig. 9-style stacked breakdown as percentages of total."""
    lines = [title, "=" * len(title)]
    for name, value in components.items():
        share = 100.0 * value / total if total > 0 else 0.0
        bar = "#" * max(0, int(share / 2))
        lines.append(f"{name:<22} {value:>10.6f}s {share:>6.1f}%  {bar}")
    lines.append(f"{'total':<22} {total:>10.6f}s")
    return "\n".join(lines)
