"""Benchmark substrate: workload generators, lmbench rows, and the
measurement/normalization harness.  The actual table/figure benchmarks
live in the top-level ``benchmarks/`` directory; this package is the
library they share."""

from .harness import (
    DEFAULT_TRIALS,
    Row,
    fastpath_snapshot,
    geometric_mean,
    median_seconds,
    overhead_pct,
    render_breakdown,
    render_table,
)
from .loadgen import (
    DEFAULT_USERS,
    QueueStats,
    UserWorld,
    ZipfianSampler,
    build_trace,
    open_loop_arrivals,
    saturation_curve,
    simulate_queueing,
)
from .lmbench import (
    LMBENCH_EXTENDED_ROWS,
    LMBENCH_ROWS,
    PAPER_TABLE2_OVERHEAD_PCT,
    setup_tree,
)
from .workloads import ALL_WORKLOADS, DACAPO_LIKE, PSEUDOJBB, setup_os_server

__all__ = [
    "ALL_WORKLOADS",
    "DACAPO_LIKE",
    "DEFAULT_TRIALS",
    "DEFAULT_USERS",
    "QueueStats",
    "UserWorld",
    "ZipfianSampler",
    "build_trace",
    "open_loop_arrivals",
    "saturation_curve",
    "simulate_queueing",
    "LMBENCH_EXTENDED_ROWS",
    "LMBENCH_ROWS",
    "PAPER_TABLE2_OVERHEAD_PCT",
    "PSEUDOJBB",
    "Row",
    "fastpath_snapshot",
    "geometric_mean",
    "median_seconds",
    "overhead_pct",
    "render_breakdown",
    "render_table",
    "setup_os_server",
    "setup_tree",
]
