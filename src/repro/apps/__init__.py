"""The four case-study applications of Section 7.

Each app exists in two variants that run the same deterministic workload:

* *Unmodified* — the original's ad-hoc security (scattered conditionals,
  direct data inspection, including the flaws the paper calls out);
* *Laminar* — the retrofit: labels on the key data structures, security
  regions around the narrow interfaces that touch them.

============  ====================  ===============================  =========
App           Protected data        Policy mechanism                 Paper §
============  ====================  ===============================  =========
GradeSheet    student grades        per-student secrecy tags +       7.1
                                    per-project integrity tags
Battleship    ship locations        per-player secrecy tag,          7.2
                                    owner-only declassification
Calendar      schedules             per-user secrecy tags on files   7.3
                                    and parsed data; scheduler
                                    declassifies selectively
FreeCS        membership props      roles as integrity tags on the   7.4
                                    ban list and group state
============  ====================  ===============================  =========
"""

from .battleship import LaminarBattleship, UnmodifiedBattleship
from .calendar_app import LaminarCalendar, UnmodifiedCalendar
from .freecs import ChatDenied, LaminarFreeCS, UnmodifiedFreeCS, run_request_mix
from .gradesheet import AccessDenied, LaminarGradeSheet, UnmodifiedGradeSheet

__all__ = [
    "AccessDenied",
    "ChatDenied",
    "LaminarBattleship",
    "LaminarCalendar",
    "LaminarFreeCS",
    "LaminarGradeSheet",
    "UnmodifiedBattleship",
    "UnmodifiedCalendar",
    "UnmodifiedFreeCS",
    "UnmodifiedGradeSheet",
    "run_request_mix",
]
