"""GradeSheet (Section 7.1): grade management under the Table 4 policy.

The data structure is a two-dimensional array ``GradeCell``; cell (i, j)
holds student *i*'s mark for project *j* and is guarded by secrecy tag
``s_i`` and integrity tag ``p_j``.  Table 4's security sets:

====================  ==========================================
Principal             Capabilities
====================  ==========================================
Student *i*           ``s_i+``, ``s_i-``
TA *j*                ``s_i+`` for all *i*; ``p_j+``, ``p_j-``
Professor             everything
====================  ==========================================

The policy this encodes: (1) the professor reads/writes any cell; (2) a TA
reads all marks but modifies only cells of the project she grades (the
integrity tag blocks other writes); (3) a student views only her own marks,
for any project.

"Interestingly, Laminar found an information leak in the original policy":
letting a student compute a class average over a project reveals the other
students' marks.  In :class:`LaminarGradeSheet`, only the professor — who
holds every ``s_i-`` — can compute and declassify the average; a student
attempting it fails at region entry.

Two implementations share :class:`GradeSheetBase`'s workload driver:

* :class:`UnmodifiedGradeSheet` — the original ad-hoc ``if role ==``
  checks (including the leaky average).
* :class:`LaminarGradeSheet` — labels and security regions on the Laminar
  runtime.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core import (
    CapabilitySet,
    IFCViolation,
    Label,
    LabelPair,
    Tag,
)
from ..osim.kernel import Kernel
from ..runtime.api import LaminarAPI
from ..runtime.barriers import BarrierMode
from ..runtime.objects import LabeledObject
from ..runtime.vm import LaminarVM


class AccessDenied(Exception):
    """The unmodified application's ad-hoc denial (so both variants raise a
    common type for the drivers; Laminar raises it from catch blocks)."""


class GradeSheetBase:
    """Shared workload driver: a deterministic query mix over the sheet."""

    def __init__(self, students: int, projects: int) -> None:
        self.students = students
        self.projects = projects

    # subclasses implement:
    def read_grade(self, who: str, student: int, project: int) -> Optional[int]:
        raise NotImplementedError

    def write_grade(self, who: str, student: int, project: int, mark: int) -> None:
        raise NotImplementedError

    def project_average(self, who: str, project: int) -> float:
        raise NotImplementedError

    def serve_request(self) -> None:
        """Per-query connection handling (request parse + response write),
        identical in both variants so the Fig. 9 comparison divides out the
        serving substrate the way the paper's same-JVM setup does."""

    # -- the benchmark query mix -------------------------------------------------

    def run_query_mix(self, queries: int, seed: int = 11) -> dict[str, int]:
        """The server's query stream: mostly student reads, some TA grading,
        occasional professor activity.  Returns outcome counts."""
        rng = random.Random(seed)
        outcomes = {"reads": 0, "writes": 0, "averages": 0, "denied": 0}
        for q in range(queries):
            student = rng.randrange(self.students)
            project = rng.randrange(self.projects)
            roll = rng.random()
            self.serve_request()
            try:
                if roll < 0.70:
                    self.read_grade(f"student{student}", student, project)
                    outcomes["reads"] += 1
                elif roll < 0.90:
                    ta = project  # TA j grades project j
                    self.write_grade(
                        f"ta{ta}", student, ta, rng.randrange(0, 101)
                    )
                    outcomes["writes"] += 1
                elif roll < 0.97:
                    self.read_grade(f"ta{project}", student, project)
                    outcomes["reads"] += 1
                else:
                    self.project_average("professor", project)
                    outcomes["averages"] += 1
            except AccessDenied:
                outcomes["denied"] += 1
        return outcomes


class UnmodifiedGradeSheet(GradeSheetBase):
    """The original program: roles checked with sprinkled conditionals.

    Faithfully includes the leak Laminar found — any student may call
    :meth:`project_average`, which reads every student's mark.
    """

    def __init__(self, students: int = 30, projects: int = 4) -> None:
        from ..osim.lsm import NullSecurityModule

        super().__init__(students, projects)
        self.cells = [[0] * projects for _ in range(students)]
        rng = random.Random(7)
        for i in range(students):
            for j in range(projects):
                self.cells[i][j] = rng.randrange(0, 101)
        self.kernel = Kernel(NullSecurityModule())
        self._task = self.kernel.spawn_task("gradesheet-server")
        self._zero = self.kernel.sys_open(self._task, "/dev/zero", "r")
        self._null = self.kernel.sys_open(self._task, "/dev/null", "w")

    def serve_request(self) -> None:
        self.kernel.sys_read(self._task, self._zero, 64)
        self.kernel.sys_write(self._task, self._null, b"x" * 64)

    @staticmethod
    def _role(who: str) -> str:
        if who.startswith("student"):
            return "student"
        if who.startswith("ta"):
            return "ta"
        return "professor"

    def read_grade(self, who: str, student: int, project: int) -> Optional[int]:
        role = self._role(who)
        if role == "student" and who != f"student{student}":
            raise AccessDenied(f"{who} may not read student{student}'s marks")
        return self.cells[student][project]

    def write_grade(self, who: str, student: int, project: int, mark: int) -> None:
        role = self._role(who)
        if role == "student":
            raise AccessDenied("students may not write marks")
        if role == "ta" and who != f"ta{project}":
            raise AccessDenied(f"{who} did not grade project {project}")
        self.cells[student][project] = mark

    def project_average(self, who: str, project: int) -> float:
        # The original policy allowed *anyone* to compute this — the leak.
        total = sum(self.cells[i][project] for i in range(self.students))
        return total / self.students


class LaminarGradeSheet(GradeSheetBase):
    """The retrofitted program: ~10% of the code is labels + regions."""

    def __init__(
        self,
        students: int = 30,
        projects: int = 4,
        kernel: Optional[Kernel] = None,
        mode: BarrierMode = BarrierMode.STATIC,
    ) -> None:
        super().__init__(students, projects)
        self.kernel = kernel if kernel is not None else Kernel()
        self.vm = LaminarVM(self.kernel, mode=mode, name="gradesheet")
        self.api = LaminarAPI(self.vm)
        # The professor principal bootstraps all tags (it owns everything).
        self.student_tags: list[Tag] = [
            self.api.create_and_add_capability(f"s{i}") for i in range(students)
        ]
        self.project_tags: list[Tag] = [
            self.api.create_and_add_capability(f"p{j}") for j in range(projects)
        ]
        # Table 4 capability sets.
        self.principal_caps: dict[str, CapabilitySet] = {"professor": (
            CapabilitySet.dual(*self.student_tags, *self.project_tags)
        )}
        for i in range(students):
            self.principal_caps[f"student{i}"] = CapabilitySet.dual(
                self.student_tags[i]
            )
        for j in range(projects):
            self.principal_caps[f"ta{j}"] = CapabilitySet.plus(
                *self.student_tags
            ).union(CapabilitySet.dual(self.project_tags[j]))
        # One kernel thread per principal, holding exactly its Table 4
        # capabilities — region entry checks run against the entering
        # *thread's* capabilities, so the policy is enforced by the entry
        # rules, not by the application.
        self.threads = {
            who: self.vm.create_thread(name=who, caps_subset=caps)
            for who, caps in self.principal_caps.items()
        }
        # GradeCell: heterogeneously labeled matrix of labeled objects —
        # exactly the structure Section 7.5 says OS-granularity systems
        # cannot express.
        self._task = self.vm.main_task
        self._zero = self.kernel.sys_open(self._task, "/dev/zero", "r")
        self._null = self.kernel.sys_open(self._task, "/dev/null", "w")
        self.cells: list[list[LabeledObject]] = []
        rng = random.Random(7)
        creator_caps = self.principal_caps["professor"]
        for i in range(students):
            row = []
            for j in range(projects):
                pair = LabelPair(
                    Label.of(self.student_tags[i]),
                    Label.of(self.project_tags[j]),
                )
                with self.vm.region(
                    secrecy=pair.secrecy, integrity=pair.integrity,
                    caps=creator_caps, name=f"init-cell-{i}-{j}",
                ):
                    cell = self.vm.alloc(
                        {"marks": rng.randrange(0, 101)},
                        labels=pair,
                        name=f"cell{i}.{j}",
                    )
                row.append(cell)
            self.cells.append(row)

    def serve_request(self) -> None:
        self.kernel.sys_read(self._task, self._zero, 64)
        self.kernel.sys_write(self._task, self._null, b"x" * 64)

    # -- helpers ----------------------------------------------------------------

    def _caps(self, who: str) -> CapabilitySet:
        try:
            return self.principal_caps[who]
        except KeyError:
            raise AccessDenied(f"unknown principal {who!r}") from None

    def _thread(self, who: str):
        try:
            return self.threads[who]
        except KeyError:
            raise AccessDenied(f"unknown principal {who!r}") from None

    def _cell_pair(self, student: int, project: int) -> LabelPair:
        return LabelPair(
            Label.of(self.student_tags[student]),
            Label.of(self.project_tags[project]),
        )

    # -- operations ----------------------------------------------------------------

    def read_grade(self, who: str, student: int, project: int) -> Optional[int]:
        caps = self._caps(who)
        pair = self._cell_pair(student, project)
        out: dict[str, int] = {}
        # Reading requires tainting with s_i; anyone lacking s_i+ is
        # rejected at region entry — the Table 4 policy falls out of the
        # entry rules, with no role conditionals anywhere.
        try:
            with self.vm.running(self._thread(who)):
                with self.vm.region(
                    secrecy=pair.secrecy, caps=caps, name=f"read-{who}"
                ):
                    out["marks"] = self.cells[student][project].get("marks")
        except IFCViolation as exc:
            raise AccessDenied(str(exc)) from exc
        if "marks" not in out:
            raise AccessDenied(f"{who} could not read cell {student},{project}")
        return out["marks"]

    def write_grade(self, who: str, student: int, project: int, mark: int) -> None:
        caps = self._caps(who)
        pair = self._cell_pair(student, project)
        wrote: dict[str, bool] = {}
        # Writing needs the cell's integrity tag p_j: the write flows from
        # the thread to the cell, so I_cell ⊆ I_thread must hold.
        try:
            with self.vm.running(self._thread(who)):
                with self.vm.region(
                    secrecy=pair.secrecy,
                    integrity=pair.integrity,
                    caps=caps,
                    name=f"write-{who}",
                ):
                    self.cells[student][project].set("marks", mark)
                    wrote["ok"] = True
        except IFCViolation as exc:
            raise AccessDenied(str(exc)) from exc
        if not wrote:
            raise AccessDenied(f"{who} could not write cell {student},{project}")

    def project_average(self, who: str, project: int) -> float:
        caps = self._caps(who)
        all_secrecy = Label.of(*self.student_tags)
        result: dict[str, float] = {}
        failure: list[BaseException] = []

        def catch(exc: BaseException) -> None:
            failure.append(exc)

        try:
            # Reading every student's cell taints the thread with every
            # s_i; declassifying the average then needs every s_i-.  Only
            # the professor can even *enter* this region (needs all s_i+).
            with self.vm.running(self._thread(who)):
                with self.vm.region(
                    secrecy=all_secrecy, caps=caps, catch=catch,
                    name=f"average-{who}",
                ):
                    total = 0
                    for i in range(self.students):
                        total += self.cells[i][project].get("marks")
                    summed = self.vm.alloc(
                        {"value": total / self.students}, name="avg"
                    )
                    with self.vm.region(caps=caps, name="declassify-average"):
                        declassified = self.api.copy_and_label(summed)
                        result["avg"] = declassified.get("value")
        except IFCViolation as exc:
            raise AccessDenied(str(exc)) from exc
        if failure or "avg" not in result:
            raise AccessDenied(
                f"{who} may not declassify the project {project} average"
            )
        return result["avg"]
