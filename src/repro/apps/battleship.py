"""Battleship (Section 7.2): secret boards, declassified shot results.

Each player ``P_i`` allocates a tag ``p_i`` and labels her board and ships
with it; the ``p_i-`` capability is never given to anyone else, so only
the player can declassify the locations of her ships.

In the original JavaBattle-style implementation players *directly inspect*
the coordinates of a shot on the opponent's board — the opponent's data
structure is simply readable.  Under Laminar, a player sends her guess to
the opponent, who updates his own board **inside a security region**, then
declassifies only the single hit/miss bit via ``copyAndLabel`` and sends
that back.

The game driver is deterministic (seeded placements and a seeded
shot-selection strategy) so the unmodified and Laminar variants play the
identical game, which is what the Fig. 9 benchmark compares.  The paper
plays on a 15×15 grid without a GUI, spending ~54% of the time inside
security regions — the highest of the four apps, hence its 56% overhead.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core import CapabilitySet, Label, LabelPair, Tag
from ..osim.kernel import Kernel
from ..runtime.api import LaminarAPI
from ..runtime.barriers import BarrierMode
from ..runtime.vm import LaminarVM

#: The paper's board size.
DEFAULT_GRID = 15
#: Classic fleet: lengths of the ships each player places.
DEFAULT_FLEET = (5, 4, 3, 3, 2)


def place_fleet(
    grid: int, fleet: tuple[int, ...], rng: random.Random
) -> set[tuple[int, int]]:
    """Deterministically place ships; returns the set of occupied cells."""
    occupied: set[tuple[int, int]] = set()
    for length in fleet:
        while True:
            horizontal = rng.random() < 0.5
            if horizontal:
                row = rng.randrange(grid)
                col = rng.randrange(grid - length + 1)
                cells = {(row, col + k) for k in range(length)}
            else:
                row = rng.randrange(grid - length + 1)
                col = rng.randrange(grid)
                cells = {(row + k, col) for k in range(length)}
            if not cells & occupied:
                occupied |= cells
                break
    return occupied


def render_tracking_board(
    grid: int, tried: set[tuple[int, int]], hits: set[tuple[int, int]]
) -> str:
    """Render a player's tracking board as text — the per-move display the
    paper re-enables to show Battleship's overhead dropping from 56% to 1%
    ("In an experiment where we display the shot location after each move,
    the run time increases, and Laminar overhead drops to 1%")."""
    lines = []
    header = "   " + " ".join(f"{c:2d}" for c in range(grid))
    lines.append(header)
    for row in range(grid):
        cells = []
        for col in range(grid):
            if (row, col) in hits:
                cells.append(" X")
            elif (row, col) in tried:
                cells.append(" o")
            else:
                cells.append(" .")
        lines.append(f"{row:2d} " + " ".join(cells))
    return "\n".join(lines)


class ShotStrategy:
    """A seeded shot sequence: every untried cell in shuffled order, with
    simple hunt behavior (try neighbors after a hit)."""

    def __init__(self, grid: int, rng: random.Random) -> None:
        self.grid = grid
        cells = [(r, c) for r in range(grid) for c in range(grid)]
        rng.shuffle(cells)
        self._queue = cells
        self._tried: set[tuple[int, int]] = set()
        self._hunt: list[tuple[int, int]] = []

    def next_shot(self) -> tuple[int, int]:
        while self._hunt:
            cell = self._hunt.pop()
            if cell not in self._tried:
                self._tried.add(cell)
                return cell
        while True:
            cell = self._queue.pop()
            if cell not in self._tried:
                self._tried.add(cell)
                return cell

    def feedback(self, cell: tuple[int, int], hit: bool) -> None:
        if not hit:
            return
        row, col = cell
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nr, nc = row + dr, col + dc
            if 0 <= nr < self.grid and 0 <= nc < self.grid:
                self._hunt.append((nr, nc))


class UnmodifiedBattleship:
    """The original game: each player reads the opponent's board directly."""

    def __init__(
        self,
        grid: int = DEFAULT_GRID,
        fleet: tuple[int, ...] = DEFAULT_FLEET,
        seed: int = 3,
        render: bool = False,
    ) -> None:
        from ..osim.lsm import NullSecurityModule

        rng = random.Random(seed)
        self.grid = grid
        self.render = render
        self.frames_rendered = 0
        self.ships = [place_fleet(grid, fleet, rng) for _ in range(2)]
        self.hits: list[set[tuple[int, int]]] = [set(), set()]
        self.strategies = [ShotStrategy(grid, rng) for _ in range(2)]
        self.rounds = 0
        # The wire protocol both variants share: guesses and verdicts move
        # between the players over OS pipes (the original is a networked
        # two-player game).
        self.kernel = Kernel(NullSecurityModule())
        self.task = self.kernel.spawn_task("battleship")
        self._rfd, self._wfd = self.kernel.sys_pipe(self.task)

    def _exchange(self, message: bytes) -> bytes:
        self.kernel.sys_write(self.task, self._wfd, message)
        return self.kernel.sys_read(self.task, self._rfd)

    def shoot(self, player: int, cell: tuple[int, int]) -> bool:
        opponent = 1 - player
        # Send the guess over the wire...
        self._exchange(f"{cell[0]},{cell[1]}".encode())
        # ...but evaluate it by *directly inspecting* the opponent's secret
        # data structure — the original's sin.
        hit = cell in self.ships[opponent]
        if hit:
            self.hits[opponent].add(cell)
        self._exchange(b"hit" if hit else b"miss")
        return hit

    def play(self) -> int:
        """Play to completion; returns the winning player (0 or 1)."""
        player = 0
        tracking: list[tuple[set, set]] = [(set(), set()), (set(), set())]
        while True:
            self.rounds += 1
            strategy = self.strategies[player]
            cell = strategy.next_shot()
            hit = self.shoot(player, cell)
            strategy.feedback(cell, hit)
            tried, known_hits = tracking[player]
            tried.add(cell)
            if hit:
                known_hits.add(cell)
            if self.render:
                render_tracking_board(self.grid, tried, known_hits)
                self.frames_rendered += 1
            opponent = 1 - player
            if self.hits[opponent] >= self.ships[opponent]:
                return player
            player = opponent


class LaminarBattleship:
    """The retrofitted game (<100 added lines in the paper).

    Boards live in labeled objects; shot evaluation runs in a security
    region tainted with the *board owner's* tag, and only the one-bit
    result is declassified by the owner, who holds ``p_i-``.
    """

    def __init__(
        self,
        grid: int = DEFAULT_GRID,
        fleet: tuple[int, ...] = DEFAULT_FLEET,
        seed: int = 3,
        kernel: Optional[Kernel] = None,
        mode: BarrierMode = BarrierMode.STATIC,
        render: bool = False,
    ) -> None:
        rng = random.Random(seed)
        self.grid = grid
        self.render = render
        self.frames_rendered = 0
        self.kernel = kernel if kernel is not None else Kernel()
        self.vm = LaminarVM(self.kernel, mode=mode, name="battleship")
        self.api = LaminarAPI(self.vm)
        self.rounds = 0
        # Each player allocates her own tag; p_i- is never shared.
        self.tags: list[Tag] = [
            self.api.create_and_add_capability(f"p{i}") for i in range(2)
        ]
        self.player_caps = [
            CapabilitySet.dual(self.tags[0]).union(CapabilitySet.plus(self.tags[1])),
            CapabilitySet.dual(self.tags[1]).union(CapabilitySet.plus(self.tags[0])),
        ]
        self.threads = [
            self.vm.create_thread(name=f"player{i}", caps_subset=self.player_caps[i])
            for i in range(2)
        ]
        # Labeled boards: a dict-of-cells object per player, plus a labeled
        # hit counter (both carry the owner's secrecy tag).
        self.boards = []
        self.counters = []
        for i in range(2):
            pair = LabelPair(Label.of(self.tags[i]))
            cells = place_fleet(grid, fleet, rng)
            with self.vm.running(self.threads[i]):
                with self.vm.region(
                    secrecy=pair.secrecy,
                    caps=self.player_caps[i],
                    name=f"place-{i}",
                ):
                    board = self.vm.alloc(
                        {"ships": cells, "hits": set()},
                        labels=pair,
                        name=f"board{i}",
                    )
                    counter = self.vm.alloc(
                        {"remaining": len(cells)}, labels=pair, name=f"left{i}"
                    )
            self.boards.append(board)
            self.counters.append(counter)
        self.strategies = [ShotStrategy(grid, rng) for _ in range(2)]
        # The same wire protocol as the unmodified game; guesses and
        # declassified verdicts are public, so the pipe is unlabeled and
        # used outside regions.
        self._rfd, self._wfd = self.kernel.sys_pipe(self.vm.main_task)

    def _exchange(self, message: bytes) -> bytes:
        self.kernel.sys_write(self.vm.main_task, self._wfd, message)
        return self.kernel.sys_read(self.vm.main_task, self._rfd)

    # -- one round -----------------------------------------------------------

    def shoot(self, shooter: int, cell: tuple[int, int]) -> bool:
        """The DIFC protocol: the *owner* evaluates the shot on his own
        board inside a region tainted with his tag, then declassifies the
        single-bit result with his ``p_owner-`` capability."""
        owner = 1 - shooter
        owner_tag = self.tags[owner]
        result_box: dict[str, bool] = {}
        # The guess travels to the owner over the wire (it is the
        # shooter's own public data).
        self._exchange(f"{cell[0]},{cell[1]}".encode())
        with self.vm.running(self.threads[owner]):
            with self.vm.region(
                secrecy=Label.of(owner_tag),
                caps=self.player_caps[owner],
                name=f"evaluate-{owner}",
            ):
                board = self.boards[owner]
                ships = board.get("ships")
                hits = board.get("hits")
                hit = cell in ships and cell not in hits
                if hit:
                    hits.add(cell)
                    board.set("hits", hits)
                    counter = self.counters[owner]
                    counter.set("remaining", counter.get("remaining") - 1)
                verdict = self.vm.alloc({"hit": hit}, name="verdict")
                # Declassify exactly one bit: the owner holds p_owner-.
                with self.vm.region(
                    caps=self.player_caps[owner], name=f"declassify-{owner}"
                ):
                    public = self.api.copy_and_label(verdict)
                    result_box["hit"] = public.get("hit")
        # ...and the declassified verdict travels back.
        self._exchange(b"hit" if result_box["hit"] else b"miss")
        return result_box["hit"]

    def sunk_all(self, owner: int) -> bool:
        """The owner checks (and declassifies) whether his fleet is gone."""
        box: dict[str, bool] = {}
        with self.vm.running(self.threads[owner]):
            with self.vm.region(
                secrecy=Label.of(self.tags[owner]),
                caps=self.player_caps[owner],
                name=f"check-{owner}",
            ):
                remaining = self.counters[owner].get("remaining")
                flag = self.vm.alloc({"done": remaining == 0}, name="done")
                with self.vm.region(
                    caps=self.player_caps[owner], name=f"declassify-done-{owner}"
                ):
                    public = self.api.copy_and_label(flag)
                    box["done"] = public.get("done")
        return box["done"]

    def peek_opponent_board(self, spy: int) -> set[tuple[int, int]]:
        """What the *unmodified* game does — direct inspection.  Under
        Laminar this must fail; the feature test asserts it raises."""
        opponent = 1 - spy
        with self.vm.running(self.threads[spy]):
            return self.boards[opponent].get("ships")

    def play(self) -> int:
        player = 0
        tracking: list[tuple[set, set]] = [(set(), set()), (set(), set())]
        while True:
            self.rounds += 1
            strategy = self.strategies[player]
            cell = strategy.next_shot()
            hit = self.shoot(player, cell)
            strategy.feedback(cell, hit)
            tried, known_hits = tracking[player]
            tried.add(cell)
            if hit:
                known_hits.add(cell)
            if self.render:
                # The tracking board is the shooter's *own* knowledge
                # (declassified bits), so rendering needs no region.
                render_tracking_board(self.grid, tried, known_hits)
                self.frames_rendered += 1
            opponent = 1 - player
            if self.sunk_all(opponent):
                return player
            player = opponent
