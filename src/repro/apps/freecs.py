"""FreeCS chat server (Section 7.4): role checks become integrity labels.

The original FreeCS implements its security policy as an authorization
framework of ``if..then`` role checks scattered over 47 commands ("a user
who is in the role of a VIP and has superuser power on a group can ban
another user").  The paper's retrofit localizes all checks in the ``Group``
and ``User`` classes:

* a role maps onto an integrity tag — ``vip`` for the server-wide VIP role
  and one ``su(g)`` tag per group for that group's superuser power;
* sensitive group state (the ban list, the theme) is protected by those
  integrity tags, so only a principal that can *endorse* with both tags can
  write the ban list — the role conditionals disappear into the DIFC
  write rule;
* the authentication module grants users their role capabilities at login.

Both variants implement the same command set (a representative subset of
FreeCS's 47), and the benchmark drives the paper's workload: "requests
from 4,000 users, each invoking three different commands."
"""

from __future__ import annotations

import random
from typing import Optional

from ..core import (
    CapabilitySet,
    IFCViolation,
    Label,
    LabelPair,
    Tag,
)
from ..osim.kernel import Kernel
from ..runtime.api import LaminarAPI
from ..runtime.barriers import BarrierMode
from ..runtime.objects import LabeledObject
from ..runtime.vm import LaminarVM


class ChatDenied(Exception):
    """Command rejected (both variants raise this)."""


#: The command names both variants understand.
COMMANDS = (
    "say", "whisper", "join", "leave", "theme", "ban", "unban", "invite",
    "who", "topic",
)


class UnmodifiedFreeCS:
    """The original server: authorization as scattered role conditionals.

    Runs on the same simulated OS as the Laminar variant (Null security
    module): each login is a connection handled by its own kernel thread,
    and each command costs one request/response round trip — the common
    substrate the Fig. 9 normalization divides out."""

    def __init__(self, kernel: Optional[Kernel] = None) -> None:
        from ..osim.lsm import NullSecurityModule

        self.users: dict[str, dict] = {}
        self.groups: dict[str, dict] = {}
        self.messages: list[tuple[str, str, str]] = []
        self.kernel = kernel if kernel is not None else Kernel(NullSecurityModule())
        self._server = self.kernel.spawn_task("freecs-server")
        self._zero = self.kernel.sys_open(self._server, "/dev/zero", "r")
        self._null = self.kernel.sys_open(self._server, "/dev/null", "w")

    def _serve_io(self) -> None:
        self.kernel.sys_read(self._server, self._zero, 64)
        self.kernel.sys_write(self._server, self._null, b"x" * 64)

    # -- accounts ----------------------------------------------------------------

    def login(self, user: str, vip: bool = False) -> None:
        self.kernel.sys_spawn_thread(self._server)
        self.users[user] = {"vip": vip, "groups": set(), "su": set()}

    def create_group(self, owner: str, group: str) -> None:
        self.groups[group] = {
            "members": {owner},
            "banned": set(),
            "theme": "default",
            "topic": "",
        }
        self.users[owner]["groups"].add(group)
        self.users[owner]["su"].add(group)

    # -- commands -------------------------------------------------------------------

    def command(self, user: str, name: str, group: str, arg: str = "") -> Optional[str]:
        self._serve_io()
        u = self.users[user]
        g = self.groups[group]
        if name == "say":
            if group not in u["groups"]:
                raise ChatDenied(f"{user} not in {group}")
            self.messages.append((user, group, arg))
            return None
        if name == "whisper":
            self.messages.append((user, group, f"(whisper) {arg}"))
            return None
        if name == "join":
            if user in g["banned"]:
                raise ChatDenied(f"{user} is banned from {group}")
            g["members"].add(user)
            u["groups"].add(group)
            return None
        if name == "leave":
            g["members"].discard(user)
            u["groups"].discard(group)
            return None
        if name == "theme":
            # if..then role check: superuser only.
            if group not in u["su"]:
                raise ChatDenied(f"{user} lacks superuser on {group}")
            g["theme"] = arg
            return None
        if name == "ban":
            # The policy of the paper's example: VIP *and* superuser.
            if not (u["vip"] and group in u["su"]):
                raise ChatDenied(f"{user} may not ban in {group}")
            g["banned"].add(arg)
            g["members"].discard(arg)
            return None
        if name == "unban":
            if not (u["vip"] and group in u["su"]):
                raise ChatDenied(f"{user} may not unban in {group}")
            g["banned"].discard(arg)
            return None
        if name == "invite":
            if group not in u["groups"]:
                raise ChatDenied(f"{user} not in {group}")
            if arg in g["banned"]:
                raise ChatDenied(f"{arg} is banned from {group}")
            g["members"].add(arg)
            self.users[arg]["groups"].add(group)
            return None
        if name == "who":
            return ",".join(sorted(g["members"]))
        if name == "topic":
            g["topic"] = arg
            return None
        raise ChatDenied(f"unknown command {name}")


class LaminarFreeCS:
    """The retrofitted server: membership state in labeled objects, role
    power expressed as integrity-tag capabilities."""

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        mode: BarrierMode = BarrierMode.STATIC,
    ) -> None:
        self.kernel = kernel if kernel is not None else Kernel()
        self.vm = LaminarVM(self.kernel, mode=mode, name="freecs")
        self.api = LaminarAPI(self.vm)
        #: The server-wide VIP role tag.
        self.vip_tag: Tag = self.api.create_and_add_capability("vip")
        #: group -> its superuser tag.
        self.su_tags: dict[str, Tag] = {}
        self.users: dict[str, dict] = {}
        self.groups: dict[str, LabeledObject] = {}
        #: Unprotected chat traffic (say/whisper write here, label-free).
        self.messages: list[tuple[str, str, str]] = []
        #: The server's own worker thread: it performs membership updates
        #: on users' behalf, so it accumulates su+ for every group (but is
        #: never VIP — it cannot touch ban lists).
        self.server_thread = self.vm.create_thread(name="server-worker")
        self._zero = self.kernel.sys_open(self.vm.main_task, "/dev/zero", "r")
        self._null = self.kernel.sys_open(self.vm.main_task, "/dev/null", "w")

    def _serve_io(self) -> None:
        self.kernel.sys_read(self.vm.main_task, self._zero, 64)
        self.kernel.sys_write(self.vm.main_task, self._null, b"x" * 64)

    # -- authentication: capability grants at login (Section 7.4) ------------------

    def login(self, user: str, vip: bool = False) -> None:
        caps = CapabilitySet.plus(self.vip_tag) if vip else CapabilitySet.EMPTY
        thread = self.vm.create_thread(name=user, caps_subset=caps)
        self.users[user] = {"thread": thread, "vip": vip, "groups": set()}

    def _grant_su(self, user: str, group: str) -> None:
        """Give a user superuser power on a group: the kernel-mediated
        capability grant replaces the role bit."""
        tag = self.su_tags[group]
        self.users[user]["thread"].gain_capabilities(CapabilitySet.plus(tag))

    def create_group(self, owner: str, group: str) -> None:
        su_tag = self.api.create_and_add_capability(f"su:{group}")
        self.su_tags[group] = su_tag
        # The ban list and theme are protected by {I(vip), I(su_g)}: a write
        # must be endorsed with both tags, so only VIP+superuser can ban —
        # the paper's exact example.  Membership/topic carry only I(su_g).
        admin_pair = LabelPair(
            Label.EMPTY, Label.of(self.vip_tag, su_tag)
        )
        member_pair = LabelPair(Label.EMPTY, Label.of(su_tag))
        with self.vm.region(
            integrity=admin_pair.integrity,
            caps=CapabilitySet.plus(self.vip_tag, su_tag),
            name=f"mkgroup-{group}",
        ):
            banlist = self.vm.alloc(
                {"banned": set()}, labels=admin_pair, name=f"ban:{group}"
            )
        with self.vm.region(
            integrity=member_pair.integrity,
            caps=CapabilitySet.plus(su_tag),
            name=f"mkgroup2-{group}",
        ):
            state = self.vm.alloc(
                {
                    "members": {owner},
                    "theme": "default",
                    "topic": "",
                    "banlist": banlist,
                },
                labels=member_pair,
                name=f"group:{group}",
            )
        self.groups[group] = state
        self.users[owner]["groups"].add(group)
        self._grant_su(owner, group)
        # The server worker maintains membership for this group.
        self.server_thread.gain_capabilities(CapabilitySet.plus(su_tag))

    # -- helpers --------------------------------------------------------------------

    def _read_group(self, user: str, group: str, field: str):
        """Reading group state needs no endorsement (integrity reads flow
        *down* to the unlabeled thread)."""
        state = self.groups[group]
        thread = self.users[user]["thread"]
        out = {}
        with self.vm.running(thread):
            with self.vm.region(caps=thread.capabilities, name=f"read-{group}"):
                out["value"] = state.get(field)
        return out["value"]

    def _write_group(self, thread, group: str, field: str, value) -> None:
        """Write a su-protected field of the group state as ``thread``.
        Entering the region requires the ``su+`` capability; the role
        conditional of the original is gone."""
        state = self.groups[group]
        su_tag = self.su_tags[group]
        wrote = {}
        try:
            with self.vm.running(thread):
                with self.vm.region(
                    integrity=Label.of(su_tag),
                    caps=thread.capabilities,
                    name=f"write-{group}",
                ):
                    state.set(field, value)
                    wrote["ok"] = True
        except IFCViolation as exc:
            raise ChatDenied(str(exc)) from exc
        if not wrote:
            raise ChatDenied(f"{thread.name} may not write {field} of {group}")

    def _write_banlist(self, user: str, group: str, banned: set) -> None:
        """Write the ban list as ``user``: the region needs endorsement
        with *both* the VIP tag and the group's superuser tag, so only a
        VIP superuser can ban — the paper's headline example.

        The banlist object reference is fetched in an unlabeled region
        first (the admin region may not read the lower-integrity group
        state: no read down)."""
        state = self.groups[group]
        su_tag = self.su_tags[group]
        thread = self.users[user]["thread"]
        box = {}
        wrote = {}
        try:
            with self.vm.running(thread):
                with self.vm.region(caps=thread.capabilities, name="fetch"):
                    box["banlist"] = state.get("banlist")
                with self.vm.region(
                    integrity=Label.of(self.vip_tag, su_tag),
                    caps=thread.capabilities,
                    name=f"admin-{group}",
                ):
                    box["banlist"].set("banned", banned)
                    wrote["ok"] = True
        except IFCViolation as exc:
            raise ChatDenied(str(exc)) from exc
        if not wrote:
            raise ChatDenied(f"{user} may not administer {group}")

    # -- commands ----------------------------------------------------------------------

    def command(self, user: str, name: str, group: str, arg: str = "") -> Optional[str]:
        self._serve_io()
        u = self.users[user]
        if name == "say":
            if group not in u["groups"]:
                raise ChatDenied(f"{user} not in {group}")
            self.messages.append((user, group, arg))
            return None
        if name == "whisper":
            self.messages.append((user, group, f"(whisper) {arg}"))
            return None
        if name == "join":
            banlist = self._read_banlist(user, group)
            if user in banlist:
                raise ChatDenied(f"{user} is banned from {group}")
            members = self._read_group(user, group, "members")
            members.add(user)
            # Membership is maintained by the server worker on the user's
            # behalf (it holds su+ for every group); the *policy* check —
            # the ban list — already happened above through labeled data.
            self._write_group(self.server_thread, group, "members", members)
            u["groups"].add(group)
            return None
        if name == "leave":
            members = self._read_group(user, group, "members")
            members.discard(user)
            self._write_group(self.server_thread, group, "members", members)
            u["groups"].discard(group)
            return None
        if name == "theme":
            # Superuser-only: the user's own thread must endorse with su.
            self._write_group(u["thread"], group, "theme", arg)
            return None
        if name == "ban":
            banned = self._read_banlist(user, group)
            banned.add(arg)
            self._write_banlist(user, group, banned)
            members = self._read_group(user, group, "members")
            if arg in members:
                members.discard(arg)
                self._write_group(self.server_thread, group, "members", members)
            if arg in self.users:
                self.users[arg]["groups"].discard(group)
            return None
        if name == "unban":
            banned = self._read_banlist(user, group)
            banned.discard(arg)
            self._write_banlist(user, group, banned)
            return None
        if name == "invite":
            if group not in u["groups"]:
                raise ChatDenied(f"{user} not in {group}")
            banlist = self._read_banlist(user, group)
            if arg in banlist:
                raise ChatDenied(f"{arg} is banned from {group}")
            members = self._read_group(user, group, "members")
            members.add(arg)
            self._write_group(self.server_thread, group, "members", members)
            self.users[arg]["groups"].add(group)
            return None
        if name == "who":
            return ",".join(sorted(self._read_group(user, group, "members")))
        if name == "topic":
            self._write_group(self.server_thread, group, "topic", arg)
            return None
        raise ChatDenied(f"unknown command {name}")

    def _read_banlist(self, user: str, group: str) -> set:
        state = self.groups[group]
        thread = self.users[user]["thread"]
        out = {}
        with self.vm.running(thread):
            with self.vm.region(caps=thread.capabilities, name=f"radm-{group}"):
                out["value"] = set(state.get("banlist").get("banned"))
        return out["value"]


def run_request_mix(
    server, users: int, commands_per_user: int = 3, seed: int = 41
) -> dict[str, int]:
    """The paper's workload: ``users`` users each invoking
    ``commands_per_user`` commands.  VIP+superuser users sprinkle in
    administrative commands; everyone else chats.  Works on either
    variant (same driver, Fig. 9 methodology)."""
    rng = random.Random(seed)
    server.login("root", vip=True)
    server.create_group("root", "lobby")
    outcomes = {"ok": 0, "denied": 0}
    for i in range(users):
        name = f"user{i}"
        vip = i % 50 == 0
        server.login(name, vip=vip)
        try:
            server.command(name, "join", "lobby")
            outcomes["ok"] += 1
        except ChatDenied:
            outcomes["denied"] += 1
        for c in range(commands_per_user - 1):
            roll = rng.random()
            try:
                if roll < 0.6:
                    server.command(name, "say", "lobby", f"hello {c}")
                elif roll < 0.8:
                    server.command(name, "who", "lobby")
                elif roll < 0.9:
                    server.command(name, "whisper", "lobby", "psst")
                elif roll < 0.97:
                    server.command(name, "theme", "lobby", "dark")
                else:
                    server.command(name, "ban", "lobby", f"user{(i + 1) % users}")
                outcomes["ok"] += 1
            except ChatDenied:
                outcomes["denied"] += 1
    return outcomes
