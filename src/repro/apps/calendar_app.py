"""Calendar (Section 7.3): multi-user meeting scheduling over labeled files.

Modeled on the paper's k5nCal retrofit: every user's calendar data — both
the ``.ics`` file on disk and the in-memory data structures parsed from it
— carries the user's secrecy tag.  All functions that touch calendar data
are wrapped in security regions, including the scheduler that finds common
meeting times.  The paper's experiment:

    "Our experiments measure the time to schedule a meeting, which
    includes reading the labeled calendars of Bob and Alice, finding a
    common meeting date, and then writing the date to another labeled
    file that Alice can read.  The scheduling code is executed in a
    thread that has the capability to read data for both Alice and Bob,
    but can only declassify Bob's data.  The output file is protected by
    the label of Alice.  Our experiment schedules 1,000 meetings."

The ``.ics`` wire format here is one busy slot per line (``DAY HH``), which
round-trips through the labeled filesystem like the paper's files round-trip
through ext3 xattrs.

The unmodified variant lets any code read any user's calendar (the paper
disabled exactly this "view other users' calendars" feature).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core import CapabilitySet, IFCViolation, Label, LabelPair, Tag
from ..osim.kernel import Kernel
from ..runtime.api import LaminarAPI
from ..runtime.barriers import BarrierMode
from ..runtime.vm import LaminarVM

DAYS = ("mon", "tue", "wed", "thu", "fri")
HOURS = tuple(range(8, 18))


def random_busy_slots(rng: random.Random, load: float = 0.55) -> set[tuple[str, int]]:
    """A user's busy slots over the work week."""
    return {
        (day, hour)
        for day in DAYS
        for hour in HOURS
        if rng.random() < load
    }


def encode_ics(slots: set[tuple[str, int]]) -> bytes:
    lines = [f"{day} {hour:02d}" for day, hour in sorted(slots)]
    return ("\n".join(lines) + "\n").encode() if lines else b""


def decode_ics(blob: bytes) -> set[tuple[str, int]]:
    slots = set()
    for line in blob.decode().splitlines():
        line = line.strip()
        if not line:
            continue
        day, hour = line.split()
        slots.add((day, int(hour)))
    return slots


def first_common_slot(
    busy_a: set[tuple[str, int]], busy_b: set[tuple[str, int]]
) -> Optional[tuple[str, int]]:
    for day in DAYS:
        for hour in HOURS:
            slot = (day, hour)
            if slot not in busy_a and slot not in busy_b:
                return slot
    return None


class UnmodifiedCalendar:
    """The original multi-user desktop calendar on an unmodified OS: plain
    ``.ics`` files, world-readable — the scheduler (or any user) can view
    anyone's calendar.  Runs on the same simulated kernel as the Laminar
    variant (with the Null security module), so the Fig. 9 comparison
    divides out the common substrate the way the paper's does."""

    def __init__(self, seed: int = 23, kernel: Optional[Kernel] = None) -> None:
        from ..osim.lsm import NullSecurityModule

        self.rng = random.Random(seed)
        self.kernel = kernel if kernel is not None else Kernel(NullSecurityModule())
        self.task = self.kernel.spawn_task("calendar")
        self.kernel.sys_mkdir(self.task, "/tmp/cal")

    def add_user(self, user: str) -> None:
        fd = self.kernel.sys_creat(self.task, f"/tmp/cal/{user}.ics")
        self.kernel.sys_write(self.task, fd, encode_ics(random_busy_slots(self.rng)))
        self.kernel.sys_close(self.task, fd)

    def _read_ics(self, path: str) -> set[tuple[str, int]]:
        fd = self.kernel.sys_open(self.task, path, "r")
        slots = decode_ics(self.kernel.sys_read(self.task, fd))
        self.kernel.sys_close(self.task, fd)
        return slots

    def view_calendar(self, viewer: str, owner: str) -> set[tuple[str, int]]:
        # No checks at all: the feature the paper disabled.
        return self._read_ics(f"/tmp/cal/{owner}.ics")

    def schedule_meeting(self, alice: str, bob: str) -> Optional[tuple[str, int]]:
        busy_a = self._read_ics(f"/tmp/cal/{alice}.ics")
        busy_b = self._read_ics(f"/tmp/cal/{bob}.ics")
        slot = first_common_slot(busy_a, busy_b)
        if slot is not None:
            out = f"/tmp/cal/meeting-{alice}-{bob}.out"
            try:
                fd = self.kernel.sys_creat(self.task, out)
            except Exception:
                fd = self.kernel.sys_open(self.task, out, "w")
            day, hour = slot
            self.kernel.sys_write(self.task, fd, f"{day} {hour:02d}\n".encode())
            self.kernel.sys_close(self.task, fd)
        return slot

    def read_meetings(self, user: str) -> list[tuple[str, int]]:
        slots: list[tuple[str, int]] = []
        for name in list(self.kernel.fs.resolve("/tmp/cal").children):
            if name.startswith(f"meeting-{user}-") and name.endswith(".out"):
                slots.extend(sorted(self._read_ics(f"/tmp/cal/{name}")))
        return slots


class LaminarCalendar:
    """The retrofitted calendar on labeled files and security regions."""

    def __init__(
        self,
        seed: int = 23,
        kernel: Optional[Kernel] = None,
        mode: BarrierMode = BarrierMode.STATIC,
    ) -> None:
        self.rng = random.Random(seed)
        self.kernel = kernel if kernel is not None else Kernel()
        self.vm = LaminarVM(self.kernel, mode=mode, name="calendar")
        self.api = LaminarAPI(self.vm)
        self.tags: dict[str, Tag] = {}
        self.user_caps: dict[str, CapabilitySet] = {}
        #: One kernel thread per user; policy enforcement rests on each
        #: thread holding only its own capabilities.
        self.user_threads: dict[str, object] = {}
        self._scheduler_threads: dict[tuple[str, str], object] = {}
        self.vm.syscall("mkdir", "/tmp/cal")

    # -- user management ------------------------------------------------------------

    def add_user(self, user: str) -> None:
        """Allocate the user's tag, create the labeled ``.ics`` file (while
        still unlabeled — the pre-create discipline of Section 5.2), and
        populate it inside a region."""
        tag = self.api.create_and_add_capability(user)
        self.tags[user] = tag
        self.user_caps[user] = CapabilitySet.dual(tag)
        self.user_threads[user] = self.vm.create_thread(
            name=user, caps_subset=self.user_caps[user]
        )
        pair = LabelPair(Label.of(tag))
        fd = self.api.create_file_labeled(f"/tmp/cal/{user}.ics", pair)
        slots = random_busy_slots(self.rng)
        with self.vm.region(secrecy=pair.secrecy, caps=self.user_caps[user],
                            name=f"populate-{user}"):
            self.api.write(fd, encode_ics(slots))
        self.api.close(fd)

    # -- the feature the paper disabled ------------------------------------------------

    def view_calendar(self, viewer: str, owner: str) -> set[tuple[str, int]]:
        """Only the owner (whose capabilities include her own tag) can view
        her calendar; anyone else fails at region entry or at open."""
        caps = self.user_caps[viewer]
        pair = LabelPair(Label.of(self.tags[owner]))
        out: dict[str, set] = {}
        with self.vm.running(self.user_threads[viewer]):
            with self.vm.region(secrecy=pair.secrecy, caps=caps,
                                name=f"view-{viewer}"):
                fd = self.api.open(f"/tmp/cal/{owner}.ics", "r")
                out["slots"] = decode_ics(self.api.read(fd))
                self.api.close(fd)
        if "slots" not in out:
            raise IFCViolation(f"{viewer} may not view {owner}'s calendar")
        return out["slots"]

    # -- scheduling --------------------------------------------------------------------

    def scheduler_caps(self, alice: str, bob: str) -> CapabilitySet:
        """The paper's scheduler thread: may read both calendars (both plus
        capabilities) but declassify only Bob's (only ``bob-``)."""
        return CapabilitySet.plus(self.tags[alice], self.tags[bob]).union(
            CapabilitySet.minus(self.tags[bob])
        )

    def schedule_meeting(self, alice: str, bob: str) -> Optional[tuple[str, int]]:
        """Read both labeled calendars, find a common slot, write it to an
        output file labeled for Alice.

        The scheduling region is tainted ``{S(a, b)}``; the result file
        carries ``{S(a)}``, so moving the slot there requires dropping
        ``b`` — which the scheduler can do (it holds ``b-``) — while ``a``
        never leaves Alice's label.
        """
        a_tag, b_tag = self.tags[alice], self.tags[bob]
        caps = self.scheduler_caps(alice, bob)
        key = (alice, bob)
        if key not in self._scheduler_threads:
            self._scheduler_threads[key] = self.vm.create_thread(
                name=f"sched-{alice}-{bob}", caps_subset=caps
            )
        sched_thread = self._scheduler_threads[key]
        both = Label.of(a_tag, b_tag)
        alice_pair = LabelPair(Label.of(a_tag))
        # Pre-create the output file before tainting (Section 5.2).
        out_path = f"/tmp/cal/meeting-{alice}-{bob}.out"
        scheduled: dict[str, tuple[str, int]] = {}
        with self.vm.running(sched_thread):
            try:
                out_fd = self.api.create_file_labeled(out_path, alice_pair)
            except Exception:
                out_fd = self.api.open(out_path, "w")
            with self.vm.region(secrecy=both, caps=caps, name="schedule"):
                fd_a = self.api.open(f"/tmp/cal/{alice}.ics", "r")
                busy_a = decode_ics(self.api.read(fd_a))
                self.api.close(fd_a)
                fd_b = self.api.open(f"/tmp/cal/{bob}.ics", "r")
                busy_b = decode_ics(self.api.read(fd_b))
                self.api.close(fd_b)
                slot = first_common_slot(busy_a, busy_b)
                if slot is not None:
                    proposal = self.vm.alloc(
                        {"day": slot[0], "hour": slot[1]}, name="proposal"
                    )
                    # Nested region at {S(a)}: entering drops b (needs b-).
                    with self.vm.region(
                        secrecy=Label.of(a_tag), caps=caps, name="emit"
                    ):
                        for_alice = self.api.copy_and_label(
                            proposal, secrecy=Label.of(a_tag)
                        )
                        day = for_alice.get("day")
                        hour = for_alice.get("hour")
                        self.api.write(out_fd, f"{day} {hour:02d}\n".encode())
                        scheduled["slot"] = (day, hour)
            self.api.close(out_fd)
        return scheduled.get("slot")

    def read_meetings(self, user: str) -> list[tuple[str, int]]:
        """A user reads her own meeting proposals (tainting with her tag)."""
        pair = LabelPair(Label.of(self.tags[user]))
        out: dict[str, list] = {}
        with self.vm.running(self.user_threads[user]):
            with self.vm.region(secrecy=pair.secrecy, caps=self.user_caps[user],
                                name=f"inbox-{user}"):
                slots: list[tuple[str, int]] = []
                for name in list(self.kernel.fs.resolve("/tmp/cal").children):
                    if name.startswith(f"meeting-{user}-") and name.endswith(".out"):
                        fd = self.api.open(f"/tmp/cal/{name}", "r")
                        slots.extend(sorted(decode_ics(self.api.read(fd))))
                        self.api.close(fd)
                out["slots"] = slots
        return out.get("slots", [])
