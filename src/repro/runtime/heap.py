"""The VM heap and its labeled object space.

The paper's JVM "allocates labeled objects into a separate labeled object
space in the heap, allowing instrumentation to quickly check whether an
object is labeled", and "adds two words to each object's header, which
point to secrecy and integrity labels" (Section 5.1).

:class:`Heap` reproduces both decisions:

* every allocation returns an :class:`ObjectHeader` whose two label slots
  point at shared immutable :class:`~repro.core.Label` objects, and
* labeled allocations are additionally registered in the *labeled space*
  (an identity set), so ``is_labeled`` is a single set-membership test —
  the fast path the out-of-region barrier relies on.

Allocation statistics feed the Fig. 9 "Alloc barriers" overhead component.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core import Label, LabelPair


@dataclass
class HeapStats:
    """Counters the bench harness reads."""

    allocations: int = 0
    labeled_allocations: int = 0
    label_words_written: int = 0

    def reset(self) -> None:
        self.allocations = 0
        self.labeled_allocations = 0
        self.label_words_written = 0


class ObjectHeader:
    """Per-object VM metadata: the two label words of Section 5.1.

    The :class:`~repro.core.LabelPair` view is stored, not rebuilt per
    access: ``header.labels`` sits under every barrier check, and labels
    only ever change through :meth:`Heap.label_fresh` (before the object
    escapes its allocation), which refreshes the stored pair.
    """

    __slots__ = ("oid", "secrecy", "integrity", "labels")

    _oid_counter = itertools.count(1)

    def __init__(self, labels: LabelPair) -> None:
        self.oid = next(self._oid_counter)
        self.secrecy: Label = labels.secrecy
        self.integrity: Label = labels.integrity
        self.labels: LabelPair = labels


class Heap:
    """Object space manager.

    The heap does not hold object payloads (Python objects carry their own
    storage); it owns the *headers* and the labeled-space membership that
    the barriers consult.
    """

    def __init__(self) -> None:
        self._labeled_space: set[int] = set()
        self.stats = HeapStats()

    def allocate_header(self, labels: LabelPair) -> ObjectHeader:
        """Allocate a header; labeled objects land in the labeled space."""
        header = ObjectHeader(labels)
        self.stats.allocations += 1
        if not labels.is_empty:
            self._labeled_space.add(header.oid)
            self.stats.labeled_allocations += 1
            self.stats.label_words_written += 2
        return header

    def label_fresh(self, header: ObjectHeader, labels: LabelPair) -> None:
        """Set a freshly allocated header's labels.

        Only allocation barriers call this, and only before the object
        escapes (the paper labels objects "as part of their allocation to
        avoid races between creation and labeling"); from the program's
        perspective labels remain immutable.
        """
        header.secrecy = labels.secrecy
        header.integrity = labels.integrity
        header.labels = labels
        if not labels.is_empty:
            if header.oid not in self._labeled_space:
                self._labeled_space.add(header.oid)
                self.stats.labeled_allocations += 1
            self.stats.label_words_written += 2
        else:
            self._labeled_space.discard(header.oid)

    def is_labeled(self, header: ObjectHeader) -> bool:
        """The fast labeled-space membership test."""
        return header.oid in self._labeled_space

    @property
    def labeled_count(self) -> int:
        return len(self._labeled_space)
