"""VM threads: principals with a security-region frame stack.

Principals in Laminar are kernel threads (Section 3); a :class:`SimThread`
is the VM's view of one kernel :class:`~repro.osim.task.Task`.  The VM
gives a thread the labels and capabilities of each security region it
enters and restores the previous ones on exit (Section 4.2) — the frame
stack here is that save/restore mechanism, and it naturally supports
arbitrary nesting (Section 4.3.2).

Two capability stores exist on purpose:

* the **kernel task's** capability set — "thread capabilities are stored in
  the kernel" — which only changes through mediated acquisition and
  permanent drops; and
* the per-frame **cached** capabilities — "the JVM then caches a copy of
  the current capabilities of each thread to make the checks efficient
  inside the security region".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core import CapabilitySet, CapType, Label, LabelPair, Tag
from ..osim.task import Task

if TYPE_CHECKING:
    from .regions import SecurityRegion


@dataclass
class RegionFrame:
    """One entered security region: its labels, its (possibly narrowed)
    capability cache, and whether the kernel task has been synchronized to
    it yet (the lazy ``set_task_label`` optimization of Section 4.4)."""

    labels: LabelPair
    caps: CapabilitySet
    region: Optional["SecurityRegion"] = None
    kernel_synced: bool = False
    #: Kernel-side (labels, caps) snapshot taken when this frame synced, so
    #: exit can restore precisely.  Capability gains/permanent drops during
    #: the region update the snapshot too, so restore neither loses gains
    #: nor resurrects dropped capabilities.
    saved_kernel_labels: Optional[LabelPair] = None
    saved_kernel_caps: Optional[CapabilitySet] = None


class SimThread:
    """A VM thread bound to a kernel task."""

    def __init__(self, task: Task) -> None:
        self.task = task
        self.frames: list[RegionFrame] = []
        #: VM-side half of the label epoch: bumped by region entry/exit
        #: (the only VM events that change ``self.labels``).
        self._region_epoch = 0
        #: Per-thread barrier-verdict cache (Section 5.1 fast path): maps
        #: (source LabelPair, dest LabelPair) -> True for flows already
        #: proven legal under the current epoch.  Owned here, driven by
        #: :func:`repro.runtime.barriers.cached_check_flow`.
        self._flow_cache: dict = {}
        self._flow_cache_epoch = -1

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def tid(self) -> int:
        return self.task.tid

    # -- security state -------------------------------------------------------

    @property
    def in_region(self) -> bool:
        return bool(self.frames)

    @property
    def label_epoch(self) -> int:
        """Monotonic label-change clock for this principal.

        The sum of the VM-side region epoch and the kernel task's label
        epoch: it advances whenever *either* side changes the labels a
        barrier check could observe — region entry/exit on the VM side,
        ``set_task_label``/TCB writes on the kernel side.  Cached barrier
        verdicts are valid only while this value is unchanged.
        """
        return self._region_epoch + self.task.security.label_epoch

    def bump_label_epoch(self) -> None:
        """Invalidate cached barrier verdicts (region entry/exit path)."""
        self._region_epoch += 1

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def labels(self) -> LabelPair:
        """Current VM-side labels: the innermost region's, or empty.
        "Outside a security region threads always have empty labels"."""
        if self.frames:
            return self.frames[-1].labels
        return LabelPair.EMPTY

    @property
    def capabilities(self) -> CapabilitySet:
        """Effective capabilities: the innermost region's cache, or the
        kernel-resident set when outside all regions."""
        if self.frames:
            return self.frames[-1].caps
        return self.task.capabilities

    # -- capability propagation ------------------------------------------------

    def gain_capabilities(self, caps: CapabilitySet) -> None:
        """A capability gained inside a region is retained on exit by
        default (Section 4.4), so it lands in the kernel set *and* every
        frame of the stack."""
        self.task.security.grant(caps)
        for frame in self.frames:
            frame.caps = frame.caps.union(caps)
            if frame.saved_kernel_caps is not None:
                frame.saved_kernel_caps = frame.saved_kernel_caps.union(caps)

    def drop_capability_scoped(self, tag: Tag, kind: CapType) -> None:
        """``removeCapability(..., global=False)``: suspend the capability
        for the scope of the current security region only."""
        if not self.frames:
            raise RuntimeError("scoped capability drop outside a security region")
        self.frames[-1].caps = self.frames[-1].caps.without(tag, kind)

    def drop_capability_global(self, tag: Tag, kind: CapType) -> None:
        """``removeCapability(..., global=True)``: drop permanently — from
        the kernel set and from every saved frame, so region exit cannot
        resurrect it."""
        self.task.security.drop_capability(tag, kind)
        for frame in self.frames:
            frame.caps = frame.caps.without(tag, kind)
            if frame.saved_kernel_caps is not None:
                frame.saved_kernel_caps = frame.saved_kernel_caps.without(tag, kind)

    def __repr__(self) -> str:
        return (
            f"SimThread({self.name!r}, depth={self.depth}, "
            f"labels={self.labels!r})"
        )
