"""Declassifier modules: localized, auditable declassification (§3.3).

The calendar walkthrough ends with the paper's key software-engineering
claim: "Alice specifies a declassifier as a small code module that can be
loaded into a larger server application, which can be completely ignorant
of DIFC"; the declassification decision "is localized to a small piece of
code that can be closely audited".

This framework packages that idiom:

* a :class:`Declassifier` couples a *filter function* (the audited policy:
  which parts of the secret may leave) with the owner's capabilities (the
  authority to let them leave);
* a :class:`DeclassifierRegistry` lets a DIFC-ignorant host application
  invoke declassifiers by name, never touching labels itself;
* every invocation lands in the audit log with the declassifier's name, so
  the auditor sees *which policy* released *what*.

The filter runs inside a security region tainted with the source's labels
(it reads the secret); the framework then copies the filter's output to
the target label under the declassifier's capabilities.  A filter that
tries to release something its capabilities cannot justify fails exactly
like any other illegal ``copyAndLabel``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core import (
    AuditKind,
    CapabilitySet,
    LabelPair,
    LaminarUsageError,
)
from .objects import LabeledObject
from .vm import LaminarVM

#: The audited policy: labeled payload fields in, releasable fields out.
FilterFn = Callable[[dict[str, Any]], dict[str, Any]]


class Declassifier:
    """One loadable declassification module."""

    def __init__(
        self,
        name: str,
        caps: CapabilitySet,
        filter_fn: FilterFn,
        target: LabelPair = LabelPair.EMPTY,
    ) -> None:
        self.name = name
        self.caps = caps
        self.filter_fn = filter_fn
        self.target = target
        self.invocations = 0

    def declassify(
        self, vm: LaminarVM, source: LabeledObject
    ) -> Optional[LabeledObject]:
        """Run the filter over ``source`` and release the result at the
        target label.  Returns the released object, or ``None`` when the
        labels/capabilities forbid it (the host application learns only
        that the module declined)."""
        self.invocations += 1
        thread = vm.current_thread
        released: dict[str, LabeledObject] = {}

        def audit_failure(exc: BaseException) -> None:
            vm.audit.record(
                AuditKind.DENIAL,
                "declassifier",
                thread.name,
                f"{self.name}: {type(exc).__name__}: {exc}",
            )

        with vm.region(
            secrecy=source.labels.secrecy,
            integrity=source.labels.integrity,
            caps=self.caps,
            catch=audit_failure,
            name=f"declassifier:{self.name}",
        ):
            filtered = self.filter_fn(source.snapshot())
            staged = vm.alloc(dict(filtered), name=f"{self.name}:staged")
            with vm.region(
                secrecy=self.target.secrecy,
                integrity=self.target.integrity,
                caps=self.caps,
                name=f"declassifier:{self.name}:emit",
            ):
                out = vm.copy_and_label(
                    staged,
                    secrecy=self.target.secrecy,
                    integrity=self.target.integrity,
                    name=f"{self.name}:released",
                )
                released["object"] = out
        result = released.get("object")
        if result is not None:
            vm.audit.record(
                AuditKind.DECLASSIFY,
                "declassifier",
                thread.name,
                f"{self.name}: released fields "
                f"{sorted(result.raw_fields())} at {self.target!r}",
            )
        return result


class DeclassifierRegistry:
    """The host application's view: named modules, no labels in sight."""

    def __init__(self, vm: LaminarVM) -> None:
        self.vm = vm
        self._modules: dict[str, Declassifier] = {}

    def register(self, declassifier: Declassifier) -> None:
        if declassifier.name in self._modules:
            raise LaminarUsageError(
                f"declassifier {declassifier.name!r} already registered"
            )
        self._modules[declassifier.name] = declassifier

    def run(self, name: str, source: LabeledObject) -> Optional[LabeledObject]:
        try:
            module = self._modules[name]
        except KeyError:
            raise LaminarUsageError(f"no declassifier {name!r}") from None
        return module.declassify(self.vm, source)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._modules))
