"""Security regions: lexically scoped DIFC enforcement (Section 4.3).

A security region is a lexically scoped code block parameterized by a
secrecy label, an integrity label, and a capability set.  Only code inside
a region may touch labeled data; the entering thread takes on the region's
labels and capabilities for the dynamic extent of the block, and the VM
restores the previous state on exit.

Entry rules (Section 4.3.2), for a thread ``P`` entering region ``R``::

    S_R ⊆ (Cp+ ∪ S_P)   and   I_R ⊆ (Cp+ ∪ I_P)       (1)
    C_R ⊆ C_P                                          (2)

plus the explicit label-change rule of Section 3.2, since entering a region
*is* a label change of the principal (this is what makes the Fig. 4 nested
declassification need the ``a-`` capability).

Implicit-flow containment (Section 4.3.3): every region has a mandatory
``catch`` block that runs with the region's labels; the VM suppresses all
exceptions not explicitly caught — including exceptions raised inside the
catch block — and continues execution *after* the region, so code outside
cannot distinguish executions by how the region terminated.  Regions may
only exit by falling through; ``return``/``break``/``continue`` exits are
rejected by the static checker (:mod:`repro.runtime.static_check`) because
Python context managers cannot observe them dynamically.

Python surface::

    with vm.region(thread, secrecy=S, integrity=I, caps=C, catch=handler):
        ...   # labeled accesses legal here, checked against S/I/C
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from ..core import (
    AuditKind,
    CapabilitySet,
    Label,
    LabelPair,
    RegionViolation,
    VMPanic,
    check_pair_change,
    region_entry_allowed,
)
from .threads import RegionFrame, SimThread

if TYPE_CHECKING:
    from .vm import LaminarVM

#: Signature of a catch handler: receives the exception, returns nothing.
CatchHandler = Callable[[BaseException], None]


class SecurityRegion:
    """One ``secure {...} catch {...}`` block, as a context manager."""

    def __init__(
        self,
        vm: "LaminarVM",
        thread: SimThread,
        secrecy: Label = Label.EMPTY,
        integrity: Label = Label.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
        catch: Optional[CatchHandler] = None,
        name: str = "",
    ) -> None:
        self.vm = vm
        self.thread = thread
        self.labels = LabelPair(secrecy, integrity)
        self.caps = caps
        self.catch = catch
        self.name = name or "region"
        self._frame: Optional[RegionFrame] = None
        self._entered_at = 0.0
        #: The exception the catch block saw (exposed for tests/audit only).
        self.suppressed: Optional[BaseException] = None

    # -- context manager protocol -------------------------------------------------

    def __enter__(self) -> "SecurityRegion":
        thread = self.thread
        # A region is entered by the thread executing it; entering on
        # behalf of a *different* thread would let one principal change
        # another's labels.  Region state lives in the thread's own frame
        # stack — never in scheduler state — which is what lets threads
        # with heterogeneous labels interleave freely.
        if thread is not self.vm.current_thread:
            from ..core import LaminarUsageError

            raise LaminarUsageError(
                f"{self.vm.current_thread.name} cannot enter a region on "
                f"behalf of {thread.name}"
            )
        self.vm.stats.region_entries += 1
        if not region_entry_allowed(
            self.labels.secrecy,
            self.labels.integrity,
            self.caps,
            thread.labels,
            thread.capabilities,
        ):
            raise RegionViolation(
                f"{thread.name} may not initialize {self.name} with "
                f"{self.labels!r} {self.caps!r} (entry rules, Section 4.3.2)"
            )
        # Entering the region changes the principal's labels; the explicit
        # label-change rule applies (needs minus caps to *lower* a label).
        check_pair_change(
            thread.labels, self.labels, thread.capabilities, context=self.name
        )
        self._frame = RegionFrame(labels=self.labels, caps=self.caps, region=self)
        if not thread.frames:
            self._entered_at = time.perf_counter()
        thread.frames.append(self._frame)
        # Entering changed the thread's effective labels: cached barrier
        # verdicts from the previous context must not be consulted again.
        thread.bump_label_epoch()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        thread = self.thread
        try:
            if exc is not None:
                self.suppressed = exc
                self.vm.stats.region_exceptions += 1
                if not isinstance(exc, (KeyboardInterrupt, SystemExit, VMPanic)):
                    self.vm.audit.record(
                        AuditKind.REGION_SUPPRESS, "region", thread.name,
                        f"{self.name} suppressed "
                        f"{type(exc).__name__}: {exc}",
                    )
                if self.catch is not None:
                    # The catch block executes with the labels of the
                    # region and the capability set at the time of the
                    # exception — the frame is still on the stack.
                    try:
                        self.catch(exc)
                    except BaseException:
                        # Exceptions within a catch block are suppressed
                        # too; execution continues after the region.
                        pass
        finally:
            popped = thread.frames.pop()
            assert popped is self._frame, "unbalanced security region nesting"
            thread.bump_label_epoch()
            self.vm.exit_region_kernel_restore(thread, popped)
            self.vm.stats.region_exits += 1
            if not thread.frames:
                self.vm.stats.region_seconds += time.perf_counter() - self._entered_at
        # Suppress *everything*: code outside the region cannot learn how
        # the region terminated.  (KeyboardInterrupt/SystemExit pass — the
        # surrounding harness, not region code, uses those.)
        if exc is not None and isinstance(
            exc, (KeyboardInterrupt, SystemExit, VMPanic)
        ):
            return False
        return True
