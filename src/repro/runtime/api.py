"""The Laminar application library API (Fig. 2 of the paper).

The figure defines four library operations plus wrappers for the Fig. 3
system calls::

    Label  getCurrentLabel(LabelType t)
    Tag    createAndAddCapability()
    void   removeCapability(CapType c, Tag name, boolean global)
    Object copyAndLabel(Object o, Label l)

:class:`LaminarAPI` binds those names to a VM.  Applications hold one of
these (usually via :func:`laminar_api`) and never touch the kernel or the
barrier engine directly.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import (
    CapabilitySet,
    CapType,
    Label,
    LabelPair,
    LabelType,
    Tag,
)
from .objects import LabeledArray, LabeledObject
from .threads import SimThread
from .vm import LaminarVM


class LaminarAPI:
    """Application-facing facade over the trusted VM."""

    def __init__(self, vm: LaminarVM) -> None:
        self._vm = vm

    # -- Fig. 2 -----------------------------------------------------------

    def get_current_label(self, label_type: LabelType) -> Label:
        """Return the current secrecy or integrity label of the security
        region (the thread's current label; empty outside regions)."""
        return self._vm.current_thread.labels.get(label_type)

    def create_and_add_capability(self, name: str = "") -> Tag:
        """Create a new tag and add both capabilities to the current
        principal (wraps ``alloc_tag``; the gain propagates through the
        region frame stack so it is retained on region exit)."""
        tag, granted = self._vm.syscall("alloc_tag", name)
        thread = self._vm.current_thread
        # syscall() granted to the kernel task; mirror into the VM's caches.
        for frame in thread.frames:
            frame.caps = frame.caps.union(granted)
            if frame.saved_kernel_caps is not None:
                frame.saved_kernel_caps = frame.saved_kernel_caps.union(granted)
        return tag

    def remove_capability(
        self, cap_type: CapType, tag: Tag, global_: bool = False
    ) -> None:
        """Drop a capability from the current principal.  With ``global_``
        the drop is permanent; otherwise it lasts for the scope of the
        current security region (Fig. 2)."""
        thread = self._vm.current_thread
        if global_:
            thread.drop_capability_global(tag, cap_type)
        else:
            thread.drop_capability_scoped(tag, cap_type)

    def copy_and_label(
        self,
        obj: LabeledObject | LabeledArray,
        secrecy: Label = Label.EMPTY,
        integrity: Label = Label.EMPTY,
        name: str = "",
    ) -> LabeledObject | LabeledArray:
        """Return a copy of ``obj`` with new labels; see
        :meth:`LaminarVM.copy_and_label`."""
        return self._vm.copy_and_label(obj, secrecy, integrity, name=name)

    # -- Fig. 3 wrappers ------------------------------------------------------

    def create_file_labeled(
        self, path: str, labels: LabelPair, mode: int = 0o644
    ) -> int:
        return self._vm.syscall("create_file_labeled", path, labels, mode)

    def mkdir_labeled(self, path: str, labels: LabelPair, mode: int = 0o755) -> int:
        return self._vm.syscall("mkdir_labeled", path, labels, mode)

    def open(self, path: str, mode: str = "r") -> int:
        return self._vm.syscall("open", path, mode)

    def read(self, fd: int, count: int = -1) -> bytes:
        return self._vm.syscall("read", fd, count)

    def write(self, fd: int, data: bytes) -> int:
        return self._vm.syscall("write", fd, data)

    def close(self, fd: int) -> None:
        self._vm.syscall("close", fd)

    def pipe(self, labels: Optional[LabelPair] = None) -> tuple[int, int]:
        return self._vm.syscall("pipe", labels)

    def write_capability(self, cap: Any, fd: int) -> None:
        self._vm.syscall("write_capability", cap, fd)

    def read_capability(self, fd: int) -> Any:
        received = self._vm.syscall("read_capability", fd)
        if received is not None:
            thread = self._vm.current_thread
            granted = CapabilitySet([received])
            for frame in thread.frames:
                frame.caps = frame.caps.union(granted)
                if frame.saved_kernel_caps is not None:
                    frame.saved_kernel_caps = frame.saved_kernel_caps.union(granted)
        return received

    def transmit(self, data: bytes) -> int:
        """Send to the unlabeled network."""
        return self._vm.syscall("transmit", data)

    # -- convenience ----------------------------------------------------------

    @property
    def vm(self) -> LaminarVM:
        return self._vm

    @property
    def thread(self) -> SimThread:
        return self._vm.current_thread


def laminar_api(vm: LaminarVM) -> LaminarAPI:
    """Build the application API facade for a VM."""
    return LaminarAPI(vm)
