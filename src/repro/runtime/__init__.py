"""The Laminar VM runtime: heap, barriers, security regions, threads, API.

This package is the Python analog of the paper's ~2,000-line Jikes RVM
modification: a labeled object space (:mod:`.heap`), read/write/alloc
barriers with static and dynamic modes (:mod:`.barriers`), lexically scoped
security regions with catch semantics (:mod:`.regions`), thread principals
with region frame stacks (:mod:`.threads`), labeled objects and arrays
(:mod:`.objects`), the Fig. 2 library API (:mod:`.api`), the Section 5.1
static restrictions as an AST checker and ``@secure_method`` decorator
(:mod:`.static_check`), and the VM itself with the lazy VM↔OS label sync
(:mod:`.vm`).
"""

from .api import LaminarAPI, laminar_api
from .barriers import BarrierEngine, BarrierMode, BarrierStats
from .declassifiers import Declassifier, DeclassifierRegistry
from .heap import Heap, HeapStats, ObjectHeader
from .objects import LabeledArray, LabeledObject
from .regions import SecurityRegion
from .static_check import check_region_function, secure_method
from .threads import RegionFrame, SimThread
from .vm import LaminarVM, VMStats

__all__ = [
    "BarrierEngine",
    "BarrierMode",
    "BarrierStats",
    "Declassifier",
    "DeclassifierRegistry",
    "Heap",
    "HeapStats",
    "LabeledArray",
    "LabeledObject",
    "LaminarAPI",
    "LaminarVM",
    "ObjectHeader",
    "RegionFrame",
    "SecurityRegion",
    "SimThread",
    "VMStats",
    "check_region_function",
    "laminar_api",
    "secure_method",
]
