"""Read, write, and allocation barriers (Section 5.1).

The compiler inserts instrumentation — *barriers* — at every object read
and write.  The semantics, from the paper:

* **Inside a security region**: load the accessed object's secrecy and
  integrity labels and check them against the region's labels and
  capabilities.  A read is a flow object → thread; a write is a flow
  thread → object.
* **Outside security regions**: check only that the accessed object is
  unlabeled (the labeled-space membership test), since unlabeled threads
  may never touch labeled data.
* **Allocation inside a region**: label the new object with the region's
  labels (or explicit ones that conform to the DIFC rules) before the
  constructor runs.

Two compilation strategies exist because a method may be called both from
inside and outside regions:

* **static barriers** — the variant is chosen at compile time (the paper's
  prototype decides when the method is first compiled; a production system
  would clone methods).  ~6% average overhead on DaCapo.
* **dynamic barriers** — every barrier first tests at run time whether the
  thread is in a region, then dispatches.  ~17% average overhead.

This module is the *runtime* half used by the Python-level API and the
applications; the mini-JIT in :mod:`repro.jit` inserts and optimizes the
corresponding IR instructions for the compiler benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core import (
    LabelPair,
    RegionViolation,
    check_flow,
    fastpath,
)
from .heap import Heap, ObjectHeader
from .threads import SimThread

#: Entry bound for each thread's verdict cache.  In-region working sets
#: touch a handful of distinct label pairs, so a small bound suffices; on
#: overflow new verdicts simply go unrecorded (never wrong, only slower).
THREAD_FLOW_CACHE_BOUND = 256


def cached_check_flow(
    thread: SimThread,
    source: LabelPair,
    dest: LabelPair,
    stats: "BarrierStats",
    context: str = "",
) -> None:
    """``check_flow`` through the per-thread verdict cache.

    Successful verdicts are cached under the thread's current label epoch;
    the epoch (bumped on region entry/exit and kernel label changes)
    guards the cache, so a thread can never reuse a verdict proven under
    different labels.  Violations are never cached: the failure path must
    recompute diagnostics anyway, and denials are rare by construction.
    """
    if not fastpath.flags.thread_barrier_cache:
        check_flow(source, dest, context=context)
        return
    epoch = thread.label_epoch
    cache = thread._flow_cache
    if thread._flow_cache_epoch != epoch:
        cache.clear()
        thread._flow_cache_epoch = epoch
    key = (source, dest)
    if cache.get(key):
        stats.flow_cache_hits += 1
        return
    stats.flow_cache_misses += 1
    check_flow(source, dest, context=context)
    if len(cache) < THREAD_FLOW_CACHE_BOUND:
        cache[key] = True


class BarrierMode(enum.Enum):
    """How barriers are compiled/dispatched."""

    #: No instrumentation at all: the unmodified-JVM baseline.
    NONE = "none"
    #: Context decided at compile time (≈ method cloning's cost).
    STATIC = "static"
    #: Every barrier tests the thread's region state at run time.
    DYNAMIC = "dynamic"


@dataclass
class BarrierStats:
    """Counters behind Figures 8 and 9."""

    read_barriers: int = 0
    write_barriers: int = 0
    alloc_barriers: int = 0
    #: Dynamic-mode context tests (the extra work dynamic barriers do).
    dynamic_dispatches: int = 0
    #: Full label checks actually performed (in-region accesses).
    label_checks: int = 0
    #: Fast unlabeled-space membership tests (out-of-region accesses).
    space_checks: int = 0
    #: Per-thread barrier-verdict cache traffic (label checks served
    #: without re-evaluating the flow rules / checks that had to go to
    #: the rules layer).  ``label_checks`` keeps counting *requested*
    #: checks regardless, so Figures 8/9 stay comparable across cache
    #: configurations.
    flow_cache_hits: int = 0
    flow_cache_misses: int = 0
    #: Tier-2 execution accounting (the tiered engine of repro.jit.tier2):
    #: entries into exec-compiled method bodies and entry-guard misses that
    #: fell back to the interpreter.  These describe *which engine ran*,
    #: not what enforcement did, so :meth:`enforcement` excludes them.
    tier2_entries: int = 0
    tier2_deopts: int = 0

    def reset(self) -> None:
        self.read_barriers = 0
        self.write_barriers = 0
        self.alloc_barriers = 0
        self.dynamic_dispatches = 0
        self.label_checks = 0
        self.space_checks = 0
        self.flow_cache_hits = 0
        self.flow_cache_misses = 0
        self.tier2_entries = 0
        self.tier2_deopts = 0

    @property
    def total(self) -> int:
        return self.read_barriers + self.write_barriers + self.alloc_barriers

    def enforcement(self) -> dict[str, int]:
        """The cross-tier comparable counters.

        Every field describing what *enforcement* observed — barrier
        executions, context dispatches, label/space checks, verdict-cache
        traffic — which must be identical whichever execution tier ran
        the code.  Excludes the ``tier2_*`` engine accounting, which is
        legitimately nonzero only when tier-2 code ran.
        """
        return {
            "read_barriers": self.read_barriers,
            "write_barriers": self.write_barriers,
            "alloc_barriers": self.alloc_barriers,
            "dynamic_dispatches": self.dynamic_dispatches,
            "label_checks": self.label_checks,
            "space_checks": self.space_checks,
            "flow_cache_hits": self.flow_cache_hits,
            "flow_cache_misses": self.flow_cache_misses,
        }


class BarrierEngine:
    """Executes barrier semantics for the runtime API.

    One engine per VM; the mode models the compilation strategy.  In
    ``NONE`` mode the barrier bodies are skipped entirely (this is only
    sound for programs with no labeled data — it exists to measure the
    baseline, exactly like running the workload on the unmodified JVM).
    """

    def __init__(self, heap: Heap, mode: BarrierMode = BarrierMode.STATIC) -> None:
        self.heap = heap
        self.mode = mode
        self.stats = BarrierStats()

    # -- the three barriers ----------------------------------------------------

    def read_barrier(self, thread: SimThread, header: ObjectHeader, what: str = "") -> None:
        """Check a read of ``header``'s object by ``thread``."""
        if self.mode is BarrierMode.NONE:
            return
        self.stats.read_barriers += 1
        in_region = self._context(thread)
        if in_region:
            self.stats.label_checks += 1
            cached_check_flow(
                thread, header.labels, thread.labels, self.stats,
                context=f"read {what}",
            )
        else:
            self.stats.space_checks += 1
            if self.heap.is_labeled(header):
                raise RegionViolation(
                    f"read of labeled object {what or header.oid} outside any "
                    f"security region"
                )

    def write_barrier(self, thread: SimThread, header: ObjectHeader, what: str = "") -> None:
        """Check a write to ``header``'s object by ``thread``."""
        if self.mode is BarrierMode.NONE:
            return
        self.stats.write_barriers += 1
        in_region = self._context(thread)
        if in_region:
            self.stats.label_checks += 1
            cached_check_flow(
                thread, thread.labels, header.labels, self.stats,
                context=f"write {what}",
            )
        else:
            self.stats.space_checks += 1
            if self.heap.is_labeled(header):
                raise RegionViolation(
                    f"write to labeled object {what or header.oid} outside any "
                    f"security region"
                )

    def alloc_barrier(
        self, thread: SimThread, labels: LabelPair | None, what: str = ""
    ) -> ObjectHeader:
        """Label a new object before its constructor runs.

        Inside a region, the default labels are the region's at the
        allocation point; explicit labels must conform to the flow rules
        (the object is being written by the allocating thread).  Outside
        all regions only unlabeled allocation is possible.
        """
        if self.mode is BarrierMode.NONE:
            return self.heap.allocate_header(labels or LabelPair.EMPTY)
        self.stats.alloc_barriers += 1
        in_region = self._context(thread)
        if labels is None:
            labels = thread.labels if in_region else LabelPair.EMPTY
        elif not labels.is_empty:
            if not in_region:
                raise RegionViolation(
                    f"labeled allocation of {what or 'object'} outside any "
                    f"security region"
                )
            self.stats.label_checks += 1
            # Writing initial state into the new object is a flow from the
            # thread to the object.
            cached_check_flow(
                thread, thread.labels, labels, self.stats,
                context=f"alloc {what}",
            )
        return self.heap.allocate_header(labels)

    # -- context dispatch ---------------------------------------------------------

    def _context(self, thread: SimThread) -> bool:
        """Return whether the thread is inside a region; in dynamic mode
        this is a paid run-time test, in static mode the compiler knew."""
        if self.mode is BarrierMode.DYNAMIC:
            self.stats.dynamic_dispatches += 1
        return thread.in_region
