"""Labeled heap objects: the data the VM tracks at object granularity.

Laminar tracks information flow for objects in the heap; labels are
assigned at allocation time and are immutable — "to change an object's
labels, our implementation provides an API call, ``copyAndLabel``, that
clones an object with specified labels" (Section 5.1).  Immutability avoids
the relabel/use race the paper describes in Section 4.5, with no extra
synchronization.

Every field and array-element access funnels through the VM's barrier
engine, the Python analog of compiler-inserted read/write barriers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from ..core import LabelPair

if TYPE_CHECKING:
    from .heap import ObjectHeader
    from .vm import LaminarVM


class LabeledObject:
    """An object with named fields, guarded by barriers.

    Create through :meth:`repro.runtime.vm.LaminarVM.alloc`; the VM runs the
    allocation barrier (assigning labels before "the constructor" — the
    initial field population — executes).
    """

    __slots__ = ("_vm", "_header", "_fields", "_name")

    def __init__(
        self,
        vm: "LaminarVM",
        header: "ObjectHeader",
        fields: dict[str, Any],
        name: str = "",
    ) -> None:
        self._vm = vm
        self._header = header
        self._fields = dict(fields)
        self._name = name or f"obj{header.oid}"

    # -- barrier-mediated access ----------------------------------------------

    def get(self, field: str) -> Any:
        """Read a field (read barrier, then the load)."""
        self._vm.barriers.read_barrier(
            self._vm.current_thread, self._header, what=f"{self._name}.{field}"
        )
        return self._fields[field]

    def set(self, field: str, value: Any) -> None:
        """Write a field (write barrier, then the store)."""
        self._vm.barriers.write_barrier(
            self._vm.current_thread, self._header, what=f"{self._name}.{field}"
        )
        self._fields[field] = value

    def fields(self) -> tuple[str, ...]:
        """Field names are object *metadata* guarded like a read."""
        self._vm.barriers.read_barrier(
            self._vm.current_thread, self._header, what=f"{self._name}.<fields>"
        )
        return tuple(self._fields)

    def snapshot(self) -> dict[str, Any]:
        """Barrier-checked copy of every field (one read barrier; the
        object has a single label, so one check covers the snapshot)."""
        self._vm.barriers.read_barrier(
            self._vm.current_thread, self._header, what=f"{self._name}.*"
        )
        return dict(self._fields)

    # -- trusted access (VM-internal; no barrier) --------------------------------

    def raw_fields(self) -> dict[str, Any]:
        """Unchecked snapshot for the VM itself (copyAndLabel, debuggers).
        Application code must not call this; it is the moral equivalent of
        reading memory from inside the TCB."""
        return dict(self._fields)

    @property
    def header(self) -> "ObjectHeader":
        return self._header

    @property
    def labels(self) -> LabelPair:
        """Labels are opaque-but-queryable; exposing the pair (not the raw
        tag values) matches the paper's opaque ``Labels`` objects."""
        return self._header.labels

    def __repr__(self) -> str:
        return f"LabeledObject({self._name}, labels={self.labels!r})"


class LabeledArray:
    """A fixed-length array with per-element barrier checks.

    The paper's fine granularity is per *object*, so one array has one
    label; heterogeneous structures (like GradeSheet's GradeCell matrix)
    are arrays of differently-labeled element objects.
    """

    __slots__ = ("_vm", "_header", "_items", "_name")

    def __init__(
        self,
        vm: "LaminarVM",
        header: "ObjectHeader",
        items: Iterable[Any],
        name: str = "",
    ) -> None:
        self._vm = vm
        self._header = header
        self._items = list(items)
        self._name = name or f"arr{header.oid}"

    def get(self, index: int) -> Any:
        self._vm.barriers.read_barrier(
            self._vm.current_thread, self._header, what=f"{self._name}[{index}]"
        )
        return self._items[index]

    def set(self, index: int, value: Any) -> None:
        self._vm.barriers.write_barrier(
            self._vm.current_thread, self._header, what=f"{self._name}[{index}]"
        )
        self._items[index] = value

    def length(self) -> int:
        self._vm.barriers.read_barrier(
            self._vm.current_thread, self._header, what=f"{self._name}.length"
        )
        return len(self._items)

    def raw_items(self) -> list[Any]:
        """Unchecked snapshot for the VM itself; see
        :meth:`LabeledObject.raw_fields`."""
        return list(self._items)

    @property
    def header(self) -> "ObjectHeader":
        return self._header

    @property
    def labels(self) -> LabelPair:
        return self._header.labels

    def __repr__(self) -> str:
        return f"LabeledArray({self._name}, labels={self.labels!r})"
