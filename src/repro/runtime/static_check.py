"""Static restrictions on security-region code (Section 5.1).

Laminar's prototype requires each security region to be its own method and
enforces, at JIT time, restrictions that keep *local variables* and
*statics* from becoming uncontrolled channels:

1. a local written inside a region with secrecy labels may not later be
   read outside it (automatic when the region is its own method — locals
   die at method exit);
2. a region method returns no value when the region has secrecy labels;
3. region methods take only reference-type parameters, and may dereference
   them but not read or write the reference values themselves;
4. regions with secrecy labels may not write statics, and regions with
   integrity labels may not read statics;
5. regions exit only by fall-through — no ``break``/``continue``/``return``
   out of the region.

Because a region's labels are dynamic, the prototype "requires both
properties for every security region"; this checker does the same.

This module is the Python analog: :func:`check_region_function` analyzes a
function's AST and raises :class:`~repro.core.StaticCheckError` on any
violation, and :func:`secure_method` packages the check plus the dynamic
region wrapper into a decorator::

    @secure_method
    def sum_marks(vm, out, student1, student2):
        total = student1.get("marks") + student2.get("marks")
        out.set("value", total)

    sum_marks(vm, out, s1, s2, secrecy=..., integrity=..., caps=...)

The IR-level equivalent for mini-JIT programs lives in
:mod:`repro.jit.region_checker`.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from typing import Any, Callable, Optional

from ..core import (
    CapabilitySet,
    Label,
    LaminarUsageError,
    StaticCheckError,
)
from .objects import LabeledArray, LabeledObject
from .regions import CatchHandler

#: Builtins region code may freely use (reading these is not a static read).
_SAFE_BUILTINS = frozenset(
    [
        "abs", "all", "any", "bool", "bytes", "bytearray", "dict", "divmod",
        "enumerate", "filter", "float", "frozenset", "hash", "int",
        "isinstance", "iter", "len", "list", "map", "max", "min", "next",
        "object", "ord", "chr", "print", "range", "repr", "reversed",
        "round", "set", "sorted", "str", "sum", "tuple", "zip", "True",
        "False", "None", "Exception", "ValueError", "KeyError", "TypeError",
    ]
)


#: Callable names (bare or attribute) that create a concurrent thread of
#: execution: the runtime's own APIs plus the stdlib spellings.
_THREAD_CREATORS = frozenset(
    ["Thread", "create_thread", "spawn", "spawn_task", "fork", "start_new_thread"]
)


class _RegionVisitor(ast.NodeVisitor):
    """Walks a region function's AST collecting violations."""

    def __init__(self, func_def: ast.FunctionDef) -> None:
        self.violations: list[str] = []
        self.params = {a.arg for a in func_def.args.args}
        self.params.update(a.arg for a in func_def.args.posonlyargs)
        self.params.update(a.arg for a in func_def.args.kwonlyargs)
        self.locals: set[str] = set(self.params)
        self._collect_locals(func_def)
        #: Names that count as dereference receivers in the current node.
        self._deref_ok: set[int] = set()

    def _collect_locals(self, func_def: ast.FunctionDef) -> None:
        for node in ast.walk(func_def):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                self.locals.add(node.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        self.locals.add(sub.id)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.locals.add(node.name)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                for sub in ast.walk(node.optional_vars):
                    if isinstance(sub, ast.Name):
                        self.locals.add(sub.id)
            elif isinstance(node, ast.Lambda):
                # Lambda parameters are bindings local to the lambda body;
                # without this they would be misreported as static reads.
                args = node.args
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                    self.locals.add(arg.arg)
                if args.vararg is not None:
                    self.locals.add(args.vararg.arg)
                if args.kwarg is not None:
                    self.locals.add(args.kwarg.arg)
            elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
                if isinstance(node.target, ast.Name):
                    self.locals.add(node.target.id)

    # -- rule 2 & 5: returns and region exits -----------------------------------

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.violations.append(
                f"line {node.lineno}: security-region method returns a value"
            )
        else:
            self.violations.append(
                f"line {node.lineno}: security region must exit by "
                f"fall-through, not return"
            )
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.violations.append(
            f"line {node.lineno}: security region declares 'global' "
            f"(static write)"
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.violations.append(
            f"line {node.lineno}: security region declares 'nonlocal' "
            f"(enclosing-scope write leaks past the region)"
        )

    def visit_Yield(self, node: ast.Yield) -> None:
        self.violations.append(
            f"line {node.lineno}: security region may not be a generator"
        )

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.violations.append(
            f"line {node.lineno}: security region may not be a generator"
        )

    # -- rule 4: statics (module-level names) -------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        name = node.id
        if isinstance(node.ctx, ast.Load):
            if (
                name not in self.locals
                and name not in _SAFE_BUILTINS
                and id(node) not in self._deref_ok
            ):
                self.violations.append(
                    f"line {node.lineno}: read of static/global {name!r} "
                    f"inside a security region (forbidden with integrity "
                    f"labels; the prototype forbids it for every region)"
                )
            if name in self.params and id(node) not in self._deref_ok:
                self.violations.append(
                    f"line {node.lineno}: parameter {name!r} used by value; "
                    f"region parameters may only be dereferenced"
                )

    # -- rule 3: parameter dereference-only -----------------------------------------

    def _mark_deref(self, node: ast.expr) -> None:
        """Allow ``param.attr`` / ``param[i]`` receivers and ``param`` as a
        call argument (passing a reference into a callee)."""
        if isinstance(node, ast.Name):
            self._deref_ok.add(id(node))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._mark_deref(node.value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._mark_deref(node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Thread creation inside a region escapes the region discipline:
        # the child starts label-free (threads have empty labels outside a
        # region) while sharing references with the region body, so every
        # hand-off becomes a schedule-dependent label race — the exact
        # LAM007 shape the IR-level detector (repro.analysis.races) flags.
        # The race detector models spawn/join at the IR level only, so
        # Python region bodies must not create threads at all.
        callee = node.func
        callee_name = (
            callee.id if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute)
            else None
        )
        if callee_name in _THREAD_CREATORS:
            self.violations.append(
                f"line {node.lineno}: thread creation ({callee_name!r}) "
                f"inside a security region; spawned threads run label-free "
                f"and race the region's label checks"
            )
        # Calling a function is not a static *data* read (Java static method
        # calls are likewise not static accesses), so the function position
        # is exempt.  *Local* references may be passed as arguments (the
        # prototype's discipline permits handing references to callees);
        # globals in argument position are still static data reads.
        self._mark_deref(node.func)
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id in self.locals:
                self._mark_deref(arg)
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id in self.locals:
                self._mark_deref(kw.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and sub.id in self.params:
                    self.violations.append(
                        f"line {node.lineno}: parameter {sub.id!r} is "
                        f"written; region parameters are read-only references"
                    )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``param += 1`` both reads and rebinds the parameter; the plain
        # Assign/Name visitors never see it (the target has Store context).
        if isinstance(node.target, ast.Name) and node.target.id in self.params:
            self.violations.append(
                f"line {node.lineno}: parameter {node.target.id!r} is "
                f"written (augmented assignment); region parameters are "
                f"read-only references"
            )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.target.id in self.params:
            self.violations.append(
                f"line {node.lineno}: parameter {node.target.id!r} is "
                f"written (annotated assignment); region parameters are "
                f"read-only references"
            )
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        if isinstance(node.target, ast.Name) and node.target.id in self.params:
            self.violations.append(
                f"line {node.lineno}: parameter {node.target.id!r} is "
                f"written (walrus assignment); region parameters are "
                f"read-only references"
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for operand in [node.left, *node.comparators]:
            if isinstance(operand, ast.Name) and operand.id in self.params:
                self.violations.append(
                    f"line {node.lineno}: parameter {operand.id!r} compared "
                    f"by value (e.g. 'obj == None' is disallowed; "
                    f"dereference instead)"
                )
        self.generic_visit(node)


def _function_ast(fn: Callable[..., Any]) -> ast.FunctionDef:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise StaticCheckError(
            f"cannot retrieve source of {fn!r} for region checking"
        ) from exc
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            # Decorators run at definition time, outside the region; they
            # are not region code and must not trip the static-read check.
            node.decorator_list = []
            return node
    raise StaticCheckError(f"{fn!r} is not a plain function")


def check_region_function(fn: Callable[..., Any]) -> None:
    """Statically verify that ``fn`` obeys the Section 5.1 region-method
    restrictions.  Raises :class:`StaticCheckError` listing every violation.
    """
    func_def = _function_ast(fn)
    # The first parameter is the trusted VM/API handle, exempt from the
    # reference-only discipline (it is the region's connection to the TCB).
    visitor = _RegionVisitor(func_def)
    if func_def.args.args:
        visitor.params.discard(func_def.args.args[0].arg)
    visitor.visit(func_def)
    if visitor.violations:
        listing = "\n  ".join(visitor.violations)
        raise StaticCheckError(
            f"security-region method {fn.__name__!r} violates static "
            f"restrictions:\n  {listing}"
        )


_REFERENCE_TYPES = (LabeledObject, LabeledArray)


def secure_method(fn: Callable[..., Any]) -> Callable[..., None]:
    """Decorator: make ``fn`` a method security region.

    The function is statically checked once, at decoration.  Calls take the
    region parameters as keyword arguments::

        fn(vm, *reference_args, secrecy=..., integrity=..., caps=..., catch=...)

    and run the body inside ``vm.region(...)``.  Positional arguments after
    the VM must be reference types (labeled objects/arrays or ``None``),
    matching restriction (2) of the prototype.  The wrapper always returns
    ``None``.
    """
    check_region_function(fn)

    @functools.wraps(fn)
    def wrapper(
        vm: Any,
        *refs: Any,
        secrecy: Label = Label.EMPTY,
        integrity: Label = Label.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
        catch: Optional[CatchHandler] = None,
    ) -> None:
        from .vm import LaminarVM  # runtime import to avoid a cycle

        if not isinstance(vm, LaminarVM):
            raise LaminarUsageError(
                "first argument of a secure method is the LaminarVM"
            )
        for ref in refs:
            if ref is not None and not isinstance(ref, _REFERENCE_TYPES):
                raise LaminarUsageError(
                    f"security-region parameters must be reference types, "
                    f"got {type(ref).__name__}"
                )
        with vm.region(
            secrecy=secrecy,
            integrity=integrity,
            caps=caps,
            catch=catch,
            name=fn.__name__,
        ):
            fn(vm, *refs)
        # Fall-through exit; never a value.
        return None

    wrapper.__laminar_secure_method__ = True  # type: ignore[attr-defined]
    return wrapper
