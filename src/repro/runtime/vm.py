"""The Laminar VM: one trusted runtime per process.

Ties together the labeled heap, the barrier engine, VM threads, security
regions, the trusted TCB thread, and the VM↔OS interface of Section 4.4:

* **Division of trust**: only the VM and the OS are trusted.  Application
  code reaches labeled data exclusively through barrier-mediated accessors
  and reaches the kernel exclusively through :meth:`LaminarVM.syscall`,
  which keeps the kernel thread's labels in sync with the current security
  region.
* **Lazy label sync**: "as an optimization, the VM omits setting the labels
  in the kernel thread if the security region does not perform a system
  call."  Region entry only marks the frame; the first syscall inside the
  region pays one ``set_security_tcb`` round trip.
* **TCB thread**: a single VM-internal thread carries the special ``tcb``
  integrity tag; only it may drop/restore labels without capabilities, and
  the kernel confines it to the VM's own address space (process group).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

from ..core import (
    AuditKind,
    CapabilitySet,
    Label,
    LabelPair,
    LaminarUsageError,
    ProcessExit,
    RegionViolation,
    check_pair_change,
)
from ..osim.kernel import Kernel, TCB_TAG
from .barriers import BarrierEngine, BarrierMode
from .heap import Heap
from .objects import LabeledArray, LabeledObject
from .regions import CatchHandler, SecurityRegion
from .threads import RegionFrame, SimThread


@dataclass
class VMStats:
    """Counters behind the Fig. 9 overhead decomposition."""

    region_entries: int = 0
    region_exits: int = 0
    region_exceptions: int = 0
    kernel_syncs: int = 0
    kernel_restores: int = 0
    copy_and_labels: int = 0
    #: Wall-clock seconds spent inside (outermost) security regions; with a
    #: run's total time this yields Table 3's "% time in SRs" column.
    region_seconds: float = 0.0

    def reset(self) -> None:
        self.region_entries = 0
        self.region_exits = 0
        self.region_exceptions = 0
        self.kernel_syncs = 0
        self.kernel_restores = 0
        self.copy_and_labels = 0
        self.region_seconds = 0.0


class LaminarVM:
    """One process's trusted runtime."""

    def __init__(
        self,
        kernel: Kernel,
        mode: BarrierMode = BarrierMode.STATIC,
        name: str = "vm",
    ) -> None:
        self.kernel = kernel
        self.heap = Heap()
        self.barriers = BarrierEngine(self.heap, mode)
        self.stats = VMStats()
        self.name = name
        #: The process leader: the main thread of the application.
        #: shared with the kernel: one machine-wide audit trail.
        self.audit = kernel.audit
        self.main_task = kernel.spawn_task(f"{name}-main")
        self.main_thread = SimThread(self.main_task)
        #: The trusted label-drop thread (Section 4.4).  Spawned at VM boot,
        #: before any untrusted code runs, with the special integrity tag.
        self.tcb_task = kernel.spawn_task(
            f"{name}-tcb",
            labels=LabelPair(Label.EMPTY, Label.of(TCB_TAG)),
            pgid=self.main_task.pgid,
        )
        self._thread_stack: list[SimThread] = [self.main_thread]

    # ------------------------------------------------------------- threads

    @property
    def current_thread(self) -> SimThread:
        return self._thread_stack[-1]

    def enter_thread(self, thread: SimThread) -> None:
        self._thread_stack.append(thread)

    def leave_thread(self, thread: SimThread) -> None:
        top = self._thread_stack.pop()
        assert top is thread, "unbalanced thread context"

    @contextmanager
    def running(self, thread: SimThread) -> Iterator[SimThread]:
        """Execute the block as ``thread`` (the cooperative-scheduling
        analog of a context switch)."""
        self.enter_thread(thread)
        try:
            yield thread
        finally:
            self.leave_thread(thread)

    def create_thread(
        self, name: str = "", caps_subset: Optional[CapabilitySet] = None
    ) -> SimThread:
        """Spawn a new VM thread (kernel thread in this address space).
        Like fork, the child starts with a subset of the creator's
        capabilities (Section 4.4's principal hierarchy)."""
        creator = self.current_thread
        if creator.in_region:
            raise LaminarUsageError(
                "threads must be created outside security regions"
            )
        task = self.kernel.sys_spawn_thread(creator.task, caps_subset)
        if name:
            task.name = name
        return SimThread(task)

    # ------------------------------------------------------------- regions

    def region(
        self,
        thread: Optional[SimThread] = None,
        secrecy: Label = Label.EMPTY,
        integrity: Label = Label.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
        catch: Optional[CatchHandler] = None,
        name: str = "",
    ) -> SecurityRegion:
        """Open a security region (``secure{...}catch{...}``) for ``thread``
        (default: the current thread)."""
        return SecurityRegion(
            self,
            thread if thread is not None else self.current_thread,
            secrecy=secrecy,
            integrity=integrity,
            caps=caps,
            catch=catch,
            name=name,
        )

    # -------------------------------------------------------------- allocation

    def alloc(
        self,
        fields: Optional[dict[str, Any]] = None,
        labels: Optional[LabelPair] = None,
        name: str = "",
    ) -> LabeledObject:
        """Allocate an object.  Inside a region the default labels are the
        region's; outside, objects are unlabeled.  Explicit labels must
        conform to the DIFC rules (checked by the allocation barrier)."""
        header = self.barriers.alloc_barrier(self.current_thread, labels, what=name)
        return LabeledObject(self, header, fields or {}, name=name)

    def alloc_array(
        self,
        items: Iterable[Any] = (),
        labels: Optional[LabelPair] = None,
        name: str = "",
    ) -> LabeledArray:
        header = self.barriers.alloc_barrier(self.current_thread, labels, what=name)
        return LabeledArray(self, header, items, name=name)

    # ----------------------------------------------------------- copyAndLabel

    def copy_and_label(
        self,
        obj: LabeledObject | LabeledArray,
        secrecy: Label = Label.EMPTY,
        integrity: Label = Label.EMPTY,
        name: str = "",
    ) -> LabeledObject | LabeledArray:
        """Clone ``obj`` with new labels (Fig. 2's ``copyAndLabel``).

        Labels are immutable, so relabeling is cloning.  The change from the
        object's labels to the new ones must conform to the label-change
        rule under the current thread's capabilities — this is Laminar's
        declassification/endorsement primitive, and the only way data moves
        *down* the lattice.  All labeled data access happens in regions, so
        a labeled source or destination requires being inside one.
        """
        thread = self.current_thread
        self.stats.copy_and_labels += 1
        new_pair = LabelPair(secrecy, integrity)
        if (not obj.labels.is_empty or not new_pair.is_empty) and not thread.in_region:
            raise RegionViolation(
                "copyAndLabel on labeled data outside a security region"
            )
        check_pair_change(
            obj.labels, new_pair, thread.capabilities, context="copyAndLabel"
        )
        lowered = obj.labels.secrecy.difference(new_pair.secrecy)
        raised = new_pair.integrity.difference(obj.labels.integrity)
        if not lowered.is_empty:
            self.audit.record(
                AuditKind.DECLASSIFY, "vm", thread.name,
                f"{obj.labels!r} -> {new_pair!r} (dropped S{lowered!r})",
            )
        if not raised.is_empty:
            self.audit.record(
                AuditKind.ENDORSE, "vm", thread.name,
                f"{obj.labels!r} -> {new_pair!r} (added I{raised!r})",
            )
        header = self.heap.allocate_header(new_pair)
        self.barriers.stats.alloc_barriers += 1
        if isinstance(obj, LabeledArray):
            return LabeledArray(self, header, obj.raw_items(), name=name)
        return LabeledObject(self, header, obj.raw_fields(), name=name)

    # ------------------------------------------------------ VM <-> OS interface

    def syscall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Issue a system call as the current thread, synchronizing the
        kernel task's labels/capabilities with the current security region
        first (the lazy sync of Section 4.4)."""
        thread = self.current_thread
        self._ensure_kernel_sync(thread)
        method = getattr(self.kernel, f"sys_{name}")
        return method(thread.task, *args, **kwargs)

    def _ensure_kernel_sync(self, thread: SimThread) -> None:
        if not thread.frames:
            return
        frame = thread.frames[-1]
        if frame.kernel_synced:
            return
        frame.saved_kernel_labels = thread.task.labels
        frame.saved_kernel_caps = thread.task.capabilities
        self.kernel.sys_set_security_tcb(
            self.tcb_task, thread.tid, frame.labels, frame.caps
        )
        frame.kernel_synced = True
        self.stats.kernel_syncs += 1

    def exit_region_kernel_restore(self, thread: SimThread, frame: RegionFrame) -> None:
        """Called by :class:`SecurityRegion` exit: if the region ever synced
        its labels into the kernel, the TCB thread drops them and restores
        the saved kernel state — even when the thread lacks the minus
        capabilities for the region's labels (Section 4.4)."""
        if not frame.kernel_synced:
            return
        assert frame.saved_kernel_labels is not None
        assert frame.saved_kernel_caps is not None
        self.kernel.sys_drop_label_tcb(self.tcb_task, thread.tid)
        self.kernel.sys_set_security_tcb(
            self.tcb_task,
            thread.tid,
            frame.saved_kernel_labels,
            frame.saved_kernel_caps,
        )
        self.stats.kernel_restores += 1

    # ----------------------------------------------------- process termination

    def exit_process(self, code: int = 0) -> None:
        """Terminate the whole process (the ``System.exit()`` of the
        paper's catch-block discussion).

        Section 4.3.3 notes that exiting inside a region opens a
        termination channel, and sketches the restrictive fix: "a more
        restrictive model would prevent this termination channel by
        ensuring that only a security region with full declassification
        capabilities kills the process."  This VM implements that model:
        outside regions anyone may exit; inside a region the current
        capability set must hold the minus capability for every tag of the
        current labels (the thread could have declassified everything it
        knows, so termination reveals nothing it couldn't already say).
        """
        thread = self.current_thread
        if thread.in_region:
            labels = thread.labels
            caps = thread.capabilities
            blocked = [
                tag
                for tag in (*labels.secrecy, *labels.integrity)
                if not caps.can_remove(tag)
            ]
            if blocked:
                raise RegionViolation(
                    f"exit_process inside a region labeled {labels!r} "
                    f"without full declassification capabilities (missing "
                    f"{', '.join(str(t) + '-' for t in blocked)}) would be "
                    f"a termination channel"
                )
        self.audit.record(
            AuditKind.EXIT, "vm", thread.name, f"exit_process({code})"
        )
        self.kernel.sys_exit(thread.task, code)
        raise ProcessExit(code)

    # --------------------------------------------------------------- misc

    def reset_stats(self) -> None:
        self.stats.reset()
        self.barriers.stats.reset()
        self.heap.stats.reset()
