#!/usr/bin/env python3
"""FreeCS-style chat server: roles as integrity tags (Section 7.4).

Spins up the retrofitted chat server, walks through the paper's headline
policy — "a user who is in the role of a VIP and has superuser power on a
group can ban another user" — and shows that the DIFC write rule, not a
conditional, is what rejects everyone else.

Run with::

    python examples/chat_server.py
"""

from repro.apps.freecs import ChatDenied, LaminarFreeCS


def show(server, action: str, *args) -> None:
    user, command, group, *rest = args
    arg = rest[0] if rest else ""
    try:
        result = server.command(user, command, group, arg)
        suffix = f" -> {result}" if result is not None else ""
        print(f"  {action:<34} allowed{suffix}")
    except ChatDenied as exc:
        print(f"  {action:<34} DENIED ({exc})")


def main() -> None:
    server = LaminarFreeCS()
    server.login("root", vip=True)          # VIP; superuser of groups it creates
    server.create_group("root", "general")
    server.login("mallory")                  # ordinary user
    server.login("vicky", vip=True)          # VIP but *not* superuser here

    print("policy: ban requires VIP role AND group superuser power\n")
    show(server, "mallory joins #general", "mallory", "join", "general")
    show(server, "mallory chats", "mallory", "say", "general", "hi all")
    show(server, "mallory tries to ban root", "mallory", "ban", "general", "root")
    show(server, "vicky (VIP, not su) tries to ban", "vicky", "ban", "general", "mallory")
    show(server, "root bans mallory", "root", "ban", "general", "mallory")
    show(server, "mallory tries to rejoin", "mallory", "join", "general")
    show(server, "root checks who is present", "root", "who", "general")
    show(server, "root unbans mallory", "root", "unban", "general", "mallory")
    show(server, "mallory rejoins", "mallory", "join", "general")
    show(server, "mallory tries to set the theme", "mallory", "theme", "general", "pink")
    show(server, "root sets the theme", "root", "theme", "general", "dark")

    print(f"\nserver stats: {server.vm.stats.region_entries} regions, "
          f"{server.vm.barriers.stats.total} barriers, "
          f"{len(server.messages)} chat messages delivered")


if __name__ == "__main__":
    main()
