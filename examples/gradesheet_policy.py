#!/usr/bin/env python3
"""GradeSheet: Table 4's policy demonstrated cell by cell.

Prints the access matrix the labels induce — professor, TAs, students —
and shows the information leak Laminar found in the original policy
(students computing class averages) being blocked.

Run with::

    python examples/gradesheet_policy.py
"""

from repro.apps.gradesheet import (
    AccessDenied,
    LaminarGradeSheet,
    UnmodifiedGradeSheet,
)

STUDENTS = 4
PROJECTS = 3


def attempt(fn, *args) -> str:
    try:
        result = fn(*args)
        return "✓" if result is None else f"✓({result})"
    except AccessDenied:
        return "✗"


def main() -> None:
    sheet = LaminarGradeSheet(students=STUDENTS, projects=PROJECTS)

    print("Read-access matrix (rows: principals, columns: cells):")
    principals = (
        ["professor"]
        + [f"ta{j}" for j in range(PROJECTS)]
        + [f"student{i}" for i in range(STUDENTS)]
    )
    header = "".join(
        f"  c{i}{j}" for i in range(STUDENTS) for j in range(PROJECTS)
    )
    print(f"{'':<10}{header}")
    for who in principals:
        row = ""
        for i in range(STUDENTS):
            for j in range(PROJECTS):
                ok = attempt(sheet.read_grade, who, i, j)
                row += f"  {'R' if ok.startswith('✓') else '.':>3}"
        print(f"{who:<10}{row}")

    print("\nWrite access (TA j may only grade project j):")
    for who in ("professor", "ta0", "ta1", "student0"):
        marks = [
            attempt(sheet.write_grade, who, 0, j, 77) for j in range(PROJECTS)
        ]
        print(f"  {who:<10} projects 0..{PROJECTS-1}: {marks}")

    print("\nThe leak Laminar found — class averages:")
    print(f"  professor average(project 0): "
          f"{attempt(sheet.project_average, 'professor', 0)}")
    print(f"  student0 average(project 0):  "
          f"{attempt(sheet.project_average, 'student0', 0)}  <- blocked")

    legacy = UnmodifiedGradeSheet(students=STUDENTS, projects=PROJECTS)
    print(f"  (original ad-hoc policy leaked it: "
          f"{legacy.project_average('student0', 0):.1f})")

    stats = sheet.vm.barriers.stats
    print(f"\nVM work: {stats.total} barriers "
          f"({stats.label_checks} label checks, "
          f"{stats.space_checks} space checks), "
          f"{sheet.vm.stats.region_entries} region entries")


if __name__ == "__main__":
    main()
