#!/usr/bin/env python3
"""Calendar scheduling: the Section 7.3 case study as a runnable scenario.

Three users share a scheduling service.  Each calendar — the ``.ics`` file
*and* everything parsed from it — carries the owner's secrecy tag; the
scheduler thread holds read capabilities for the two participants and a
declassification capability for just one of them, and writes the agreed
slot to an output file labeled for the other.

Also demonstrates the integrity half of the Section 3.3 story: the
service only loads "plugin" files endorsed with the service's integrity
tag, so a tampered plugin is rejected at ``open`` time.

Run with::

    python examples/calendar_scheduling.py
"""

from repro import (
    CapabilitySet,
    IFCViolation,
    Kernel,
    Label,
    LabelPair,
    LaminarAPI,
    LaminarVM,
    SyscallError,
)
from repro.apps.calendar_app import LaminarCalendar


def scheduling_demo() -> None:
    print("== multi-user scheduling ==")
    cal = LaminarCalendar(seed=2024)
    for user in ("alice", "bob", "carol"):
        cal.add_user(user)
        print(f"  {user}: calendar created, labeled with tag {cal.tags[user]}")

    slot = cal.schedule_meeting("alice", "bob")
    print(f"  alice+bob meeting: {slot}")
    slot = cal.schedule_meeting("alice", "carol")
    print(f"  alice+carol meeting: {slot}")
    print(f"  alice's inbox: {cal.read_meetings('alice')}")

    # Privacy: bob cannot view alice's calendar, even though the same
    # server process holds both (heterogeneous labels in one address
    # space — the thing address-space DIFC cannot do).
    try:
        cal.view_calendar("bob", "alice")
        raise AssertionError("bob read alice's calendar!")
    except IFCViolation:
        print("  bob denied access to alice's calendar ✓")


def plugin_integrity_demo() -> None:
    print("\n== plugin integrity (Section 3.3) ==")
    kernel = Kernel()
    vm = LaminarVM(kernel)
    api = LaminarAPI(vm)

    # The service mints an integrity tag; addons.example.org vouches for
    # plugins by endorsing them with it.
    vouch = api.create_and_add_capability("vouched")
    endorsed = LabelPair(Label.EMPTY, Label.of(vouch))

    # The relative-path discipline of Section 5.2: grab the plugin
    # directory *before* raising integrity (a high-integrity task may not
    # re-read unlabeled directories — no read down — but holding the
    # directory is the authorization, openat-style).
    vm.syscall("mkdir", "/tmp/plugins")
    vm.syscall("chdir", "/tmp/plugins")

    # Publishing a high-integrity file requires *being* high-integrity:
    # the publisher endorses by running in a region carrying the tag.
    with vm.region(integrity=endorsed.integrity,
                   caps=CapabilitySet.dual(vouch), name="publish"):
        fd = api.create_file_labeled("plugin-good.py", endorsed)
        api.write(fd, b"def find_slot(cal): ...")
        api.close(fd)
    print("  endorsed plugin published with", endorsed)

    # An attacker drops an unendorsed plugin next to it.
    evil_fd = api.open("plugin-evil.py", "w")
    api.write(evil_fd, b"def find_slot(cal): exfiltrate(cal)")
    api.close(evil_fd)

    # The service runs with the integrity label {I(vouched)} and therefore
    # cannot even read the unendorsed file (no read down).
    service = vm.create_thread(name="service",
                               caps_subset=CapabilitySet.plus(vouch))
    vm.kernel.sys_chdir(service.task, "/tmp/plugins")
    with vm.running(service):
        with vm.region(integrity=Label.of(vouch),
                       caps=CapabilitySet.plus(vouch), name="load-plugins"):
            fd = api.open("plugin-good.py", "r")
            print(f"  endorsed plugin loads: {api.read(fd)[:24]!r}...")
            api.close(fd)
            try:
                api.open("plugin-evil.py", "r")
                raise AssertionError("unendorsed plugin loaded!")
            except SyscallError as exc:
                print(f"  unendorsed plugin rejected ({exc})")


if __name__ == "__main__":
    scheduling_demo()
    plugin_integrity_demo()
    print("\ncalendar scenario complete.")
