#!/usr/bin/env python3
"""Battleship: secret boards, one declassified bit per shot (Section 7.2).

Plays a full deterministic game under Laminar, then demonstrates that a
player who tries to read the opponent's board directly — what the
*original* JavaBattle code does every round — is stopped by the VM.

Run with::

    python examples/battleship_game.py
"""

from repro.apps.battleship import LaminarBattleship, UnmodifiedBattleship
from repro.core import RegionViolation


def main() -> None:
    seed = 99
    game = LaminarBattleship(grid=10, fleet=(4, 3, 3, 2), seed=seed)
    legacy = UnmodifiedBattleship(grid=10, fleet=(4, 3, 3, 2), seed=seed)

    winner = game.play()
    legacy_winner = legacy.play()
    print(f"Laminar game:   player {winner} wins after {game.rounds} rounds")
    print(f"original game:  player {legacy_winner} wins after "
          f"{legacy.rounds} rounds")
    assert (winner, game.rounds) == (legacy_winner, legacy.rounds), \
        "the DIFC retrofit changed gameplay!"
    print("identical games: the retrofit changed enforcement, not behavior ✓")

    # Attempt the original's direct board inspection under Laminar.
    fresh = LaminarBattleship(grid=10, fleet=(4, 3, 3, 2), seed=seed)
    try:
        ships = fresh.peek_opponent_board(0)
        raise AssertionError(f"player 0 read the opponent's ships: {ships}")
    except RegionViolation as exc:
        print(f"cheating blocked ✓ ({type(exc).__name__}: labeled board is "
              f"unreachable outside a region)")

    stats = game.vm.stats
    print(f"\nGame cost: {stats.region_entries} security regions entered, "
          f"{stats.copy_and_labels} declassifications "
          f"(one per shot + one per victory check), "
          f"{game.vm.barriers.stats.total} barriers executed")


if __name__ == "__main__":
    main()
