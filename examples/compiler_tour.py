#!/usr/bin/env python3
"""A tour of the mini-JIT: what the Laminar compiler does to your code.

Assembles a small program, then shows each Section 5.1 mechanism in
sequence — barrier insertion (static vs dynamic flavors), flow-sensitive
redundant-barrier elimination, inlining widening the elimination's scope,
and method cloning for dual contexts — printing the instruction streams
so the transformations are visible.

Run with::

    python examples/compiler_tour.py
"""

from repro.jit import (
    CompileContext,
    Compiler,
    JITConfig,
    clone_for_contexts,
    count_barriers,
    eliminate_redundant_barriers,
    insert_barriers,
    parse_program,
)

SOURCE = """
class Point { x, y }

method main() {
entry:
  new p, Point
  const ten, 10
  putfield p, x, ten
  putfield p, y, ten     # write barrier redundant: p freshly allocated
  call d, dist2, p
  ret d
}

method dist2(p) {
entry:
  getfield a, p, x
  getfield b, p, y       # read barrier redundant: p already read
  binop aa, mul, a, a
  binop bb, mul, b, b
  binop s, add, aa, bb
  ret s
}
"""


def dump(program, title: str) -> None:
    print(f"--- {title} ({count_barriers(program)} barriers) ---")
    for method in program.methods.values():
        print(f"method {method.name}({', '.join(method.params)}):")
        for label, block in method.blocks.items():
            print(f"  {label}:")
            for instr in block.instrs:
                print(f"    {instr!r}")
    print()


def main() -> None:
    # 1. bare program
    program = parse_program(SOURCE)
    dump(program, "as written")

    # 2. barrier insertion, dynamic flavor
    program = parse_program(SOURCE)
    inserted = insert_barriers(program, CompileContext.UNKNOWN)
    dump(program, f"after dynamic barrier insertion (+{inserted})")

    # 3. redundancy elimination
    removed = eliminate_redundant_barriers(program)
    dump(program, f"after flow-sensitive elimination (-{removed})")

    # 4. inlining first lets elimination see across the call
    program = parse_program(SOURCE)
    compiler = Compiler(JITConfig.DYNAMIC, inline=True)
    program, report = compiler.compile(program)
    print(f"--- full dynamic pipeline: {report.passes} ---")
    print(f"inlined {report.inlined_calls} call(s); "
          f"{report.barriers_inserted} barriers inserted, "
          f"{report.barriers_removed} removed, "
          f"{report.barriers_final} remain; "
          f"{report.machine_ops} pseudo-machine ops emitted\n")

    # 5. method cloning: one in-region and one out-of-region variant
    program = clone_for_contexts(parse_program(SOURCE))
    print(f"--- after cloning: {sorted(program.methods)} ---")
    print("each $in variant compiles with in-region static barriers; the "
          "plain variant with out-of-region ones.")


if __name__ == "__main__":
    main()
