#!/usr/bin/env python3
"""Declassifier modules + the audit trail: the §3.3 service, extended.

A scheduling service hosts *user-supplied declassifier modules*.  The host
is completely DIFC-ignorant — it invokes modules by name and ships
whatever they release.  Alice's module releases only her free slots;
Bob's buggier module tries to release everything, and gets stopped by his
own capability set.  Everything lands in the audit log.

Run with::

    python examples/declassifier_service.py
"""

from repro import CapabilitySet, Kernel, Label, LabelPair, LaminarAPI, LaminarVM
from repro.runtime import Declassifier, DeclassifierRegistry


def main() -> None:
    kernel = Kernel()
    vm = LaminarVM(kernel)
    api = LaminarAPI(vm)

    alice = api.create_and_add_capability("alice")
    bob = api.create_and_add_capability("bob")

    # Each user's calendar: a labeled heap object.
    with vm.region(secrecy=Label.of(alice), caps=CapabilitySet.dual(alice)):
        alice_cal = vm.alloc(
            {"mon": ["9 dentist", "10 free"], "tue": ["14 free", "15 therapy"]},
            name="alice-cal",
        )
    with vm.region(secrecy=Label.of(bob), caps=CapabilitySet.dual(bob)):
        bob_cal = vm.alloc(
            {"mon": ["10 free"], "tue": ["14 interview at rival corp"]},
            name="bob-cal",
        )

    registry = DeclassifierRegistry(vm)

    # Alice ships a careful module with her full capabilities: it filters
    # before releasing.
    registry.register(Declassifier(
        "alice-free-slots",
        CapabilitySet.dual(alice),
        lambda fields: {
            day: [slot for slot in slots if slot.endswith("free")]
            for day, slots in fields.items()
        },
    ))
    # Bob's module releases everything — but he only granted it bob+ (he
    # kept bob- to himself), so the release is impossible.
    registry.register(Declassifier(
        "bob-dump-all",
        CapabilitySet.plus(bob),
        lambda fields: dict(fields),
    ))

    # The DIFC-ignorant host thread runs both modules.
    host = vm.create_thread(
        "scheduler-host",
        caps_subset=CapabilitySet.dual(alice).union(CapabilitySet.plus(bob)),
    )
    with vm.running(host):
        released = registry.run("alice-free-slots", alice_cal)
        print("alice's module released:", released.raw_fields())
        declined = registry.run("bob-dump-all", bob_cal)
        print("bob's module released:", declined)

    print("\n=== audit trail (what the auditor reads) ===")
    print(kernel.audit.render())
    print(f"\n{len(kernel.audit.declassifications())} declassification(s), "
          f"{len(kernel.audit.denials())} denial(s) — every release "
          f"traceable to a named module.")


if __name__ == "__main__":
    main()
