#!/usr/bin/env python3
"""Quickstart: the paper's introductory calendar story, end to end.

Alice and Bob want to schedule a meeting while keeping their calendars
mostly secret (Sections 1 and 3.3):

1. each puts a secrecy tag on their calendar file;
2. a scheduling thread taints itself with both tags to read both files —
   and from that moment cannot write to the network or any unlabeled sink;
3. the thread computes a common slot and *declassifies only that slot*
   using the one minus-capability Alice chose to share.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CapabilitySet,
    IFCViolation,
    Kernel,
    Label,
    LabelPair,
    LaminarAPI,
    LaminarVM,
    SyscallError,
)


def main() -> None:
    kernel = Kernel()
    vm = LaminarVM(kernel)
    api = LaminarAPI(vm)

    # -- Alice and Bob label their calendars -------------------------------------
    alice_tag = api.create_and_add_capability("alice")
    bob_tag = api.create_and_add_capability("bob")
    print(f"allocated tags: {alice_tag}, {bob_tag}")

    for user, tag, busy in (
        ("alice", alice_tag, "mon9 mon10 tue14"),
        ("bob", bob_tag, "mon9 tue14 wed11"),
    ):
        pair = LabelPair(Label.of(tag))
        fd = api.create_file_labeled(f"/tmp/{user}.cal", pair)
        with vm.region(secrecy=pair.secrecy, caps=CapabilitySet.dual(tag),
                       name=f"populate-{user}"):
            api.write(fd, busy.encode())
        api.close(fd)
        print(f"/tmp/{user}.cal labeled {pair!r}")

    # -- a scheduler thread with limited capabilities ----------------------------
    # It may *read* both calendars (both plus capabilities) but declassify
    # only through alice's minus capability, which she granted.
    sched_caps = CapabilitySet.plus(alice_tag, bob_tag).union(
        CapabilitySet.minus(alice_tag)
    )
    scheduler = vm.create_thread(name="scheduler", caps_subset=sched_caps)

    with vm.running(scheduler):
        with vm.region(secrecy=Label.of(alice_tag, bob_tag), caps=sched_caps,
                       name="schedule"):
            fd_a = api.open("/tmp/alice.cal", "r")
            busy_a = set(api.read(fd_a).decode().split())
            api.close(fd_a)
            fd_b = api.open("/tmp/bob.cal", "r")
            busy_b = set(api.read(fd_b).decode().split())
            api.close(fd_b)

            # Tainted with both tags: the network is now unreachable.
            try:
                api.transmit(b"calendars: " + ",".join(busy_a | busy_b).encode())
                raise AssertionError("secret data escaped!")
            except SyscallError as exc:
                print(f"network write while tainted correctly denied: {exc}")

            free = sorted({"mon9", "mon10", "tue14", "wed11", "thu15"}
                          - busy_a - busy_b)
            slot = vm.alloc({"when": free[0]}, name="slot")
            print(f"common free slot found (still secret): labels {slot.labels!r}")

            # Declassify ONLY the chosen slot.  The scheduler holds alice-,
            # so it can lower alice's tag; bob's tag would block an attempt
            # to fully declassify — demonstrate both.
            with vm.region(secrecy=Label.of(bob_tag), caps=sched_caps,
                           name="declassify"):
                try:
                    api.copy_and_label(slot)  # -> {} needs bob- too
                except IFCViolation as exc:
                    print(f"full declassification denied (no bob-): "
                          f"{type(exc).__name__}")
                for_bob = api.copy_and_label(slot, secrecy=Label.of(bob_tag))
                print(f"slot declassified to {for_bob.labels!r}: "
                      f"bob may read it")

    print("\nOutside all regions the thread is untainted again:",
          scheduler.labels)
    print("quickstart complete.")


if __name__ == "__main__":
    main()
