"""Table 4: the GradeSheet security sets, verified exhaustively.

The table assigns::

    GradeCell(i,j)   S = {s_i},  I = {p_j}
    Student(i)       C = {s_i+, s_i-}
    TA(j)            C = {s_1+..s_n+, p_j+, p_j-}
    Professor        C = {all s_i+-, all p_j+-}

and the policy that must *fall out of the labels* (no conditionals):

1. the professor reads/writes every cell;
2. a TA reads every cell but writes only project j's cells;
3. a student reads only her own cells, for any project, and writes none.

This benchmark sweeps the full principal × cell × operation cube and also
times the policy-relevant operations (the paper reports a 7% query-mix
slowdown, covered by Fig. 9; here the policy check itself is the metric).
"""

from __future__ import annotations

import pytest

from conftest import publish
from repro.apps import AccessDenied, LaminarGradeSheet

pytestmark = pytest.mark.bench

STUDENTS = 6
PROJECTS = 3


@pytest.fixture(scope="module")
def sheet():
    return LaminarGradeSheet(students=STUDENTS, projects=PROJECTS)


def _can(fn, *args) -> bool:
    try:
        fn(*args)
        return True
    except AccessDenied:
        return False


def _expected_read(who: str, student: int) -> bool:
    if who == "professor" or who.startswith("ta"):
        return True
    return who == f"student{student}"


def _expected_write(who: str, project: int) -> bool:
    if who == "professor":
        return True
    return who == f"ta{project}"


def test_table4_full_policy_cube(sheet):
    principals = (
        ["professor"]
        + [f"ta{j}" for j in range(PROJECTS)]
        + [f"student{i}" for i in range(STUDENTS)]
    )
    mismatches = []
    checked = 0
    for who in principals:
        for i in range(STUDENTS):
            for j in range(PROJECTS):
                got_r = _can(sheet.read_grade, who, i, j)
                if got_r != _expected_read(who, i):
                    mismatches.append(("read", who, i, j, got_r))
                got_w = _can(sheet.write_grade, who, i, j, 50)
                if got_w != _expected_write(who, j):
                    mismatches.append(("write", who, i, j, got_w))
                checked += 2
    text = (
        "Table 4 — GradeSheet policy cube\n"
        "================================\n"
        f"principals: {len(principals)}  cells: {STUDENTS}x{PROJECTS}\n"
        f"checks: {checked}   mismatches: {len(mismatches)}\n"
        "policy: professor R/W all; TA j R all, W project j; "
        "student i R own row only"
    )
    publish("table4_gradesheet_policy", text)
    assert mismatches == [], mismatches[:10]


def test_table4_average_declassification(sheet):
    assert _can(sheet.project_average, "professor", 0)
    for who in ["ta0", "student0", "student1"]:
        assert not _can(sheet.project_average, who, 0), (
            f"{who} must not declassify the class average (the leak "
            f"Laminar found in the original policy)"
        )


def test_table4_benchmark_policy_check(benchmark):
    """pytest-benchmark hook: one student read (region entry + barrier +
    exit — the per-operation policy cost)."""
    sheet = LaminarGradeSheet(students=STUDENTS, projects=PROJECTS)
    benchmark(sheet.read_grade, "student0", 0, 0)
