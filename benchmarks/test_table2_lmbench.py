"""Table 2: lmbench OS micro-benchmarks, unmodified Linux vs Laminar OS.

Paper numbers (overhead of the Laminar LSM over vanilla): stat 2%, fork
0.6%, exec 0.6%, 0k create 4%, 0k delete 6%, mmap 2%, prot fault 7%,
null I/O 31%.  "The only performance outlier is the null I/O benchmark
... the system call being measured does little work to amortize the cost
of the label check."

Reproduction: each row drives the same syscall path on two kernels — one
with the NullSecurityModule, one with the LaminarSecurityModule — and the
medians are normalized.  Asserted shape:

* Laminar is never (meaningfully) faster than vanilla;
* null I/O has the largest relative overhead of all rows;
* heavyweight rows (fork/exec) sit well below null I/O.
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from conftest import publish
from repro.bench import (
    LMBENCH_EXTENDED_ROWS,
    LMBENCH_ROWS,
    PAPER_TABLE2_OVERHEAD_PCT,
    Row,
    render_table,
    setup_tree,
)
from repro.osim import Kernel, LaminarSecurityModule, NullSecurityModule

pytestmark = pytest.mark.bench

TRIALS = 5


def _run_suite() -> list[Row]:
    """Vanilla and Laminar run back-to-back inside every trial: CPU
    frequency drift over seconds otherwise swamps the per-check cost."""
    rows = []
    for name, (fn, iterations) in LMBENCH_ROWS.items():
        vanilla_samples, laminar_samples = [], []
        for trial in range(TRIALS + 1):
            k_vanilla = Kernel(NullSecurityModule())
            a_vanilla = setup_tree(k_vanilla)
            k_laminar = Kernel(LaminarSecurityModule())
            a_laminar = setup_tree(k_laminar)
            gc.collect()
            start = time.perf_counter()
            fn(k_vanilla, a_vanilla, iterations)
            vanilla_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            fn(k_laminar, a_laminar, iterations)
            laminar_elapsed = time.perf_counter() - start
            if trial > 0:  # first pass is warm-up
                vanilla_samples.append(vanilla_elapsed)
                laminar_samples.append(laminar_elapsed)
        rows.append(
            Row(
                name,
                statistics.median(vanilla_samples),
                statistics.median(laminar_samples),
                paper_pct=PAPER_TABLE2_OVERHEAD_PCT[name],
            )
        )
    return rows


@pytest.fixture(scope="module")
def rows():
    return _run_suite()


def test_table2_report(rows):
    text = render_table(
        "Table 2 — lmbench micro-benchmarks (Linux vs Laminar OS)",
        rows,
    )
    publish("table2_lmbench", text)


def test_table2_null_io_is_the_outlier(rows):
    by_name = {r.name: r.pct for r in rows}
    null_io = by_name["null I/O"]
    assert null_io == max(by_name.values()), (
        f"null I/O should be the worst row (got {by_name})"
    )
    # ...and clearly worse than the heavyweight calls.
    assert null_io > by_name["fork"]
    assert null_io > by_name["exec"]


def test_table2_laminar_never_faster(rows):
    for row in rows:
        assert row.pct > -10.0, (
            f"{row.name}: Laminar measured {row.pct:.1f}% vs vanilla — "
            f"beyond noise tolerance in the wrong direction"
        )


def test_table2_extended_rows():
    """Beyond the paper's Table 2: pipe latency and signal delivery run on
    both kernels (smoke + report; no paper column exists)."""
    rows = []
    for name, (fn, iterations) in LMBENCH_EXTENDED_ROWS.items():
        import statistics

        vanilla_samples, laminar_samples = [], []
        for trial in range(TRIALS + 1):
            kv = Kernel(NullSecurityModule())
            av = setup_tree(kv)
            kl = Kernel(LaminarSecurityModule())
            al = setup_tree(kl)
            gc.collect()
            start = time.perf_counter()
            fn(kv, av, iterations)
            tv = time.perf_counter() - start
            start = time.perf_counter()
            fn(kl, al, iterations)
            tl = time.perf_counter() - start
            if trial > 0:
                vanilla_samples.append(tv)
                laminar_samples.append(tl)
        rows.append(Row(name, statistics.median(vanilla_samples),
                        statistics.median(laminar_samples)))
    text = render_table(
        "Table 2 (extended) — rows beyond the paper's selection", rows
    )
    publish("table2_lmbench_extended", text)
    for row in rows:
        assert row.pct > -15.0, f"{row.name}: {row.pct:.1f}%"


def test_table2_benchmark_null_io(benchmark):
    """pytest-benchmark hook: the outlier row under the Laminar LSM."""
    kernel = Kernel(LaminarSecurityModule())
    actor = setup_tree(kernel)
    fn, iterations = LMBENCH_ROWS["null I/O"]
    benchmark(fn, kernel, actor, iterations)
