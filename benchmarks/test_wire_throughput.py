"""Wire throughput: the lamwire binary data plane vs pickle framing.

The cluster data plane (:mod:`repro.osim.lamwire`) replaces pickle
frames with a schema'd binary codec: struct-packed headers, varint
fields, per-connection value/batch dictionaries, an epoch-guarded label
dictionary, and scatter-gather segment lists for large payloads.  This
benchmark measures the data-plane claims:

* **codec throughput** — encode+decode of a realistic DIFC request mix
  (fd batches, read-heavy batches, labeled socket batches) and its
  response stream, binary vs pickle, *interleaved rep by rep* on the
  same waves so the ratio is same-machine and same-moment.  The
  acceptance floors: combined encode+decode at least 2x pickle, at
  least 3x fewer bytes per request at steady state (dictionaries warm).
* **parity** — the merged cluster audit and traffic records are
  byte-identical to the single-kernel replay on BOTH wires at 1, 4,
  and 8 workers, and identical across wires: the codec may change
  bytes, never observables (denied ≡ empty included — the workload
  carries real denials).
* **label dictionary** — repeated label pairs cost a 3-byte reference
  after the first send; a tag-allocator epoch bump forces definitions
  to be re-sent (the staleness guard) and decode still agrees.
* **adaptive coalescing** — a Poisson arrival schedule dispatched
  through the bytes-or-deadline window produces multi-request waves
  with the same merged audit as one-wave dispatch.

Machine-readable results land in ``BENCH_wire_throughput.json`` at the
repository root (full mode only).  ``WIRE_BENCH_SMOKE=1`` runs a small
configuration for CI: every parity assertion still fires, but no
throughput floor is asserted and the committed snapshot is left alone.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench.loadgen import UserWorld, build_trace, coalesced_plan
from repro.core import CapabilitySet, Label, LabelPair
from repro.core import fastpath
from repro.core.tags import Tag, TagAllocator
from repro.osim import (
    Cluster,
    Cqe,
    ShardSpec,
    Sqe,
    boot_shard,
    make_wire,
    render_audit,
)
from repro.osim.cluster import ClusterRequest
from repro.osim.rpc import CapSync, ShardRequest, ShardResponse

from conftest import publish

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_wire_throughput.json"

SMOKE = os.environ.get("WIRE_BENCH_SMOKE") == "1"

CODEC_REQUESTS = 128 if SMOKE else 512
CODEC_REPS = 3 if SMOKE else 9
WAVE = 32
OPS_PER_REQUEST = 8
PARITY_REQUESTS = 24 if SMOKE else 96
PARITY_SHARDS = 2 if SMOKE else 8
WORKER_SWEEP = (1, 2) if SMOKE else (1, 4, 8)
WIRES = ("binary", "pickle")


# ------------------------------------------------------------ codec workload


def _label_pool() -> list[LabelPair]:
    """A small pool of distinct label pairs, reused across requests the
    way a gateway fleet reuses its zone tags — what makes a per-connection
    label dictionary pay."""
    return [
        LabelPair(Label.of(Tag(100 + i, f"zone{i}")), Label.EMPTY)
        for i in range(4)
    ] + [
        LabelPair(Label.of(Tag(100 + i, f"zone{i}"), Tag(200, "audit")))
        for i in range(4)
    ]


def _request_waves() -> list[list]:
    """The realistic DIFC mix: 40% fd write/seek batches, 40% read-heavy
    batches, 20% labeled socket batches (a LabelPair crosses the wire in
    the sqe arguments — ``sys_socket`` is batchable and label-bearing)."""
    pairs = _label_pool()
    payload = b"x" * 16
    requests = []
    for i in range(CODEC_REQUESTS):
        principal = f"gw{i % 16}"
        kind = i % 5
        if kind < 2:
            sqes = tuple(
                Sqe("write", (i + j) % 32, payload)
                if j % 2
                else Sqe("lseek", (i + j) % 32, 0)
                for j in range(OPS_PER_REQUEST)
            )
        elif kind < 4:
            sqes = tuple(
                Sqe("read", (i + j) % 32, 16)
                if j % 2
                else Sqe("lseek", (i + j) % 32, 0)
                for j in range(OPS_PER_REQUEST)
            )
        else:
            pair = pairs[i % len(pairs)]
            sqes = (
                Sqe("socket", pair),
                Sqe("send", 3, payload),
                Sqe("recv", 3),
                Sqe("transmit", payload),
                Sqe("socket", pairs[(i + 3) % len(pairs)]),
                Sqe("send", 4, payload),
                Sqe("recv", 4),
                Sqe("close", 4),
            )
        requests.append((i % PARITY_SHARDS, ShardRequest(i + 1, principal, sqes)))
    return [
        requests[start : start + WAVE]
        for start in range(0, len(requests), WAVE)
    ]


def _response_waves() -> list[list]:
    result = b"y" * 64
    responses = []
    for i in range(CODEC_REQUESTS):
        cqes = tuple(
            Cqe("read", result, 0) if j % 2 else Cqe("lseek", 0, 0)
            for j in range(OPS_PER_REQUEST)
        )
        traffic = (((i + 1, i % PARITY_SHARDS, 1), b"beat"),) if i % 5 == 4 else ()
        responses.append(
            ShardResponse(
                seq=i + 1,
                shard_id=i % PARITY_SHARDS,
                cqes=cqes,
                audit=(),
                traffic=traffic,
                deferred=17,
            )
        )
    return [
        responses[start : start + WAVE]
        for start in range(0, len(responses), WAVE)
    ]


def _codec_bench(req_waves: list, resp_waves: list) -> dict:
    """Interleaved best-of-N: each rep times every arm back to back on
    the same waves, so the binary/pickle ratio never compares numbers
    from different machine moments.  A warm pass first — steady-state
    bytes are the claim (dictionaries populated), and the lazy message
    registry must not be timed."""
    nreq = sum(len(w) for w in req_waves)
    arms = {}
    for wire in WIRES:
        enc, dec = make_wire(wire), make_wire(wire)
        req_bytes = resp_bytes = 0
        for waves in (req_waves, resp_waves):
            for wave in waves:
                decoded, _ = dec.decode(enc.encode(wave))
                assert list(decoded) == list(wave)  # round-trip, warm pass
        # Second (steady-state) pass for the byte claim — decoded too, so
        # the encoder/decoder dictionaries stay stream-aligned for the
        # timed reps below.
        for wave in req_waves:
            frame = enc.encode(wave)
            req_bytes += len(frame)
            dec.decode(frame)
        for wave in resp_waves:
            frame = enc.encode(wave)
            resp_bytes += len(frame)
            dec.decode(frame)
        arms[wire] = {
            "enc": enc,
            "dec": dec,
            "bytes_per_request": req_bytes / nreq,
            "bytes_per_response": resp_bytes / nreq,
            "best": {k: float("inf") for k in
                     ("req_encode_ns", "req_decode_ns",
                      "resp_encode_ns", "resp_decode_ns")},
        }
    for _ in range(CODEC_REPS):
        for wire in WIRES:
            arm = arms[wire]
            enc, dec, best = arm["enc"], arm["dec"], arm["best"]
            for label_enc, label_dec, waves in (
                ("req_encode_ns", "req_decode_ns", req_waves),
                ("resp_encode_ns", "resp_decode_ns", resp_waves),
            ):
                frames = []
                t0 = time.perf_counter_ns()
                for wave in waves:
                    frames.append(enc.encode(wave))
                t1 = time.perf_counter_ns()
                for frame in frames:
                    dec.decode(frame)
                t2 = time.perf_counter_ns()
                best[label_enc] = min(best[label_enc], (t1 - t0) / nreq)
                best[label_dec] = min(best[label_dec], (t2 - t1) / nreq)
    out = {}
    for wire in WIRES:
        arm = arms[wire]
        out[wire] = {
            **{k: round(v, 1) for k, v in arm["best"].items()},
            "bytes_per_request": round(arm["bytes_per_request"], 2),
            "bytes_per_response": round(arm["bytes_per_response"], 2),
            "total_ns": round(sum(arm["best"].values()), 1),
        }
    return out


# ------------------------------------------------------------- parity sweep


def _parity_trace(world: UserWorld) -> list[ClusterRequest]:
    """Data-plane traffic plus a transmit heartbeat per gateway; once gw0
    is tainted cluster-wide its writes and transmits are denials, so both
    audit and traffic parity are adversarial, not vacuous."""
    trace = build_trace(
        world,
        PARITY_REQUESTS,
        users=2_000,
        seed=42,
        write_fraction=0.3,
        tainted_fraction=0.25,
    )
    for i in range(world.gateways):
        trace.append(
            ClusterRequest(
                f"gw{i}", LabelPair.EMPTY, (Sqe("transmit", f"beat{i}".encode()),)
            )
        )
    return trace


def _parity_run(world, trace, triples, wire: str, workers: int) -> dict:
    cluster = Cluster(
        world,
        shards=PARITY_SHARDS,
        executor="same-process" if SMOKE else "multiprocess",
        workers=workers,
        defer_work=False,
        wire=wire,
        seed=7,
    )
    acks = cluster.sync_caps(triples)
    assert all(a.applied for a in acks)
    cluster.run_trace(trace, wave_size=WAVE)
    audit = cluster.merged_audit()
    traffic = cluster.merged_traffic()
    cluster.shutdown()
    return {"audit": audit, "traffic": traffic}


# ------------------------------------------------------------------ fixture


@pytest.fixture(scope="module")
def results():
    out: dict = {
        "benchmark": "wire_throughput",
        "smoke": SMOKE,
        "workload": {
            "codec_requests": CODEC_REQUESTS,
            "ops_per_request": OPS_PER_REQUEST,
            "wave": WAVE,
            "reps": CODEC_REPS,
            "parity_requests": PARITY_REQUESTS,
            "parity_shards": PARITY_SHARDS,
            "worker_sweep": list(WORKER_SWEEP),
        },
    }

    # -- codec throughput (interleaved best-of-N) ------------------------
    codec = _codec_bench(_request_waves(), _response_waves())
    out["codec"] = codec
    out["speedup_encode_decode"] = round(
        codec["pickle"]["total_ns"] / codec["binary"]["total_ns"], 3
    )
    out["bytes_ratio"] = round(
        (codec["pickle"]["bytes_per_request"]
         + codec["pickle"]["bytes_per_response"])
        / (codec["binary"]["bytes_per_request"]
           + codec["binary"]["bytes_per_response"]),
        2,
    )

    # -- parity sweep: both wires x worker counts ------------------------
    world = UserWorld(gateways=8, keys=16)
    trace = _parity_trace(world)
    taint = LabelPair(Label.of(Tag(world.tag_values[0], "zone0")))
    triples = (("gw0", taint, CapabilitySet.EMPTY),)

    single = boot_shard(world, ShardSpec(0, "edge"))
    single.handle(CapSync(1, triples))
    for seq, req in enumerate(trace, 1):
        single.execute(ShardRequest(seq, req.principal, tuple(req.sqes)))
    single_audit = render_audit(single.kernel.audit)
    reference = single.kernel.net.transmitted

    parity: dict = {}
    merged_by_wire: dict = {}
    for workers in WORKER_SWEEP:
        row: dict = {}
        for wire in WIRES:
            run = _parity_run(world, trace, triples, wire, workers)
            row[wire] = {
                "audit_parity": run["audit"] == single_audit,
                "traffic_parity": list(run["traffic"]) == list(reference)
                and run["traffic"].total_messages == reference.total_messages,
            }
            merged_by_wire[wire] = run
        parity[f"workers_{workers}"] = row
    parity["cross_wire_identical"] = (
        merged_by_wire["binary"]["audit"] == merged_by_wire["pickle"]["audit"]
        and list(merged_by_wire["binary"]["traffic"])
        == list(merged_by_wire["pickle"]["traffic"])
    )
    parity["audit_entries"] = len(single_audit)
    parity["denials"] = sum("denial" in line for line in single_audit)
    out["parity"] = parity

    # -- label dictionary: reference hits + epoch-forced re-send ----------
    # Each pass ships a *distinct* Sqe batch (the salt defeats the
    # batch-tuple dictionary, which would otherwise reduce the whole
    # tuple to one REF and never reach the label encoder) carrying the
    # *same* LabelPairs — exactly the repeated-labels traffic the label
    # dictionary exists for.
    allocator = TagAllocator(first=1000)
    zones = [allocator.alloc(f"wz{i}") for i in range(4)]
    pairs = [LabelPair(Label.of(t)) for t in zones]
    enc, dec = make_wire("binary"), make_wire("binary")
    enc.bind_allocator(allocator)
    waves = [tuple(Sqe("socket", p, salt) for p in pairs) for salt in range(3)]
    counters = fastpath.counters
    h0, m0 = counters.label_dict_hits, counters.label_dict_misses
    first, _ = dec.decode(enc.encode(waves[0]))
    h1, m1 = counters.label_dict_hits, counters.label_dict_misses
    second, _ = dec.decode(enc.encode(waves[1]))
    h2, m2 = counters.label_dict_hits, counters.label_dict_misses
    allocator.alloc("fresh")  # epoch bump -> every entry stale
    third, _ = dec.decode(enc.encode(waves[2]))
    h3, m3 = counters.label_dict_hits, counters.label_dict_misses
    out["dictionary"] = {
        "first_pass_misses": m1 - m0,
        "second_pass_hits": h2 - h1,
        "post_epoch_misses": m3 - m2,
        "epoch_resend_ok": (first, second, third) == tuple(waves)
        and (m1 - m0) == len(pairs)
        and (h2 - h1) == len(pairs)
        and (m3 - m2) == len(pairs),
    }

    # -- adaptive coalescing ----------------------------------------------
    co_world = UserWorld(gateways=8, keys=16)
    co_trace = build_trace(co_world, PARITY_REQUESTS, users=2_000, seed=11)
    flat = Cluster(co_world, shards=2, wire="binary")
    flat.run_trace(co_trace)
    flat_audit = flat.merged_audit()
    # Scope the per-connection wire stats to the coalesced run alone
    # (the micro-bench arms above share the process-global counters).
    counters.reset()
    coalesced = Cluster(co_world, shards=2, wire="binary")
    plan = coalesced_plan(co_trace, rate=200_000.0, seed=11)
    coalesced.run_trace(co_trace, **plan)
    stats = coalesced.wire_stats()
    out["coalescing"] = {
        **stats["coalescing"],
        "audit_parity_vs_one_wave": coalesced.merged_audit() == flat_audit,
    }
    out["cluster_wire"] = {
        k: v for k, v in stats.items() if k != "coalescing"
    }

    out["fastpath"] = counters.snapshot()
    return out


# -------------------------------------------------------------------- tests


class TestWireBench:
    def test_codec_round_trip_and_bytes(self, results):
        codec = results["codec"]
        # The binary wire must be dramatically denser than pickle once
        # the per-connection dictionaries are warm.
        assert results["bytes_ratio"] >= 3.0
        assert (
            codec["binary"]["bytes_per_request"]
            < codec["pickle"]["bytes_per_request"]
        )

    def test_codec_speedup(self, results):
        if SMOKE:
            pytest.skip("no throughput floor in smoke mode")
        # In-test floor is set below the >=2x acceptance number the
        # committed snapshot documents: per-call ns on shared runners
        # wobbles +/-30%, and bench_check gates drift against the
        # committed ratio.  A run under this floor is broken, not noisy.
        assert results["speedup_encode_decode"] >= 1.6

    def test_parity_all_wires_all_worker_counts(self, results):
        parity = results["parity"]
        for workers in WORKER_SWEEP:
            for wire in WIRES:
                row = parity[f"workers_{workers}"][wire]
                assert row["audit_parity"] is True, (workers, wire)
                assert row["traffic_parity"] is True, (workers, wire)
        assert parity["cross_wire_identical"] is True
        # The parity workload was adversarial, not vacuous.
        assert parity["denials"] > 0

    def test_label_dictionary_epoch_guard(self, results):
        assert results["dictionary"]["epoch_resend_ok"] is True

    def test_coalescing_preserves_observables(self, results):
        co = results["coalescing"]
        assert co["audit_parity_vs_one_wave"] is True
        assert co["waves"] >= 1
        assert co["requests"] == PARITY_REQUESTS
        assert co["coalesced_waves"] >= 1

    def test_wire_counters_flow_into_snapshot(self, results):
        fp = results["fastpath"]
        for key in (
            "bytes_on_wire",
            "frames",
            "label_dict_hits",
            "label_dict_misses",
            "coalesced_waves",
        ):
            assert key in fp
        assert fp["frames"] > 0
        assert fp["bytes_on_wire"] > 0

    def test_publish(self, results):
        codec = results["codec"]
        lines = [
            f"wire throughput ({'smoke' if SMOKE else 'full'} mode, "
            f"{CODEC_REQUESTS} requests x {OPS_PER_REQUEST} ops, "
            f"wave {WAVE}, best of {CODEC_REPS})",
            "",
            f"{'wire':>8} {'req enc':>9} {'req dec':>9} {'resp enc':>9} "
            f"{'resp dec':>9} {'B/req':>8} {'B/resp':>8}",
        ]
        for wire in WIRES:
            row = codec[wire]
            lines.append(
                f"{wire:>8} {row['req_encode_ns']:>7.0f}ns "
                f"{row['req_decode_ns']:>7.0f}ns "
                f"{row['resp_encode_ns']:>7.0f}ns "
                f"{row['resp_decode_ns']:>7.0f}ns "
                f"{row['bytes_per_request']:>8.1f} "
                f"{row['bytes_per_response']:>8.1f}"
            )
        lines += [
            "",
            f"combined encode+decode speedup: "
            f"{results['speedup_encode_decode']:.2f}x",
            f"bytes ratio (pickle/binary):    "
            f"{results['bytes_ratio']:.1f}x fewer bytes",
            f"label dictionary: {results['dictionary']['second_pass_hits']} "
            f"hits on re-send, epoch guard "
            f"{'ok' if results['dictionary']['epoch_resend_ok'] else 'BROKEN'}",
            f"coalescing: {results['coalescing']['coalesced_waves']}/"
            f"{results['coalescing']['waves']} waves coalesced, "
            f"mean wave {results['coalescing']['mean_wave']:.1f}",
            "parity: "
            + "  ".join(
                f"w{w}:"
                + "/".join(
                    "ok"
                    if results["parity"][f"workers_{w}"][wire]["audit_parity"]
                    and results["parity"][f"workers_{w}"][wire][
                        "traffic_parity"
                    ]
                    else "FAIL"
                    for wire in WIRES
                )
                for w in WORKER_SWEEP
            ),
        ]
        publish("wire_throughput", "\n".join(lines))
        if not SMOKE:
            JSON_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
