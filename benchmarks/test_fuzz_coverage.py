"""lamfuzz coverage/throughput snapshot.

A fixed-seed fuzz sweep across the full execution matrix (cooperative,
replicated-parallel, fault-composed arms) plus the planted-leak
negative-control budgets.  Everything gated here is *seed-deterministic*
— trace counts, total ops, op-kind coverage, violation count, and the
number of traces each planted leak needs before it is caught — so the
``bench_check`` spec uses exact fields only; wall-clock throughput is
reported for the experiment log but never gated (CI runners are noisy).

Machine-readable results land in ``BENCH_fuzz_coverage.json`` at the
repository root; CI regenerates and gates it with
``repro.tools.bench_check``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from conftest import publish
from repro.analysis.fuzz import (
    ARMS,
    OP_KINDS,
    fuzz_sweep,
    leak_catch_budget,
)
from repro.osim.lsm import LeakySecurityModule

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_fuzz_coverage.json"

BASE_SEED = 5000
TRACES = 16
LEAK_BUDGET = 5


@pytest.fixture(scope="module")
def sweep():
    t0 = time.perf_counter()
    report = fuzz_sweep(BASE_SEED, TRACES, arms=ARMS)
    elapsed = time.perf_counter() - t0
    assert report.ok, [
        (v.seed, [str(x) for x in v.violations]) for v in report.failures
    ]
    budgets = {}
    for leak in LeakySecurityModule.LEAKS:
        caught = leak_catch_budget(
            leak, base_seed=BASE_SEED, max_traces=LEAK_BUDGET
        )
        assert caught is not None, f"planted {leak} leak escaped the budget"
        budgets[leak] = caught
    return report, budgets, elapsed


def test_fuzz_coverage_report(sweep):
    report, budgets, elapsed = sweep
    payload = {
        "benchmark": "fuzz_coverage",
        "base_seed": BASE_SEED,
        "arms": list(ARMS),
        "traces": report.traces,
        "ops_total": report.ops_total,
        "violations": sum(len(v.violations) for v in report.verdicts),
        "kinds_covered": len(report.coverage),
        "kinds_total": len(OP_KINDS),
        "coverage": report.coverage,
        "leak_budgets": budgets,
        # Informational only — never gated (noisy on shared runners).
        "seconds": round(elapsed, 3),
        "traces_per_sec": round(report.traces / elapsed, 2),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "lamfuzz — noninterference fuzz coverage snapshot",
        "=" * 64,
        f"seeds {BASE_SEED}..{BASE_SEED + TRACES - 1}, "
        f"arms: {', '.join(ARMS)}",
        f"{'traces':>8}{'ops':>8}{'kinds':>8}{'violations':>12}"
        f"{'traces/s':>10}",
        "-" * 64,
        f"{report.traces:>8}{report.ops_total:>8}"
        f"{len(report.coverage):>3}/{len(OP_KINDS):<4}"
        f"{payload['violations']:>12}{payload['traces_per_sec']:>10}",
        "",
        "planted-leak negative controls (traces until caught):",
    ]
    lines.extend(
        f"  {leak:<12} caught in {n} trace(s)" for leak, n in budgets.items()
    )
    publish("fuzz_coverage", "\n".join(lines))

    assert payload["violations"] == 0
    assert payload["kinds_covered"] == len(OP_KINDS)
