"""Ablation: tiered execution — switch interpreter vs dispatch tables vs tier-2.

The tier-2 template JIT (:mod:`repro.jit.tier2`) promotes hot methods to
exec-generated Python closures with the observed label shape baked in:
static barrier variants become straight-line code, dynamic barriers are
specialized to the entry context behind a guard, and adjacent
instruction pairs fuse into superinstructions.  This ablation runs the
Fig. 8 loop microbenchmarks plus two security-region application slices
(``gradesheet``: one region sharing a helper with plain code — the
deopt-and-clone shape; ``battleship``: two regions with distinct tags
sharing a helper — multiple live label-shape variants) under four
execution arms:

* ``interp``        — the switch interpreter (``dispatch_table`` off);
* ``table``         — precomputed per-method handler tables;
* ``tier2_nofuse``  — the template JIT with superinstruction fusion off;
* ``tier2``         — the full tiered engine.

and demonstrates three things:

* **equivalence** — results, printed output, executed-instruction
  counts, enforcement counters (:meth:`BarrierStats.enforcement`), and
  the audit log are byte-identical in every arm (tier-2 may change *how
  fast* a barrier runs, never what it decides);
* **throughput** — tier-2 is at least 2x the interpreter on the Fig. 8
  loop microbenchmarks (geometric mean), and beats the handler tables;
* **the guard/deopt protocol fires** — the region slices compile
  multiple per-context variants, record deopts, and never leak a
  :class:`StaleCompilationError`.

Machine-readable results land in ``BENCH_jit_tier.json`` at the
repository root, including the per-tier ``tier2_*`` fastpath counters.
"""

from __future__ import annotations

import itertools
import json
import math
from pathlib import Path

import pytest

from repro.bench.harness import median_seconds
from repro.bench.workloads import (
    arith,
    battleship,
    gradesheet,
    listsum,
    matmul,
    sortbench,
)
from repro.core import CapabilitySet, fastpath
from repro.jit import Compiler, Interpreter, JITConfig, TierPolicy
from repro.osim import Kernel, LaminarSecurityModule
from repro.osim.filesystem import Inode
from repro.runtime import LaminarVM
from repro.runtime.heap import ObjectHeader

from conftest import publish

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_jit_tier.json"

TRIALS = 3

#: Aggressive promotion: bench passes are short, so methods must reach
#: tier 2 during the warm-up run.
POLICY = TierPolicy(invocation_threshold=2, backedge_threshold=8)
POLICY_NOFUSE = TierPolicy(
    invocation_threshold=2, backedge_threshold=8, fusion=False
)

#: arm -> (dispatch_table flag, tier policy).  ``interp`` is the plain
#: switch interpreter; ``table`` adds the precomputed handler tables;
#: the tier-2 arms run on top of the tables (the real tier pipeline).
ARMS: dict[str, tuple[bool, TierPolicy | None]] = {
    "interp": (False, None),
    "table": (True, None),
    "tier2_nofuse": (True, POLICY_NOFUSE),
    "tier2": (True, POLICY),
}

#: Fig. 8 loop microbenchmarks (reduced sizes; the full-size sweep lives
#: in test_fig8_jvm_overhead.py).  These carry the >= 2x acceptance bar.
FIG8_LOOPS: dict[str, tuple[str, JITConfig, dict]] = {
    "listsum": (listsum(n=200, reps=12), JITConfig.STATIC, {}),
    "sortbench": (sortbench(n=160), JITConfig.STATIC, {}),
    "matmul": (matmul(n=14), JITConfig.STATIC, {}),
    "arith": (arith(n=20000), JITConfig.STATIC, {}),
}

#: Region application slices: dynamic barriers, shared helpers, multiple
#: label shapes.  ``inline=False`` keeps the cross-context call sites —
#: inlining would compile the deopt shape away.
APPS: dict[str, tuple[str, JITConfig, dict]] = {
    "gradesheet": (
        gradesheet(n=120, reps=10), JITConfig.DYNAMIC, {"inline": False}
    ),
    "battleship": (
        battleship(n=90, rounds=8), JITConfig.DYNAMIC, {"inline": False}
    ),
}

WORKLOADS = {**FIG8_LOOPS, **APPS}


def _reset_id_counters() -> None:
    # Inode and object-header ids are process-global and leak into audit
    # text; restarting them per pass keeps the record byte-comparable.
    Inode._ino_counter = itertools.count(1)
    ObjectHeader._oid_counter = itertools.count(1)


def _run(program, policy):
    """One full pass on a fresh VM; returns (observables, interpreter)."""
    _reset_id_counters()
    kernel = Kernel(LaminarSecurityModule())
    vm = LaminarVM(kernel)
    if program.tags:
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
    interp = Interpreter(program, vm, tier2=policy)
    result = interp.run("main")
    observables = {
        "result": result,
        "output": tuple(interp.output),
        "executed": interp.executed,
        "enforcement": vm.barriers.stats.enforcement(),
        "audit": tuple(str(entry) for entry in kernel.audit.entries()),
    }
    return observables, interp


def _measure(source: str, config: JITConfig, compile_kw: dict, arm: str):
    dispatch_table, policy = ARMS[arm]
    with fastpath.configured(dispatch_table=dispatch_table):
        fastpath.counters.reset()
        program, _ = Compiler(config, **compile_kw).compile(source)
        # First pass records observables and (for the tier-2 arms)
        # profiles + compiles; compiled code caches on the program, so
        # the timed passes below run against a warm code cache — the
        # paper's "first iteration includes compilation" methodology.
        observables, interp = _run(program, policy)
        engine = interp._tier2
        tier2 = None
        if engine is not None:
            tier2 = {
                "compiles": engine.compiles,
                "entries": engine.entries,
                "deopts": engine.deopts,
                "osr_entries": engine.osr_entries,
                "variants": {
                    name: sorted(str(key) for key in keys)
                    for name, keys in sorted(engine._variants.items())
                },
                "fused_pairs": sum(
                    len(compiled.fused_pairs)
                    for compiled in program.tier2_cache.values()
                ),
            }
        seconds = median_seconds(
            lambda: _run(program, policy), trials=TRIALS, warmup=1
        )
        counters = fastpath.counters.snapshot()
    return {
        "seconds": seconds,
        "observables": observables,
        "tier2": tier2,
        "counters": counters,
    }


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


@pytest.fixture(scope="module")
def sweep():
    results: dict[str, dict[str, dict]] = {}
    for name, (source, config, compile_kw) in WORKLOADS.items():
        results[name] = {
            arm: _measure(source, config, compile_kw, arm) for arm in ARMS
        }
    fastpath.clear_caches()
    fastpath.counters.reset()

    per_workload = {}
    for name, arms in results.items():
        interp_s = arms["interp"]["seconds"]
        table_s = arms["table"]["seconds"]
        tier2_s = arms["tier2"]["seconds"]
        nofuse_s = arms["tier2_nofuse"]["seconds"]
        per_workload[name] = {
            "kind": "fig8_loop" if name in FIG8_LOOPS else "apps",
            "config": WORKLOADS[name][1].value,
            "arms": {
                arm: {"seconds": r["seconds"], "tier2": r["tier2"]}
                for arm, r in arms.items()
            },
            "speedup_tier2_vs_interp": interp_s / tier2_s,
            "speedup_tier2_vs_table": table_s / tier2_s,
            "fusion_speedup": nofuse_s / tier2_s,
        }

    fig8 = [per_workload[n] for n in FIG8_LOOPS]
    # Aggregate fastpath counters over the tier-2 arm of every workload
    # (each _measure resets before running, so the snapshots sum).
    tier2_counters: dict[str, int] = {}
    for arms in results.values():
        for key, value in arms["tier2"]["counters"].items():
            tier2_counters[key] = tier2_counters.get(key, 0) + value

    observables_identical = all(
        arms[arm]["observables"] == arms["interp"]["observables"]
        for arms in results.values()
        for arm in ARMS
    )

    payload = {
        "benchmark": "jit_tier_ablation",
        "trials": TRIALS,
        "policy": {
            "invocation_threshold": POLICY.invocation_threshold,
            "backedge_threshold": POLICY.backedge_threshold,
            "deopt_recompile_threshold": POLICY.deopt_recompile_threshold,
        },
        "arms": sorted(ARMS),
        "workloads": per_workload,
        "geomean_fig8_tier2_vs_interp": _geomean(
            [w["speedup_tier2_vs_interp"] for w in fig8]
        ),
        "geomean_fig8_tier2_vs_table": _geomean(
            [w["speedup_tier2_vs_table"] for w in fig8]
        ),
        "geomean_fig8_fusion_speedup": _geomean(
            [w["fusion_speedup"] for w in fig8]
        ),
        "observables_identical": observables_identical,
        "fastpath_counters": tier2_counters,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "Tiered-execution ablation (Fig. 8 loops + region app slices)",
        "",
        f"{'workload':<12} {'interp':>9} {'table':>9} {'nofuse':>9} "
        f"{'tier2':>9} {'vs interp':>10} {'vs table':>9}",
    ]
    for name, w in per_workload.items():
        arms = w["arms"]
        lines.append(
            f"{name:<12} {arms['interp']['seconds']:>9.4f} "
            f"{arms['table']['seconds']:>9.4f} "
            f"{arms['tier2_nofuse']['seconds']:>9.4f} "
            f"{arms['tier2']['seconds']:>9.4f} "
            f"{w['speedup_tier2_vs_interp']:>9.2f}x "
            f"{w['speedup_tier2_vs_table']:>8.2f}x"
        )
    lines += [
        "",
        f"geomean tier-2 vs interpreter (Fig. 8 loops): "
        f"{payload['geomean_fig8_tier2_vs_interp']:.2f}x",
        f"geomean tier-2 vs handler tables (Fig. 8 loops): "
        f"{payload['geomean_fig8_tier2_vs_table']:.2f}x",
        f"geomean fusion contribution (Fig. 8 loops): "
        f"{payload['geomean_fig8_fusion_speedup']:.2f}x",
        f"observables identical: {payload['observables_identical']}",
    ]
    publish("ablation_tier2", "\n".join(lines))
    return results, payload


def test_observables_identical_across_tiers(sweep):
    """The security record must not depend on the execution tier: every
    arm — including the label-specialized compiled code — must produce
    the same results, audit bytes, and barrier totals."""
    results, payload = sweep
    for name, arms in results.items():
        reference = arms["interp"]["observables"]
        for arm, r in arms.items():
            assert r["observables"] == reference, (
                f"{name}: arm {arm} changed an observable outcome"
            )
    assert payload["observables_identical"] is True


def test_tier2_doubles_interpreter_throughput(sweep):
    """The acceptance bar: >= 2x the interpreter on the Fig. 8 loop
    microbenchmarks (geometric mean)."""
    _, payload = sweep
    assert payload["geomean_fig8_tier2_vs_interp"] >= 2.0


def test_tier2_beats_dispatch_tables(sweep):
    """Tier 2 must earn its keep over tier 1, not just over the switch."""
    _, payload = sweep
    assert payload["geomean_fig8_tier2_vs_table"] > 1.0


def test_region_slices_exercise_deopt_and_clone(sweep):
    """The app slices hit the guard/deopt path: the shared helper ends up
    with one variant per label shape, and deopts were recorded."""
    results, _ = sweep
    grade = results["gradesheet"]["tier2"]["tier2"]
    assert grade["deopts"] > 0
    assert len(grade["variants"]["bump"]) == 2
    battle = results["battleship"]["tier2"]["tier2"]
    assert len(battle["variants"]["fire"]) == 3


def test_fusion_actually_fuses(sweep):
    """The fusion arm bakes superinstructions; the nofuse arm must not."""
    results, _ = sweep
    assert results["listsum"]["tier2"]["tier2"]["fused_pairs"] > 0
    assert results["listsum"]["tier2_nofuse"]["tier2"]["fused_pairs"] == 0


def test_tier2_counters_flow_into_snapshot(sweep):
    """Per-tier counters ride along in the fastpath snapshot, so every
    BENCH_*.json records how much execution ran at tier 2."""
    _, payload = sweep
    counters = payload["fastpath_counters"]
    assert counters["tier2_compiles"] > 0
    assert counters["tier2_entries"] > 0
    assert counters["tier2_deopts"] > 0


def test_json_report_written(sweep):
    payload = json.loads(JSON_PATH.read_text())
    assert payload["benchmark"] == "jit_tier_ablation"
    assert set(payload["workloads"]) == set(WORKLOADS)
    assert payload["observables_identical"] is True
    assert payload["geomean_fig8_tier2_vs_interp"] >= 2.0
