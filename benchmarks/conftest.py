"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark prints a paper-shaped table and also writes it under
``benchmarks/results/`` so EXPERIMENTS.md can quote the latest run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it for the experiment log."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
