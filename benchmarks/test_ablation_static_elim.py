"""Ablation: certificate-driven static barrier elimination (lamverify).

The interprocedural pass (see ``test_ablation_lint_elim``) removes a
barrier only when every calling context has already performed the same
check.  The certifier goes further: when a method carries a
:class:`~repro.analysis.typecheck.SecurityCertificate` — every runtime
obligation statically discharged, transitively leak-free, race-free,
context known — *all* of its barriers fall, because the certificate is a
proof that none of them can ever fire.  This ablation quantifies the
extra static barriers removed on the workload suite (Fig. 8 loops,
txnmix, and the gradesheet/battleship region apps) and checks the
acceptance criterion: certified elimination removes strictly more
barriers than interprocedural on at least one workload, with
byte-identical observables (result, printed output, audit log) on every
workload.

Machine-readable results land in ``BENCH_static_elim.json`` at the
repository root; CI regenerates and gates it with
``repro.tools.bench_check``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from conftest import publish
from repro.bench import ALL_WORKLOADS
from repro.bench.workloads import REGION_APPS
from repro.core import CapabilitySet
from repro.jit import Compiler, Interpreter, JITConfig
from repro.osim import Kernel, LaminarSecurityModule
from repro.runtime import LaminarVM

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_static_elim.json"

#: Every workload in the sweep: name -> zero-argument source generator.
WORKLOADS = {**ALL_WORKLOADS, **REGION_APPS}

MODES = ("interprocedural", "certified")


def _compile(name: str, mode):
    # inline=False keeps the dual-context call sites that make the
    # region apps interesting (see the gradesheet docstring).
    compiler = Compiler(JITConfig.DYNAMIC, optimize_barriers=mode, inline=False)
    return compiler.compile(WORKLOADS[name]())


def _execute(program):
    kernel = Kernel(LaminarSecurityModule())
    vm = LaminarVM(kernel)
    if program.tags:
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
    interp = Interpreter(program, vm)
    result = interp.run("main")
    audit = tuple(str(entry) for entry in kernel.audit.entries())
    return (result, tuple(interp.output), audit), vm.barriers.stats.total


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    for name in WORKLOADS:
        row = {}
        observables = {}
        for mode in MODES:
            program, report = _compile(name, mode)
            obs, executed = _execute(program)
            observables[mode] = obs
            key = "interproc" if mode == "interprocedural" else "certified"
            row[f"static_{key}"] = report.barriers_final
            row[f"exec_{key}"] = executed
            if mode == "certified":
                row["removed_certified"] = report.barriers_removed_certified
                row["certified_methods"] = sorted(program.certified_methods)
        assert observables["interprocedural"] == observables["certified"], (
            f"{name}: certified elimination changed observables"
        )
        row["observables_identical"] = True
        rows[name] = row
    return rows


def test_static_elim_report(sweep):
    payload = {
        "benchmark": "static_elim_ablation",
        "modes": list(MODES),
        "workloads": {
            name: {
                "static_interproc": row["static_interproc"],
                "static_certified": row["static_certified"],
                "removed_certified": row["removed_certified"],
                "exec_interproc": row["exec_interproc"],
                "exec_certified": row["exec_certified"],
                "certified_methods": row["certified_methods"],
            }
            for name, row in sweep.items()
        },
        "totals": {
            "static_interproc": sum(
                r["static_interproc"] for r in sweep.values()
            ),
            "static_certified": sum(
                r["static_certified"] for r in sweep.values()
            ),
            "removed_certified": sum(
                r["removed_certified"] for r in sweep.values()
            ),
            "exec_interproc": sum(r["exec_interproc"] for r in sweep.values()),
            "exec_certified": sum(r["exec_certified"] for r in sweep.values()),
        },
        "strictly_better": any(
            r["static_certified"] < r["static_interproc"]
            for r in sweep.values()
        ),
        "observables_identical": all(
            r["observables_identical"] for r in sweep.values()
        ),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "Ablation — certificate-driven barrier elimination (lamverify)",
        "=" * 72,
        f"{'workload':<12}{'interproc':>10}{'certified':>10}{'extra':>7}"
        f"{'exec saved':>12}  certified methods",
        "-" * 72,
    ]
    for name, row in sweep.items():
        saved = row["exec_interproc"] - row["exec_certified"]
        methods = ", ".join(row["certified_methods"]) or "-"
        lines.append(
            f"{name:<12}{row['static_interproc']:>10}"
            f"{row['static_certified']:>10}{row['removed_certified']:>7}"
            f"{saved:>12}  {methods}"
        )
    totals = payload["totals"]
    lines += [
        "",
        f"static barriers: {totals['static_interproc']} interproc -> "
        f"{totals['static_certified']} certified "
        f"({totals['removed_certified']} removed by certificates)",
        f"executed checks: {totals['exec_interproc']} -> "
        f"{totals['exec_certified']}",
        f"observables identical: {payload['observables_identical']}",
    ]
    publish("ablation_static_elim", "\n".join(lines))


def test_certified_never_adds_barriers(sweep):
    for name, row in sweep.items():
        assert row["static_certified"] <= row["static_interproc"], name
        assert row["exec_certified"] <= row["exec_interproc"], name


def test_certified_strictly_better_somewhere(sweep):
    """Acceptance criterion: on at least one workload the certifier
    removes strictly more static barriers than the interprocedural pass
    — with observables asserted identical inside the sweep fixture."""
    winners = [
        name for name, row in sweep.items()
        if row["static_certified"] < row["static_interproc"]
    ]
    assert winners, "certified elimination never beat interprocedural"


def test_certified_saves_runtime_checks(sweep):
    total_inter = sum(r["exec_interproc"] for r in sweep.values())
    total_cert = sum(r["exec_certified"] for r in sweep.values())
    assert total_cert < total_inter


def test_json_snapshot_written(sweep):
    payload = json.loads(JSON_PATH.read_text())
    assert payload["observables_identical"] is True
    assert payload["strictly_better"] is True


def test_certified_benchmark(benchmark):
    """pytest-benchmark hook: sortbench under certified elimination."""
    program, _ = Compiler(
        JITConfig.DYNAMIC, optimize_barriers="certified"
    ).compile(ALL_WORKLOADS["sortbench"]())

    def run():
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        return Interpreter(program, vm).run("main")

    benchmark(run)
