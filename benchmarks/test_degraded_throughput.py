"""Degraded-mode throughput: the file server under a steady fault rate.

``BENCH_os_throughput.json`` measures the healthy server; this benchmark
measures what the fault plane costs when it is actually *firing*: the
same multi-user labeled file server runs with a periodic-EIO plan
(every Nth ``read`` syscall fails) and a retry-on-EIO server/client
body.  Report-only — there is no pass/fail throughput bar, because the
degradation depends on the EIO rate — but determinism is asserted hard:

* every request is still served in full (retries mask every fault);
* the retry count equals the fault plan's firing count exactly —
  deterministic injection means deterministic degradation;
* security observables stay empty (EIO is availability, not a flow).

Results land in ``BENCH_degraded_throughput.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench.workloads import setup_degraded_os_server
from repro.osim import Kernel, LaminarSecurityModule

from conftest import publish

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_degraded_throughput.json"

REQUESTS = 6
CHUNKS = 96
CHUNK_SIZE = 96
USERS = 4
TRIALS = 3
#: EIO rates swept: 0 = healthy baseline (retry-capable body, no plan),
#: then one fault per N read syscalls.
EIO_SWEEP = (0, 50, 10)


def _run_once(eio_every: int) -> dict:
    kernel = Kernel(LaminarSecurityModule())
    sched, stats = setup_degraded_os_server(
        kernel,
        users=USERS,
        requests=REQUESTS,
        chunks=CHUNKS,
        chunk_size=CHUNK_SIZE,
        eio_every=eio_every,
    )
    start = time.perf_counter()
    stuck = sched.run()
    seconds = time.perf_counter() - start
    assert stuck == [], f"deadlocked tasks: {stuck}"
    assert stats["bytes_served"]() == stats["ops"] * CHUNK_SIZE
    fired = len(kernel.faults.fired) if kernel.faults is not None else 0
    return {
        "eio_every": eio_every,
        "ops": stats["ops"],
        "seconds": seconds,
        "ops_per_sec": stats["ops"] / seconds,
        "retries": len(stats["retries"]),
        "faults_fired": fired,
        "denials": dict(kernel.security.denials),
        "audit_faults": sum(
            1 for e in kernel.audit if "fault-injected" in str(e)
        ),
    }


def _measure(eio_every: int) -> dict:
    runs = [_run_once(eio_every) for _ in range(TRIALS)]
    best = dict(max(runs, key=lambda r: r["ops_per_sec"]))
    # Injection is deterministic: every trial retries identically.
    for run in runs[1:]:
        assert run["retries"] == runs[0]["retries"]
        assert run["faults_fired"] == runs[0]["faults_fired"]
    return best


@pytest.fixture(scope="module")
def sweep():
    points = {rate: _measure(rate) for rate in EIO_SWEEP}
    healthy = points[0]["ops_per_sec"]
    payload = {
        "benchmark": "degraded_throughput",
        "workload": {
            "users": USERS,
            "requests_per_client": REQUESTS,
            "chunks_per_request": CHUNKS,
            "chunk_size": CHUNK_SIZE,
            "eio_sweep": list(EIO_SWEEP),
        },
        "points": {str(rate): r for rate, r in points.items()},
        "degradation_pct": {
            str(rate): 100.0 * (1.0 - r["ops_per_sec"] / healthy)
            for rate, r in points.items()
            if rate
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "Degraded-mode throughput: retry-on-EIO file server "
        f"({USERS} users, every-Nth-read fault plan)",
        "",
        f"{'EIO every':<12} {'ops/sec':>12} {'retries':>8} "
        f"{'fired':>6} {'slowdown':>9}",
    ]
    for rate, r in points.items():
        slow = "-" if not rate else (
            f"{payload['degradation_pct'][str(rate)]:.1f}%"
        )
        label = "never" if not rate else f"{rate} reads"
        lines.append(
            f"{label:<12} {r['ops_per_sec']:>12,.0f} {r['retries']:>8} "
            f"{r['faults_fired']:>6} {slow:>9}"
        )
    publish("degraded_throughput", "\n".join(lines))
    return payload


def test_all_requests_served_under_faults(sweep):
    """Retries mask every injected EIO: full byte count at every rate."""
    for rate, point in sweep["points"].items():
        assert point["ops"] == USERS * REQUESTS * CHUNKS, rate


def test_retries_match_fault_plan_exactly(sweep):
    """Deterministic injection: one retry per firing, zero without a plan."""
    assert sweep["points"]["0"]["retries"] == 0
    assert sweep["points"]["0"]["faults_fired"] == 0
    for rate, point in sweep["points"].items():
        if rate == "0":
            continue
        assert point["retries"] == point["faults_fired"] > 0, (rate, point)
        assert point["audit_faults"] == point["faults_fired"]


def test_faults_never_change_verdicts(sweep):
    """EIO is an availability fault, not a flow: no denials at any rate."""
    for rate, point in sweep["points"].items():
        assert point["denials"] == {}, (rate, point)


def test_json_report_written(sweep):
    payload = json.loads(JSON_PATH.read_text())
    assert payload["benchmark"] == "degraded_throughput"
    assert set(payload["points"]) == {str(r) for r in EIO_SWEEP}
