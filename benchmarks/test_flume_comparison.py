"""Section 6.2's comparison point: "Flume adds a factor of 4-35x to the
latency of system calls relative to unmodified Linux", versus Laminar's
in-kernel checks at <31% (null I/O) and ≤8% elsewhere.

Reproduction: the same file operations run three ways —

1. vanilla kernel, direct syscall;
2. Laminar kernel (in-kernel LSM checks);
3. vanilla kernel behind the Flume-style user-level monitor (every call
   serializes its arguments and round-trips through the monitor).

Asserted shape: Flume's factor over vanilla is much larger than Laminar's,
and the ordering vanilla < laminar < flume holds for every operation.
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from conftest import publish
from repro.baselines import FlumeMonitor
from repro.bench import Row, render_table
from repro.osim import Kernel, LaminarSecurityModule, NullSecurityModule

pytestmark = pytest.mark.bench

TRIALS = 5
CALLS = 300


def _setup_kernel(kernel):
    task = kernel.spawn_task("bench")
    fd = kernel.sys_creat(task, "/tmp/data")
    kernel.sys_write(task, fd, b"payload")
    kernel.sys_close(task, fd)
    return task


def _bench_vanilla_like(kernel, task) -> float:
    fd = kernel.sys_open(task, "/tmp/data", "r")
    start = time.perf_counter()
    for _ in range(CALLS):
        kernel.sys_read(task, fd, 4)
        kernel.sys_stat(task, "/tmp/data")
    elapsed = time.perf_counter() - start
    kernel.sys_close(task, fd)
    return elapsed


def _bench_flume(monitor, proc) -> float:
    fd = monitor.open(proc, "/tmp/data", "r")
    start = time.perf_counter()
    for _ in range(CALLS):
        monitor.read(proc, fd, 4)
        monitor.stat(proc, "/tmp/data")
    elapsed = time.perf_counter() - start
    monitor.kernel.sys_close(proc.task, fd)
    return elapsed


@pytest.fixture(scope="module")
def factors():
    samples = {"vanilla": [], "laminar": [], "flume": []}
    for trial in range(TRIALS + 1):
        vanilla = Kernel(NullSecurityModule())
        v_task = _setup_kernel(vanilla)
        laminar = Kernel(LaminarSecurityModule())
        l_task = _setup_kernel(laminar)
        monitor = FlumeMonitor()
        proc = monitor.spawn("bench")
        _setup_kernel(monitor.kernel)  # create /tmp/data on its kernel
        gc.collect()
        t_v = _bench_vanilla_like(vanilla, v_task)
        t_l = _bench_vanilla_like(laminar, l_task)
        t_f = _bench_flume(monitor, proc)
        if trial > 0:
            samples["vanilla"].append(t_v)
            samples["laminar"].append(t_l)
            samples["flume"].append(t_f)
    return {k: statistics.median(v) for k, v in samples.items()}


def test_flume_report(factors):
    rows = [
        Row("laminar (LSM)", factors["vanilla"], factors["laminar"]),
        Row("flume (monitor)", factors["vanilla"], factors["flume"]),
    ]
    flume_factor = factors["flume"] / factors["vanilla"]
    laminar_factor = factors["laminar"] / factors["vanilla"]
    text = render_table(
        "Flume comparison — read+stat latency vs unmodified kernel",
        rows,
    )
    text += (
        f"\n\nfactors over vanilla: laminar x{laminar_factor:.2f}, "
        f"flume x{flume_factor:.2f}  (paper: laminar ≤1.31x, flume 4-35x)"
    )
    publish("flume_comparison", text)


def test_flume_much_slower_than_laminar(factors):
    assert factors["flume"] > factors["laminar"] > 0

    flume_overhead = factors["flume"] / factors["vanilla"] - 1
    laminar_overhead = max(factors["laminar"] / factors["vanilla"] - 1, 0.001)
    # The paper's gap is an order of magnitude (4-35x vs <1.31x); require
    # at least a 3x separation of overheads to call the shape reproduced.
    assert flume_overhead > 3 * laminar_overhead, (
        f"flume {flume_overhead:.2%} vs laminar {laminar_overhead:.2%}"
    )


def test_flume_factor_in_paper_band(factors):
    factor = factors["flume"] / factors["vanilla"]
    assert factor > 1.5, f"monitor indirection factor only x{factor:.2f}"


def test_flume_benchmark_monitor_read(benchmark):
    monitor = FlumeMonitor()
    proc = monitor.spawn("bench")
    _setup_kernel(monitor.kernel)
    fd = monitor.open(proc, "/tmp/data", "r")
    benchmark(monitor.read, proc, fd, 4)
