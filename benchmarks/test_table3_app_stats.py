"""Table 3: application details — code size, protected data, retrofit
size, and time in security regions.

Paper rows::

    App         LOC     Protected data          LOC added   % time in SRs
    GradeSheet  900     student grades          92  (10%)    6%
    Battleship  1,700   ship locations          95  (6%)    54%
    Calendar    6,200   schedules              290  (5%)     1%
    FreeCS      22,000  membership properties 1,200 (6%)    <1%

The reproduction's analog: source lines of each app module, the fraction
of lines that belong to the Laminar variant beyond the unmodified one, and
the measured region-time fraction of the benchmark workload.  The paper's
claim under test is *structural*: the retrofit is a small, bounded slice
of each application (≤ 10% in the paper; the reproduction's variants are
deliberately parallel implementations, so we assert the Laminar variant
stays within a small multiple of its unmodified twin), and region time
varies by orders of magnitude across apps with Battleship on top.
"""

from __future__ import annotations

import gc
import inspect
import time

import pytest

from conftest import publish
from repro.apps import battleship, calendar_app, freecs, gradesheet
from repro.apps import (
    LaminarBattleship,
    LaminarCalendar,
    LaminarFreeCS,
    LaminarGradeSheet,
    UnmodifiedBattleship,
    UnmodifiedCalendar,
    UnmodifiedFreeCS,
    UnmodifiedGradeSheet,
    run_request_mix,
)

pytestmark = pytest.mark.bench

PAPER_ROWS = {
    "GradeSheet": ("student grades", 10, 6.0),
    "Battleship": ("ship locations", 6, 54.0),
    "Calendar": ("schedules", 5, 1.0),
    "FreeCS": ("membership properties", 6, 1.0),
}


def _loc(obj) -> int:
    source = inspect.getsource(obj)
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def _region_fraction(app, run) -> float:
    app.vm.reset_stats()  # exclude construction-time regions
    gc.collect()
    start = time.perf_counter()
    run(app)
    total = time.perf_counter() - start
    return min(app.vm.stats.region_seconds / total, 1.0) if total else 0.0


@pytest.fixture(scope="module")
def table():
    rows = {}
    rows["GradeSheet"] = {
        "unmodified_loc": _loc(UnmodifiedGradeSheet),
        "laminar_loc": _loc(LaminarGradeSheet),
        "region_fraction": _region_fraction(
            LaminarGradeSheet(students=20, projects=4),
            lambda app: app.run_query_mix(200),
        ),
    }
    rows["Battleship"] = {
        "unmodified_loc": _loc(UnmodifiedBattleship),
        "laminar_loc": _loc(LaminarBattleship),
        "region_fraction": _region_fraction(
            LaminarBattleship(seed=5), lambda app: app.play()
        ),
    }
    cal = LaminarCalendar(seed=17)
    cal.add_user("alice")
    cal.add_user("bob")
    rows["Calendar"] = {
        "unmodified_loc": _loc(UnmodifiedCalendar),
        "laminar_loc": _loc(LaminarCalendar),
        "region_fraction": _region_fraction(
            cal,
            lambda app: [app.schedule_meeting("alice", "bob") for _ in range(30)],
        ),
    }
    rows["FreeCS"] = {
        "unmodified_loc": _loc(UnmodifiedFreeCS),
        "laminar_loc": _loc(LaminarFreeCS),
        "region_fraction": _region_fraction(
            LaminarFreeCS(), lambda app: run_request_mix(app, users=250)
        ),
    }
    return rows


def test_table3_report(table):
    lines = [
        "Table 3 — application details",
        "=" * 62,
        f"{'app':<12}{'unmod LOC':>10}{'laminar LOC':>12}{'delta':>8}"
        f"{'%time in SRs':>14}{'paper %SR':>10}",
        "-" * 66,
    ]
    for name, row in table.items():
        delta = row["laminar_loc"] - row["unmodified_loc"]
        lines.append(
            f"{name:<12}{row['unmodified_loc']:>10}{row['laminar_loc']:>12}"
            f"{delta:>+8}{row['region_fraction'] * 100:>13.1f}%"
            f"{PAPER_ROWS[name][2]:>9.1f}%"
        )
    publish("table3_app_stats", "\n".join(lines))


def test_table3_retrofit_is_bounded(table):
    """The paper adds ≤10% LOC; our parallel variants must stay within a
    small constant factor of their unmodified twins (the retrofit is a
    bounded slice, not a rewrite)."""
    for name, row in table.items():
        ratio = row["laminar_loc"] / row["unmodified_loc"]
        # The paper's ≤10% deltas divide by full 900-22,000-line apps; the
        # reproduction's unmodified twins are minimal, so the same bounded
        # retrofit shows up as a small constant factor, not a percentage.
        assert ratio < 4.0, (
            f"{name}: Laminar variant is {ratio:.1f}x the original — "
            f"no longer a retrofit"
        )


def test_table3_battleship_dominates_region_time(table):
    """Paper: Battleship 54% — by far the most region-bound app.  Calendar
    is excluded from the comparison: our Calendar *workload* is the
    scheduling operation itself, which is region work end to end, whereas
    the paper's 1% divides by a full desktop application's run time (a
    documented deviation; see EXPERIMENTS.md)."""
    fractions = {name: row["region_fraction"] for name, row in table.items()}
    assert fractions["Battleship"] > 0.30  # paper: 54%
    assert fractions["Battleship"] > fractions["GradeSheet"]
    assert fractions["Battleship"] > fractions["FreeCS"]


def test_table3_low_region_apps(table):
    """GradeSheet 6% and FreeCS <1% in the paper: both far below
    Battleship.  (Python region entry is ~100x costlier relative to app
    work than the paper's, so the absolute fractions run higher here.)"""
    for name in ("GradeSheet", "FreeCS"):
        assert table[name]["region_fraction"] < \
            table["Battleship"]["region_fraction"] * 0.9, name
    assert table["FreeCS"]["region_fraction"] < 0.10  # paper: <1%
