"""Ablation: redundant barrier elimination and its interaction with
inlining (Section 5.1).

The paper implements "an intraprocedural, flow-sensitive data-flow
analysis that identifies redundant barriers and removes them", and notes
that the compiler's inlining "increas[es] the scope of redundancy
elimination".  This ablation quantifies both on the workload suite:

* static barrier count before/after elimination, with and without
  inlining;
* dynamic barrier *executions* with and without elimination (the number
  of checks actually saved at run time);
* end-to-end correctness: optimized and unoptimized programs compute the
  same results.
"""

from __future__ import annotations

import pytest

from conftest import publish
from repro.baselines import vanilla_kernel
from repro.bench import ALL_WORKLOADS
from repro.jit import Compiler, Interpreter, JITConfig
from repro.runtime import LaminarVM

pytestmark = pytest.mark.bench


def _compile(name: str, optimize: bool, inline: bool):
    compiler = Compiler(
        JITConfig.DYNAMIC, optimize_barriers=optimize, inline=inline
    )
    return compiler.compile(ALL_WORKLOADS[name]())


def _execute(program):
    vm = LaminarVM(vanilla_kernel())
    interp = Interpreter(program, vm)
    result = interp.run("main")
    return result, vm.barriers.stats.total


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    for name in ALL_WORKLOADS:
        unopt_prog, unopt_rep = _compile(name, optimize=False, inline=False)
        opt_prog, opt_rep = _compile(name, optimize=True, inline=False)
        opt_inl_prog, opt_inl_rep = _compile(name, optimize=True, inline=True)
        unopt_result, unopt_execs = _execute(unopt_prog)
        opt_result, opt_execs = _execute(opt_prog)
        opt_inl_result, opt_inl_execs = _execute(opt_inl_prog)
        assert unopt_result == opt_result == opt_inl_result, name
        rows[name] = {
            "static_before": unopt_rep.barriers_final,
            "static_after": opt_rep.barriers_final,
            "static_after_inline": opt_inl_rep.barriers_final,
            "exec_before": unopt_execs,
            "exec_after": opt_execs,
            "exec_after_inline": opt_inl_execs,
        }
    return rows


def test_elimination_report(sweep):
    lines = [
        "Ablation — redundant barrier elimination (dynamic config)",
        "=" * 70,
        f"{'workload':<11}{'static pre':>11}{'post':>6}{'post+inl':>9}"
        f"{'exec pre':>12}{'post':>12}{'post+inl':>12}",
        "-" * 73,
    ]
    for name, row in sweep.items():
        lines.append(
            f"{name:<11}{row['static_before']:>11}{row['static_after']:>6}"
            f"{row['static_after_inline']:>9}{row['exec_before']:>12}"
            f"{row['exec_after']:>12}{row['exec_after_inline']:>12}"
        )
    total_before = sum(r["exec_before"] for r in sweep.values())
    total_after = sum(r["exec_after_inline"] for r in sweep.values())
    lines.append(
        f"\nruntime checks saved by elimination+inlining: "
        f"{100 * (1 - total_after / max(total_before, 1)):.1f}%"
    )
    publish("ablation_barrier_elim", "\n".join(lines))


def test_elimination_never_adds_barriers(sweep):
    for name, row in sweep.items():
        assert row["static_after"] <= row["static_before"], name
        assert row["exec_after"] <= row["exec_before"], name


def test_elimination_saves_checks_overall(sweep):
    total_before = sum(r["exec_before"] for r in sweep.values())
    total_after = sum(r["exec_after"] for r in sweep.values())
    assert total_after < total_before, "elimination saved nothing"


def test_inlining_widens_scope_overall(sweep):
    """Across the suite, inlining must enable at least as much (and
    somewhere strictly more) runtime saving as elimination alone."""
    saved_plain = sum(
        r["exec_before"] - r["exec_after"] for r in sweep.values()
    )
    saved_inline = sum(
        r["exec_before"] - r["exec_after_inline"] for r in sweep.values()
    )
    assert saved_inline >= saved_plain
    strictly_better = [
        name
        for name, r in sweep.items()
        if r["exec_after_inline"] < r["exec_after"]
    ]
    assert strictly_better, "inlining never widened elimination's scope"


def test_fresh_allocation_pattern_fully_eliminated():
    """The canonical win: initializing stores to a freshly allocated
    object need no write barriers at all."""
    src = """
    class Rec { a, b, c }
    method main() {
    entry:
      new r, Rec
      const one, 1
      putfield r, a, one
      putfield r, b, one
      putfield r, c, one
      getfield x, r, a
      ret x
    }
    """
    program, report = Compiler(JITConfig.DYNAMIC).compile(src)
    # 1 alloc barrier survives; all 3 write + 1 read barriers are redundant.
    assert report.barriers_inserted == 5
    assert report.barriers_final == 1


def test_elim_benchmark(benchmark):
    """pytest-benchmark hook: optimized listsum under dynamic barriers."""
    program, _ = Compiler(JITConfig.DYNAMIC).compile(
        ALL_WORKLOADS["listsum"]()
    )

    def run():
        vm = LaminarVM(vanilla_kernel())
        return Interpreter(program, vm).run("main")

    benchmark(run)
