"""OS-layer throughput: the multi-user labeled file server.

Table 2 measures per-syscall *latency*; this benchmark measures the OS
layer at server scale — many tasks under the cooperative scheduler
(:mod:`repro.osim.sched`), each user behind labeled pipes and a
secrecy-labeled data file.  Three configurations run the identical
workload:

* ``vanilla`` — :class:`NullSecurityModule`, sequential syscalls;
* ``laminar`` — :class:`LaminarSecurityModule`, sequential syscalls;
* ``laminar_batched`` — Laminar plus io_uring-style batched submission
  (:meth:`Kernel.sys_submit`): the server's per-request chunk-read loop
  becomes one submission, paying the user→kernel crossing once and
  memoizing the per-inode permission verdict across the batch.

Three claims are demonstrated:

* **throughput** — batched Laminar achieves at least 2x the ops/sec of
  unbatched Laminar on the same workload;
* **equivalence** — audit logs and denial counters are byte-identical
  across all three configurations (every flow in the workload is legal,
  so all three must show *empty* audit and *zero* denials — batching and
  scheduling change performance, never a verdict);
* **scaling** — ops/sec is reported across a task-count sweep.

Machine-readable results land in ``BENCH_os_throughput.json`` at the
repository root, including a :mod:`repro.core.fastpath` counter snapshot.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench.harness import fastpath_snapshot
from repro.bench.workloads import setup_os_server
from repro.core import fastpath
from repro.osim import Kernel, LaminarSecurityModule, NullSecurityModule

from conftest import publish

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_os_throughput.json"

#: Workload shape: per user one server + one client task; each request
#: is served as `CHUNKS` chunk reads + one response write.
REQUESTS = 6
CHUNKS = 96
CHUNK_SIZE = 96
USER_SWEEP = (1, 2, 4, 8)
MAIN_USERS = 4
TRIALS = 3

CONFIGS = {
    "vanilla": (NullSecurityModule, False),
    "laminar": (LaminarSecurityModule, False),
    "laminar_batched": (LaminarSecurityModule, True),
}


def _run_once(security_cls, batched: bool, users: int) -> dict:
    """One full workload execution on a fresh kernel; returns timings and
    every security-relevant observable."""
    kernel = Kernel(security_cls())
    sched, stats = setup_os_server(
        kernel,
        users=users,
        requests=REQUESTS,
        chunks=CHUNKS,
        chunk_size=CHUNK_SIZE,
        batched=batched,
    )
    start = time.perf_counter()
    stuck = sched.run()
    seconds = time.perf_counter() - start
    assert stuck == [], f"deadlocked tasks: {stuck}"
    assert stats["bytes_served"]() == stats["ops"] * CHUNK_SIZE
    return {
        "users": users,
        "tasks": stats["tasks"],
        "ops": stats["ops"],
        "seconds": seconds,
        "ops_per_sec": stats["ops"] / seconds,
        "steps": sched.steps,
        "audit": [str(entry) for entry in kernel.audit],
        "denials": dict(kernel.security.denials),
        "pipe_drops": stats.get("dropped", 0),
        "net_messages": kernel.net.transmitted.total_messages,
    }


def _measure(name: str, users: int) -> dict:
    """Best-of-TRIALS ops/sec for one configuration (first run also
    captures the security observables)."""
    security_cls, batched = CONFIGS[name]
    runs = [_run_once(security_cls, batched, users) for _ in range(TRIALS)]
    best = max(runs, key=lambda r: r["ops_per_sec"])
    best = dict(best)
    # Observables must not vary run to run either.
    for run in runs[1:]:
        assert run["audit"] == runs[0]["audit"]
        assert run["denials"] == runs[0]["denials"]
    best["audit"] = runs[0]["audit"]
    best["denials"] = runs[0]["denials"]
    return best


@pytest.fixture(scope="module")
def sweep():
    fastpath.clear_caches()
    fastpath.counters.reset()
    results: dict[str, dict] = {}
    scaling: dict[str, dict[int, float]] = {name: {} for name in CONFIGS}
    for name in CONFIGS:
        for users in USER_SWEEP:
            measured = _measure(name, users)
            scaling[name][users] = measured["ops_per_sec"]
            if users == MAIN_USERS:
                results[name] = measured

    payload = {
        "benchmark": "os_throughput",
        "workload": {
            "requests_per_client": REQUESTS,
            "chunks_per_request": CHUNKS,
            "chunk_size": CHUNK_SIZE,
            "user_sweep": list(USER_SWEEP),
            "main_users": MAIN_USERS,
        },
        "configs": results,
        "scaling_ops_per_sec": {
            name: {str(u): ops for u, ops in curve.items()}
            for name, curve in scaling.items()
        },
        "batched_speedup": (
            results["laminar_batched"]["ops_per_sec"]
            / results["laminar"]["ops_per_sec"]
        ),
        "laminar_overhead_pct": 100.0
        * (
            results["vanilla"]["ops_per_sec"] / results["laminar"]["ops_per_sec"]
            - 1.0
        ),
        "observables_identical": all(
            r["audit"] == results["vanilla"]["audit"]
            and r["denials"] == results["vanilla"]["denials"]
            for r in results.values()
        ),
        "fastpath_counters": fastpath_snapshot(),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "OS throughput: multi-user labeled file server "
        f"({MAIN_USERS} users, {2 * MAIN_USERS} tasks)",
        "",
        f"{'config':<18} {'ops/sec':>12} {'steps':>8} {'audit':>6} {'denials':>8}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:<18} {r['ops_per_sec']:>12,.0f} {r['steps']:>8} "
            f"{len(r['audit']):>6} {sum(r['denials'].values()):>8}"
        )
    lines += [
        "",
        "scaling (ops/sec by user count):",
    ]
    for name, curve in scaling.items():
        pts = "  ".join(f"{u}u:{ops:,.0f}" for u, ops in sorted(curve.items()))
        lines.append(f"  {name:<16} {pts}")
    lines += [
        "",
        f"batched speedup (laminar):   {payload['batched_speedup']:.2f}x",
        f"laminar overhead (seq):      {payload['laminar_overhead_pct']:.1f}%",
        f"observables identical:       {payload['observables_identical']}",
    ]
    publish("os_throughput", "\n".join(lines))
    return payload


def test_batched_at_least_2x(sweep):
    """The acceptance bar: batching doubles Laminar server throughput."""
    assert sweep["batched_speedup"] >= 2.0, sweep["batched_speedup"]


def test_observables_identical_across_configs(sweep):
    """Batching and the security module never change what is audited or
    denied on this all-legal workload — and the workload really is
    all-legal: nothing to audit, nothing to deny."""
    assert sweep["observables_identical"] is True
    for name, r in sweep["configs"].items():
        assert r["audit"] == [], (name, r["audit"])
        assert r["denials"] == {}, (name, r["denials"])


def test_every_config_scales_with_users(sweep):
    """More users means more total work, not a collapse: every config
    serves every sweep point to completion (throughput recorded; the
    cooperative scheduler is fair, so no user starves)."""
    for name, curve in sweep["scaling_ops_per_sec"].items():
        assert set(curve) == {str(u) for u in USER_SWEEP}
        assert all(ops > 0 for ops in curve.values()), name


def test_json_report_written(sweep):
    payload = json.loads(JSON_PATH.read_text())
    assert payload["benchmark"] == "os_throughput"
    assert payload["batched_speedup"] >= 2.0
    assert "fastpath_counters" in payload
    assert "walk_hits" in payload["fastpath_counters"]
