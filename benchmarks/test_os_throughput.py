"""OS-layer throughput: the multi-user labeled file server.

Table 2 measures per-syscall *latency*; this benchmark measures the OS
layer at server scale — many tasks under the cooperative scheduler
(:mod:`repro.osim.sched`), each user behind labeled pipes and a
secrecy-labeled data file.  Three configurations run the identical
workload:

* ``vanilla`` — :class:`NullSecurityModule`, sequential syscalls;
* ``laminar`` — :class:`LaminarSecurityModule`, sequential syscalls;
* ``laminar_batched`` — Laminar plus io_uring-style batched submission
  (:meth:`Kernel.sys_submit`): the server's per-request chunk-read loop
  becomes one submission, paying the user→kernel crossing once and
  memoizing the per-inode permission verdict across the batch.

Three claims are demonstrated:

* **throughput** — batched Laminar achieves at least 2x the ops/sec of
  unbatched Laminar on the same workload;
* **equivalence** — audit logs and denial counters are byte-identical
  across all three configurations (every flow in the workload is legal,
  so all three must show *empty* audit and *zero* denials — batching and
  scheduling change performance, never a verdict);
* **scaling** — ops/sec is reported across a task-count sweep.

A fourth arm measures the **multi-core** backend: the same server,
partitioned user-per-group across a :class:`repro.osim.psched.
ParallelScheduler` fork pool with per-syscall simulated service time
(``defer_work`` + ``work_ns``, so service time overlaps across worker
processes the way it overlaps across real cores).  The claims:

* near-linear wall-clock scaling — at least 3x at 4 workers and 5x at
  8 workers over the single-threaded cooperative baseline;
* merged audit text and transmitted traffic *byte-identical* to the
  single-threaded replay at every worker count (the workload includes
  denied transmits, silent pipe drops, and courier traffic, so the
  parity checks are not vacuous);
* nonzero compiled-hook-chain activity (:mod:`repro.osim.hookchain`).

Environment knobs for CI tiers: ``OS_MULTICORE_SMOKE=1`` runs a
same-process (inline) 2-point sweep with parity checks only and does
not rewrite the JSON; ``OS_MULTICORE_WORKERS=N`` runs a fork sweep at
(1, N) with a soft scaling floor and no JSON rewrite.

Machine-readable results land in ``BENCH_os_throughput.json`` at the
repository root, including a :mod:`repro.core.fastpath` counter snapshot
(which carries the ``hookchain_*`` counters).
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.bench.harness import fastpath_snapshot
from repro.bench.workloads import OSServerWorld, setup_os_server
from repro.core import fastpath
from repro.osim import Kernel, LaminarSecurityModule, NullSecurityModule
from repro.osim.psched import ParallelScheduler

from conftest import publish

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_os_throughput.json"

#: Workload shape: per user one server + one client task; each request
#: is served as `CHUNKS` chunk reads + one response write.
REQUESTS = 6
CHUNKS = 96
CHUNK_SIZE = 96
USER_SWEEP = (1, 2, 4, 8)
MAIN_USERS = 4
TRIALS = 3

#: Multi-core arm shape: one group per user across the fork pool, with
#: 2µs of simulated service time per deferred kernel work unit.  Sized
#: so virtual service time dominates real Python compute, which is what
#: lets worker sleeps overlap like real cores even on a 1-core host.
MC_USERS = 8
MC_REQUESTS = 12
MC_CHUNKS = 8
MC_CHUNK_SIZE = 64
MC_WORK_NS = 2000.0
MC_SWEEP = (1, 4, 8)
MC_SEED = 1729
MC_TRIALS = 2

CONFIGS = {
    "vanilla": (NullSecurityModule, False),
    "laminar": (LaminarSecurityModule, False),
    "laminar_batched": (LaminarSecurityModule, True),
}


def _run_once(security_cls, batched: bool, users: int) -> dict:
    """One full workload execution on a fresh kernel; returns timings and
    every security-relevant observable."""
    kernel = Kernel(security_cls())
    sched, stats = setup_os_server(
        kernel,
        users=users,
        requests=REQUESTS,
        chunks=CHUNKS,
        chunk_size=CHUNK_SIZE,
        batched=batched,
    )
    start = time.perf_counter()
    stuck = sched.run()
    seconds = time.perf_counter() - start
    assert stuck == [], f"deadlocked tasks: {stuck}"
    assert stats["bytes_served"]() == stats["ops"] * CHUNK_SIZE
    return {
        "users": users,
        "tasks": stats["tasks"],
        "ops": stats["ops"],
        "seconds": seconds,
        "ops_per_sec": stats["ops"] / seconds,
        "steps": sched.steps,
        "audit": [str(entry) for entry in kernel.audit],
        "denials": dict(kernel.security.denials),
        "pipe_drops": stats.get("dropped", 0),
        "net_messages": kernel.net.transmitted.total_messages,
    }


def _measure(name: str, users: int) -> dict:
    """Best-of-TRIALS ops/sec for one configuration (first run also
    captures the security observables)."""
    security_cls, batched = CONFIGS[name]
    runs = [_run_once(security_cls, batched, users) for _ in range(TRIALS)]
    best = max(runs, key=lambda r: r["ops_per_sec"])
    best = dict(best)
    # Observables must not vary run to run either.
    for run in runs[1:]:
        assert run["audit"] == runs[0]["audit"]
        assert run["denials"] == runs[0]["denials"]
    best["audit"] = runs[0]["audit"]
    best["denials"] = runs[0]["denials"]
    return best


def _multicore_mode() -> str:
    if os.environ.get("OS_MULTICORE_SMOKE") == "1":
        return "smoke"
    if os.environ.get("OS_MULTICORE_WORKERS"):
        return f"workers={int(os.environ['OS_MULTICORE_WORKERS'])}"
    return "full"


def _measure_multicore() -> dict:
    """The multi-core arm: serial cooperative baseline vs the fork pool,
    with byte-parity asserted at every sweep point."""
    mode = _multicore_mode()
    if mode == "smoke":
        executor, sweep_counts = "inline", (1, 2)
    elif mode.startswith("workers="):
        executor, sweep_counts = "fork", (1, int(mode.split("=")[1]))
    else:
        executor, sweep_counts = "fork", MC_SWEEP
    world = OSServerWorld(
        users=MC_USERS,
        requests=MC_REQUESTS,
        chunks=MC_CHUNKS,
        chunk_size=MC_CHUNK_SIZE,
    )

    def serial_run():
        ps = ParallelScheduler(
            world,
            workers=1,
            executor="inline",
            defer_work=True,
            work_ns=MC_WORK_NS,
            seed=MC_SEED,
        )
        ps.run()
        ps.shutdown()
        return ps

    baseline = min((serial_run() for _ in range(MC_TRIALS)),
                   key=lambda ps: ps.elapsed)
    base_obs = baseline.observables()

    elapsed: dict[int, float] = {}
    hookchain: Counter = Counter()
    audit_parity = traffic_parity = True
    for workers in sweep_counts:
        best = None
        for _ in range(MC_TRIALS):
            ps = ParallelScheduler(
                world,
                workers=workers,
                executor=executor,
                defer_work=True,
                work_ns=MC_WORK_NS,
                seed=MC_SEED,
            )
            ps.run()
            obs = ps.observables()
            audit_parity &= obs["audit"] == base_obs["audit"]
            traffic_parity &= obs["traffic"] == base_obs["traffic"]
            assert obs == base_obs, f"observable divergence at {workers} workers"
            agg = ps.aggregate()
            if best is None or ps.elapsed < best:
                best = ps.elapsed
                for key in ("hookchain_compiles", "hookchain_hits",
                            "hookchain_deopts"):
                    hookchain[key] = agg["fastpath"].get(key, 0)
        elapsed[workers] = best

    scaling = {w: baseline.elapsed / t for w, t in elapsed.items()}
    return {
        "mode": mode,
        "executor": executor,
        "workers_sweep": list(sweep_counts),
        "users": MC_USERS,
        "requests_per_client": MC_REQUESTS,
        "work_ns": MC_WORK_NS,
        "seed": MC_SEED,
        "ops": base_obs["ops"],
        "steps": base_obs["steps"],
        "audit_entries": len(base_obs["audit"]),
        "traffic_messages": len(base_obs["traffic"]),
        "denials": sum(dict(base_obs["denials"]).values()),
        "pipe_drops": base_obs["pipe_drops"],
        "serial_seconds": baseline.elapsed,
        "elapsed_seconds": {str(w): t for w, t in elapsed.items()},
        "scaling": {str(w): r for w, r in scaling.items()},
        "scaling_ratio_4x": scaling.get(4),
        "scaling_ratio_8x": scaling.get(8),
        "audit_parity": audit_parity,
        "traffic_parity": traffic_parity,
        "hookchain": dict(hookchain),
        "hookchain_active": hookchain["hookchain_compiles"] > 0
        and hookchain["hookchain_hits"] > 0,
    }


@pytest.fixture(scope="module")
def sweep():
    fastpath.clear_caches()
    fastpath.counters.reset()
    results: dict[str, dict] = {}
    scaling: dict[str, dict[int, float]] = {name: {} for name in CONFIGS}
    # Ablation hygiene: the three legacy configs isolate *batching*, so
    # they run with hook-chain compilation off — otherwise the compiled
    # chains speed up the sequential arm and the batched/sequential
    # ratio stops measuring batching.  The multi-core arm below runs
    # with default flags and reports the hook-chain counters.
    with fastpath.configured(hook_chain_compile=False):
        for name in CONFIGS:
            for users in USER_SWEEP:
                measured = _measure(name, users)
                scaling[name][users] = measured["ops_per_sec"]
                if users == MAIN_USERS:
                    results[name] = measured

    multicore = _measure_multicore()

    payload = {
        "benchmark": "os_throughput",
        "workload": {
            "requests_per_client": REQUESTS,
            "chunks_per_request": CHUNKS,
            "chunk_size": CHUNK_SIZE,
            "user_sweep": list(USER_SWEEP),
            "main_users": MAIN_USERS,
        },
        "multicore": multicore,
        "configs": results,
        "scaling_ops_per_sec": {
            name: {str(u): ops for u, ops in curve.items()}
            for name, curve in scaling.items()
        },
        "batched_speedup": (
            results["laminar_batched"]["ops_per_sec"]
            / results["laminar"]["ops_per_sec"]
        ),
        "laminar_overhead_pct": 100.0
        * (
            results["vanilla"]["ops_per_sec"] / results["laminar"]["ops_per_sec"]
            - 1.0
        ),
        "observables_identical": all(
            r["audit"] == results["vanilla"]["audit"]
            and r["denials"] == results["vanilla"]["denials"]
            for r in results.values()
        ),
        "fastpath_counters": fastpath_snapshot(),
    }
    # Reduced CI tiers (smoke / fixed-worker) measure a different sweep:
    # they must never overwrite the committed full-mode numbers.
    if multicore["mode"] == "full":
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "OS throughput: multi-user labeled file server "
        f"({MAIN_USERS} users, {2 * MAIN_USERS} tasks)",
        "",
        f"{'config':<18} {'ops/sec':>12} {'steps':>8} {'audit':>6} {'denials':>8}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:<18} {r['ops_per_sec']:>12,.0f} {r['steps']:>8} "
            f"{len(r['audit']):>6} {sum(r['denials'].values()):>8}"
        )
    lines += [
        "",
        "scaling (ops/sec by user count):",
    ]
    for name, curve in scaling.items():
        pts = "  ".join(f"{u}u:{ops:,.0f}" for u, ops in sorted(curve.items()))
        lines.append(f"  {name:<16} {pts}")
    lines += [
        "",
        f"batched speedup (laminar):   {payload['batched_speedup']:.2f}x",
        f"laminar overhead (seq):      {payload['laminar_overhead_pct']:.1f}%",
        f"observables identical:       {payload['observables_identical']}",
        "",
        f"multi-core ({multicore['mode']}, {multicore['executor']} executor, "
        f"{multicore['users']} groups, work_ns={multicore['work_ns']:.0f}):",
    ]
    for w in multicore["workers_sweep"]:
        ratio = multicore["scaling"][str(w)]
        secs = multicore["elapsed_seconds"][str(w)]
        lines.append(f"  {w} worker(s): {secs:.3f}s  ({ratio:.2f}x)")
    lines += [
        f"  audit parity:     {multicore['audit_parity']} "
        f"({multicore['audit_entries']} entries)",
        f"  traffic parity:   {multicore['traffic_parity']} "
        f"({multicore['traffic_messages']} messages)",
        f"  hook chains:      {multicore['hookchain'].get('hookchain_compiles', 0)} "
        f"compiled, {multicore['hookchain'].get('hookchain_hits', 0)} hits, "
        f"{multicore['hookchain'].get('hookchain_deopts', 0)} deopts",
    ]
    publish("os_throughput", "\n".join(lines))
    return payload


def test_batched_at_least_2x(sweep):
    """The acceptance bar: batching doubles Laminar server throughput."""
    assert sweep["batched_speedup"] >= 2.0, sweep["batched_speedup"]


def test_observables_identical_across_configs(sweep):
    """Batching and the security module never change what is audited or
    denied on this all-legal workload — and the workload really is
    all-legal: nothing to audit, nothing to deny."""
    assert sweep["observables_identical"] is True
    for name, r in sweep["configs"].items():
        assert r["audit"] == [], (name, r["audit"])
        assert r["denials"] == {}, (name, r["denials"])


def test_every_config_scales_with_users(sweep):
    """More users means more total work, not a collapse: every config
    serves every sweep point to completion (throughput recorded; the
    cooperative scheduler is fair, so no user starves)."""
    for name, curve in sweep["scaling_ops_per_sec"].items():
        assert set(curve) == {str(u) for u in USER_SWEEP}
        assert all(ops > 0 for ops in curve.values()), name


def test_json_report_written(sweep):
    payload = json.loads(JSON_PATH.read_text())
    assert payload["benchmark"] == "os_throughput"
    assert payload["batched_speedup"] >= 2.0
    assert "fastpath_counters" in payload
    assert "walk_hits" in payload["fastpath_counters"]
    assert "hookchain_compiles" in payload["fastpath_counters"]
    assert "multicore" in payload


def test_multicore_audit_and_traffic_parity(sweep):
    """Byte parity at every sweep point: merged audit text and merged
    transmitted traffic from the fork pool equal the single-threaded
    cooperative replay — with denials, drops, and traffic present, so
    the comparison has teeth."""
    mc = sweep["multicore"]
    assert mc["audit_parity"] is True
    assert mc["traffic_parity"] is True
    assert mc["audit_entries"] == MC_USERS * MC_REQUESTS
    assert mc["traffic_messages"] == MC_USERS * MC_REQUESTS
    assert mc["pipe_drops"] == MC_USERS * MC_REQUESTS
    assert mc["denials"] > 0
    assert mc["ops"] == MC_USERS * MC_REQUESTS * MC_CHUNKS


def test_multicore_hook_chains_engaged(sweep):
    mc = sweep["multicore"]
    assert mc["hookchain_active"] is True
    assert mc["hookchain"]["hookchain_compiles"] > 0
    assert mc["hookchain"]["hookchain_hits"] > 0


def test_multicore_scaling(sweep):
    """The acceptance floors: >=3x at 4 workers and >=5x at 8 over the
    single-threaded cooperative baseline (full mode); a reduced
    fixed-worker CI tier asserts a soft floor instead; the same-process
    smoke tier asserts parity only (covered above)."""
    mc = sweep["multicore"]
    if mc["mode"] == "full":
        assert mc["scaling_ratio_4x"] >= 3.0, mc["scaling"]
        assert mc["scaling_ratio_8x"] >= 5.0, mc["scaling"]
    elif mc["mode"].startswith("workers="):
        workers = int(mc["mode"].split("=")[1])
        if workers >= 2:
            assert mc["scaling"][str(workers)] >= 1.5, mc["scaling"]
    else:
        assert mc["mode"] == "smoke"
        for ratio in mc["scaling"].values():
            assert ratio > 0.0
