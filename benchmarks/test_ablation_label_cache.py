"""Ablation: interned labels, flow-verdict caching, and hot-path fast paths.

The fast-path layers (:mod:`repro.core.fastpath`) exploit label
immutability: hash-consed ``Label`` construction, a bounded flow-verdict
cache keyed on label pairs, a per-thread barrier cache guarded by the
label epoch, and precomputed interpreter dispatch tables.  This ablation
runs one deterministic workload mix — the Fig. 8 interpreter workloads, a
labeled security-region IR loop, and an lmbench-style OS mix with denied
opens and silently-dropped pipe traffic — under every cache configuration
and demonstrates three things:

* **equivalence** — results, printed output, executed-instruction counts,
  barrier statistics, LSM hook/denial counters, and the audit log are
  byte-identical in every configuration (caching may change *when* set
  algebra runs, never what any check decides);
* **work reduction** — with all caches on, the number of executed
  set-algebra operations (rule evaluations + subset tests + label
  materializations) strictly drops versus all-off;
* **time reduction** — median wall-clock for the mix strictly drops.

Each of the four switches is also measured solo, quantifying the
contribution of every layer.  Machine-readable results land in
``BENCH_label_cache.json`` at the repository root.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

import pytest

from repro.bench.harness import median_seconds
from repro.bench.lmbench import bench_null_io, bench_pipe_latency, bench_stat, setup_tree
from repro.bench.workloads import arith, listsum, objgraph
from repro.core import CapabilitySet, Label, LabelPair, fastpath
from repro.jit import Interpreter, JITConfig, RegionSpec, compile_source
from repro.jit.interpreter import IRObject
from repro.osim import Kernel, LaminarSecurityModule, SyscallError
from repro.osim.filesystem import Inode
from repro.runtime import LaminarAPI, LaminarVM
from repro.runtime.heap import ObjectHeader

from conftest import publish

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_label_cache.json"

SWITCHES = ("label_interning", "flow_verdict_cache",
            "thread_barrier_cache", "dispatch_table")

#: Every measured configuration: the two endpoints plus each layer solo.
CONFIGS: dict[str, dict[str, bool]] = {
    "all_on": {name: True for name in SWITCHES},
    "all_off": {name: False for name in SWITCHES},
}
for _solo in SWITCHES:
    CONFIGS[f"only_{_solo}"] = {name: name == _solo for name in SWITCHES}

TRIALS = 3
OS_ITERS = 300

#: Fig. 8 interpreter slice: three workloads spanning allocation-heavy,
#: pointer-chasing, and arithmetic-bound behavior (reduced sizes — the
#: full sweep lives in test_fig8_jvm_overhead.py).
JVM_SOURCES = {
    "listsum": listsum(n=120, reps=8),
    "objgraph": objgraph(n=100, steps=3000),
    "arith": arith(n=8000),
}

#: Labeled-region IR loop: every iteration crosses a read and a write
#: barrier against the same (thread labels, object labels) pair — the
#: exact traffic the per-thread verdict cache is built for.
REGION_ITERS = 500
REGION_SRC = f"""
class Box {{ v }}

region method work(b) {{
entry:
  new s, Box
  const zero, 0
  putfield s, v, zero
  const i, 0
  jmp loop
loop:
  const n, {REGION_ITERS}
  binop cond, lt, i, n
  br cond, body, done
body:
  getfield x, s, v
  const one, 1
  binop x, add, x, one
  putfield s, v, x
  const one2, 1
  binop i, add, i, one2
  jmp loop
done:
  getfield x, s, v
  putfield b, v, x
}}

method main(b) {{
entry:
  call _, work, b
  ret
}}
"""


def _reset_id_counters() -> None:
    # Inode and object-header ids are process-global and leak into audit
    # and violation text; restarting them per pass keeps the observable
    # record byte-comparable across configurations.
    Inode._ino_counter = itertools.count(1)
    ObjectHeader._oid_counter = itertools.count(1)


def _jvm_pass() -> dict:
    out = {}
    for name, src in JVM_SOURCES.items():
        program, _ = compile_source(src, JITConfig.STATIC)
        vm = LaminarVM(Kernel())
        interp = Interpreter(program, vm)
        result = interp.run("main")
        out[name] = (result, tuple(interp.output), interp.executed)
    return out


def _region_pass() -> tuple:
    kernel = Kernel(LaminarSecurityModule())
    vm = LaminarVM(kernel)
    api = LaminarAPI(vm)
    tag = api.create_and_add_capability("secret")
    program, _ = compile_source(REGION_SRC, JITConfig.DYNAMIC, inline=False)
    program.method("work").region_spec = RegionSpec(
        secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)
    )
    interp = Interpreter(program, vm)
    with vm.region(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)):
        header = vm.barriers.alloc_barrier(
            vm.current_thread, LabelPair(Label.of(tag)), what="box"
        )
    box = IRObject(header, "Box", {"v": 0})
    interp.run("main", box)
    # Runtime-API barrier traffic: repeated checks against the same
    # labeled object from inside a region.  The JIT's redundancy
    # elimination removes such checks statically in the IR loop above;
    # applications driving the runtime API directly have no compiler in
    # front of them, so this is exactly the per-thread cache's workload.
    with vm.region(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)):
        thread = vm.current_thread
        for _ in range(REGION_ITERS):
            vm.barriers.read_barrier(thread, header, what="box")
            vm.barriers.write_barrier(thread, header, what="box")
    stats = vm.barriers.stats
    audit = tuple(str(entry) for entry in kernel.audit.entries())
    return (
        box.fields["v"],
        tuple(interp.output),
        interp.executed,
        stats.label_checks,
        stats.read_barriers,
        stats.write_barriers,
        stats.alloc_barriers,
        audit,
    )


def _os_pass() -> tuple:
    kernel = Kernel(LaminarSecurityModule())
    actor = setup_tree(kernel)
    owner = kernel.spawn_task("owner")
    tag, _caps = kernel.sys_alloc_tag(owner, "secret")
    secret = LabelPair(Label.of(tag))
    fd = kernel.sys_create_file_labeled(owner, "/tmp/lm/secret", secret)
    kernel.sys_close(owner, fd)
    rfd, wfd = kernel.sys_pipe(owner, secret)
    a_rfd = kernel.share_fd(owner, rfd, actor)
    a_wfd = kernel.share_fd(owner, wfd, actor)

    bench_stat(kernel, actor, OS_ITERS)
    bench_null_io(kernel, actor, OS_ITERS)
    bench_pipe_latency(kernel, actor, OS_ITERS)

    denied = 0
    silent_drops = 0
    for _ in range(OS_ITERS):
        try:
            kernel.sys_open(actor, "/tmp/lm/secret", "r")
        except SyscallError:
            denied += 1
        # Writing *into* the secret pipe is a legal upward flow; reading
        # it back from an unlabeled task is denied — indistinguishable
        # from an empty pipe, by design.
        kernel.sys_write(actor, a_wfd, b"x")
        if kernel.sys_read(actor, a_rfd) == b"":
            silent_drops += 1

    audit = tuple(str(entry) for entry in kernel.audit.entries())
    return (
        denied,
        silent_drops,
        dict(kernel.security.denials),
        dict(kernel.security.hook_calls),
        audit,
    )


def _run_mix() -> dict:
    _reset_id_counters()
    return {"jvm": _jvm_pass(), "region": _region_pass(), "os": _os_pass()}


def _measure(config: dict[str, bool]) -> dict:
    with fastpath.configured(**config):
        fastpath.clear_caches()
        fastpath.counters.reset()
        observables = _run_mix()
        counters = fastpath.counters.snapshot()
        seconds = median_seconds(_run_mix, trials=TRIALS, warmup=1)
        fastpath.clear_caches()
    return {
        "config": dict(config),
        "observables": observables,
        "counters": counters,
        "set_ops": counters["set_ops"],
        "seconds": seconds,
    }


@pytest.fixture(scope="module")
def sweep():
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    fastpath.clear_caches()
    fastpath.counters.reset()

    on, off = results["all_on"], results["all_off"]
    payload = {
        "benchmark": "label_cache_ablation",
        "workloads": {
            "jvm": sorted(JVM_SOURCES),
            "region": {"iterations": REGION_ITERS, "config": "DYNAMIC"},
            "os": {"iterations": OS_ITERS,
                   "rows": ["stat", "null_io", "pipe_latency",
                            "denied_open", "pipe_silent_drop"]},
        },
        "trials": TRIALS,
        "configs": {
            name: {
                "flags": r["config"],
                "seconds": r["seconds"],
                "set_ops": r["set_ops"],
                "counters": r["counters"],
            }
            for name, r in results.items()
        },
        # Per-layer counter state of the final (all_on) measurement pass;
        # every BENCH_*.json carries one of these so published numbers
        # record how much checking the caches absorbed.
        "fastpath_counters": dict(on["counters"]),
        "speedup_all_on": off["seconds"] / on["seconds"],
        "set_ops_reduction_pct": 100.0 * (1 - on["set_ops"] / off["set_ops"]),
        "observables_identical": all(
            r["observables"] == off["observables"] for r in results.values()
        ),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "Label-cache ablation (Fig. 8 slice + labeled region + OS mix)",
        "",
        f"{'config':<26} {'set ops':>10} {'seconds':>10} {'vs all_off':>10}",
    ]
    for name, r in results.items():
        rel = r["seconds"] / off["seconds"]
        lines.append(
            f"{name:<26} {r['set_ops']:>10} {r['seconds']:>10.4f} {rel:>9.2f}x"
        )
    lines += [
        "",
        f"speedup (all_on vs all_off): {payload['speedup_all_on']:.2f}x",
        f"set-algebra ops avoided:     {payload['set_ops_reduction_pct']:.1f}%",
        f"observables identical:       {payload['observables_identical']}",
    ]
    publish("ablation_label_cache", "\n".join(lines))
    return results


def test_observables_identical_across_all_configs(sweep):
    """The security record — results, outputs, audit text, denial and hook
    counters, barrier statistics — must not depend on any cache."""
    reference = sweep["all_off"]["observables"]
    for name, result in sweep.items():
        assert result["observables"] == reference, (
            f"configuration {name} changed an observable outcome"
        )


def test_caches_strictly_reduce_set_algebra(sweep):
    assert sweep["all_on"]["set_ops"] < sweep["all_off"]["set_ops"]


def test_caches_strictly_reduce_wall_clock(sweep):
    assert sweep["all_on"]["seconds"] < sweep["all_off"]["seconds"]


def test_verdict_and_barrier_caches_each_save_work(sweep):
    """Each caching layer alone already avoids set algebra; no layer may
    ever *add* set-algebra work."""
    base = sweep["all_off"]["set_ops"]
    assert sweep["only_flow_verdict_cache"]["set_ops"] < base
    assert sweep["only_thread_barrier_cache"]["set_ops"] < base
    assert sweep["only_label_interning"]["set_ops"] <= base


def test_dispatch_table_changes_time_not_verdicts(sweep):
    """The dispatch table is pure interpretation machinery: identical
    set-algebra work, identical observables — only dispatch gets cheaper."""
    assert (sweep["only_dispatch_table"]["set_ops"]
            == sweep["all_off"]["set_ops"])


def test_json_report_written(sweep):
    payload = json.loads(JSON_PATH.read_text())
    assert payload["benchmark"] == "label_cache_ablation"
    assert set(payload["configs"]) == set(CONFIGS)
    assert payload["observables_identical"] is True
