"""Cluster throughput: sharded multi-kernel scaling under open-loop load.

The cluster (:mod:`repro.osim.cluster`) runs N full kernels behind the
label-aware router.  This benchmark measures the deployment-scale claims:

* **scaling** — with the multiprocess executor and ``defer_work`` on,
  each worker *sleeps off* its shards' simulated service time, so service
  overlaps across processes the way it would across machines; aggregate
  throughput at 4 workers must be at least 3x one worker's.
* **parity** — the merged cluster audit and traffic logs are
  byte-identical to a single kernel replaying the same routed trace,
  under a workload with real denials (a gateway tainted cluster-wide via
  ``CapSync`` keeps issuing writes and transmits that must be refused).
* **open-loop tail latency** — measured per-request service times replay
  through a virtual-time per-shard FIFO (:mod:`repro.bench.loadgen`) to
  give p50/p95/p99 at a fixed rate plus a saturation curve; virtual time
  makes the distribution reproducible anywhere.
* **population scale** — the trace generator draws from a 10^5 (and, in
  the dedicated arm, 10^6) user id space multiplexed onto the gateway
  principals, Zipfian over keys.
* **Flume baseline, distributed** — ``mediation="flume"`` pays the
  per-op monitor hop with no batch amortization; the deterministic
  deferred-work totals give an exact virtual slowdown.

Machine-readable results land in ``BENCH_cluster_throughput.json`` at
the repository root (full mode only).  ``CLUSTER_BENCH_SMOKE=1`` runs a
small same-process configuration for CI: every equivalence assertion
still fires, but no wall-clock scaling is asserted and the committed
snapshot is left alone.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench.loadgen import (
    UserWorld,
    build_trace,
    open_loop_arrivals,
    saturation_curve,
    simulate_queueing,
)
from repro.core import CapabilitySet, Label, LabelPair
from repro.core.tags import Tag
from repro.osim import Cluster, ShardSpec, Sqe, boot_shard, render_audit
from repro.osim.cluster import ClusterRequest
from repro.osim.rpc import CapSync, ShardRequest

from conftest import publish

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_cluster_throughput.json"

SMOKE = os.environ.get("CLUSTER_BENCH_SMOKE") == "1"

#: Wall-clock arm: nanoseconds of service per deferred work unit.  A
#: 4-op request defers ~800 units, so 2500 ns/unit makes a request ~2 ms
#: of simulated service — large against IPC overhead, small enough that
#: the shard sweep finishes in seconds.
WORK_NS = 0.0 if SMOKE else 2500.0
#: Virtual-time arms (latency, saturation, Flume) always price deferred
#: work at this rate, independent of whether the wall-clock arm slept.
SIM_NS = 2500.0

REQUESTS = 32 if SMOKE else 288
USERS = 2_000 if SMOKE else 100_000
MILLION_USERS = 10_000 if SMOKE else 1_000_000
SHARD_SWEEP = (1, 2) if SMOKE else (1, 2, 4, 8)
EXECUTOR = "same-process" if SMOKE else "multiprocess"
FLUME_REQUESTS = 12 if SMOKE else 48
PARITY_SHARDS = 2 if SMOKE else 4


def _timed_run(world, trace, shards: int, *, mediation: str = "laminar"):
    """Boot a cluster (boot is not timed), run the trace as one wave,
    return (cluster, seconds)."""
    cluster = Cluster(
        world,
        shards=shards,
        executor=EXECUTOR,
        workers=shards,
        defer_work=True,
        work_ns=WORK_NS,
        mediation=mediation,
    )
    start = time.perf_counter()
    cluster.run_trace(trace)
    seconds = time.perf_counter() - start
    return cluster, seconds


def _makespan(cluster, ns: float) -> float:
    """Virtual completion time: the busiest shard's total service."""
    per_shard: dict[int, int] = {}
    for resp in cluster.responses:
        per_shard[resp.shard_id] = per_shard.get(resp.shard_id, 0) + resp.deferred
    return max(per_shard.values()) * ns * 1e-9


def _parity_trace(world: UserWorld) -> list[ClusterRequest]:
    """Data-plane traffic plus a transmit heartbeat per gateway — once
    gw0 is tainted cluster-wide, its writes and transmits are denials and
    the rest are network-visible traffic, so audit AND traffic parity are
    both non-trivial."""
    trace = build_trace(
        world,
        REQUESTS // 2,
        users=USERS,
        seed=42,
        write_fraction=0.3,
        tainted_fraction=0.25,
    )
    for i in range(world.gateways):
        trace.append(
            ClusterRequest(
                f"gw{i}", LabelPair.EMPTY, (Sqe("transmit", f"beat{i}".encode()),)
            )
        )
    return trace


@pytest.fixture(scope="module")
def results():
    out: dict = {
        "benchmark": "cluster_throughput",
        "smoke": SMOKE,
    }
    world = UserWorld(gateways=8 if SMOKE else 16, keys=8 if SMOKE else 32)

    # -- parity arm: denials + traffic vs the single-kernel replay --------
    trace = _parity_trace(world)
    taint = LabelPair(Label.of(Tag(world.tag_values[0], "zone0")))
    triples = (("gw0", taint, CapabilitySet.EMPTY),)
    cluster = Cluster(world, shards=PARITY_SHARDS)
    acks = cluster.sync_caps(triples)
    assert all(a.applied for a in acks)
    cluster.run_trace(trace)
    merged_audit = cluster.merged_audit()
    merged_traffic = cluster.merged_traffic()

    single = boot_shard(world, ShardSpec(0, "edge"))
    single.handle(CapSync(1, triples))
    for seq, req in enumerate(trace, 1):
        single.execute(ShardRequest(seq, req.principal, tuple(req.sqes)))
    single_audit = render_audit(single.kernel.audit)
    reference = single.kernel.net.transmitted
    out["parity"] = {
        "shards": PARITY_SHARDS,
        "requests": len(trace),
        "audit_parity": merged_audit == single_audit,
        "traffic_parity": list(merged_traffic) == list(reference)
        and merged_traffic.total_messages == reference.total_messages,
        "audit_entries": len(merged_audit),
        "denials": sum("denial" in line for line in merged_audit),
        "net_messages": merged_traffic.total_messages,
    }

    # -- wall-clock scaling arm ------------------------------------------
    load = build_trace(world, REQUESTS, users=USERS, seed=9)
    total_ops = sum(len(req.sqes) for req in load)
    scaling: dict[str, dict] = {}
    latency_cluster = None
    for shards in SHARD_SWEEP:
        cluster, seconds = _timed_run(world, load, shards)
        agg = cluster.aggregate()
        scaling[str(shards)] = {
            "shards": shards,
            "workers": shards if EXECUTOR == "multiprocess" else 0,
            "seconds": seconds,
            "requests_per_sec": len(load) / seconds,
            "ops_per_sec": total_ops / seconds,
            "deferred_work": agg["deferred_work"],
            "virtual_makespan_s": _makespan(cluster, SIM_NS),
        }
        if shards == SHARD_SWEEP[-1]:
            # Reuse the widest run for latency simulation + counters.
            latency_cluster = cluster
            out["fastpath"] = agg["fastpath"]
            out["syscalls"] = agg["syscalls"]
    out["workload"] = {
        "users": USERS,
        "gateways": world.gateways,
        "keys": world.keys,
        "requests": REQUESTS,
        "ops": total_ops,
        "zipf_s": 1.1,
        "work_ns": WORK_NS,
        "sim_ns": SIM_NS,
        "executor": EXECUTOR,
    }
    out["scaling"] = scaling
    base = scaling[str(SHARD_SWEEP[0])]["requests_per_sec"]
    for shards in SHARD_SWEEP[1:]:
        out[f"scaling_ratio_{shards}x"] = (
            scaling[str(shards)]["requests_per_sec"] / base
        )

    # -- open-loop latency + saturation (virtual time) -------------------
    responses = sorted(latency_cluster.responses, key=lambda r: r.seq)
    service_s = [r.deferred * SIM_NS * 1e-9 for r in responses]
    shard_ids = [r.shard_id for r in responses]
    mean_service = sum(service_s) / len(service_s)
    capacity_rps = len(set(shard_ids)) / mean_service
    rate = 0.6 * capacity_rps
    arrivals = open_loop_arrivals(len(service_s), rate, seed=3)
    out["latency"] = simulate_queueing(arrivals, shard_ids, service_s, rate).summary()
    out["saturation"] = saturation_curve(
        shard_ids,
        service_s,
        [round(f * capacity_rps, 2) for f in (0.4, 0.6, 0.8, 0.95, 1.1)],
        seed=3,
    )

    # -- million-user arm -------------------------------------------------
    big = build_trace(world, REQUESTS, users=MILLION_USERS, seed=17)
    cluster, seconds = _timed_run(world, big, SHARD_SWEEP[-1])
    out["population"] = {
        "users": MILLION_USERS,
        "requests": len(big),
        "distinct_principals": len({req.principal for req in big}),
        "seconds": seconds,
        "requests_per_sec": len(big) / seconds,
    }

    # -- Flume baseline, distributed (virtual time, deterministic) -------
    flume_trace = build_trace(world, FLUME_REQUESTS, users=USERS, seed=5)
    arms = {}
    for mediation in ("laminar", "flume"):
        cluster = Cluster(
            world, shards=2, defer_work=True, work_ns=0.0, mediation=mediation
        )
        cluster.run_trace(flume_trace)
        arms[mediation] = cluster.aggregate()["deferred_work"]
    out["flume"] = {
        "requests": FLUME_REQUESTS,
        "laminar_deferred": arms["laminar"],
        "flume_deferred": arms["flume"],
        "virtual_slowdown": arms["flume"] / arms["laminar"],
    }
    return out


class TestClusterBench:
    def test_audit_and_traffic_parity(self, results):
        assert results["parity"]["audit_parity"] is True
        assert results["parity"]["traffic_parity"] is True
        # The parity run was adversarial, not vacuous.
        assert results["parity"]["denials"] > 0
        assert results["parity"]["net_messages"] > 0

    def test_scaling(self, results):
        assert set(results["scaling"]) == {str(s) for s in SHARD_SWEEP}
        if not SMOKE:
            # The acceptance floor: 4 multiprocessing workers deliver at
            # least 3x the aggregate throughput of 1.
            assert results["scaling_ratio_4x"] >= 3.0
        # Virtual makespan shrinks monotonically as shards are added —
        # executor-independent, so smoke checks it too.
        spans = [
            results["scaling"][str(s)]["virtual_makespan_s"] for s in SHARD_SWEEP
        ]
        assert all(b < a for a, b in zip(spans, spans[1:]))

    def test_open_loop_tail(self, results):
        lat = results["latency"]
        assert lat["requests"] == REQUESTS
        assert lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"] <= lat["max_ms"]
        # Open-loop saturation: past capacity the tail blows up.
        curve = results["saturation"]
        assert curve[-1]["p99_ms"] > curve[0]["p99_ms"]

    def test_flume_pays_the_monitor_hops(self, results):
        assert results["flume"]["virtual_slowdown"] > 2.0

    def test_publish(self, results):
        lines = [
            f"cluster throughput ({'smoke' if SMOKE else 'full'} mode, "
            f"{EXECUTOR} executor, {USERS} users)",
            "",
            f"{'shards':>6} {'workers':>7} {'req/s':>10} {'ops/s':>10} "
            f"{'virtual_makespan':>16}",
        ]
        for shards in SHARD_SWEEP:
            row = results["scaling"][str(shards)]
            lines.append(
                f"{row['shards']:>6} {row['workers']:>7} "
                f"{row['requests_per_sec']:>10.0f} {row['ops_per_sec']:>10.0f} "
                f"{row['virtual_makespan_s']:>15.4f}s"
            )
        for shards in SHARD_SWEEP[1:]:
            lines.append(
                f"scaling {shards}x vs 1: "
                f"{results[f'scaling_ratio_{shards}x']:.2f}x"
            )
        lat = results["latency"]
        lines += [
            "",
            f"open-loop @ {lat['rate_rps']:.0f} rps: "
            f"p50 {lat['p50_ms']:.2f} ms  p95 {lat['p95_ms']:.2f} ms  "
            f"p99 {lat['p99_ms']:.2f} ms",
            f"population arm: {results['population']['users']} users, "
            f"{results['population']['requests_per_sec']:.0f} req/s",
            f"flume virtual slowdown: "
            f"{results['flume']['virtual_slowdown']:.1f}x",
            f"audit parity: {results['parity']['audit_parity']}   "
            f"traffic parity: {results['parity']['traffic_parity']}   "
            f"denials: {results['parity']['denials']}",
        ]
        publish("cluster_throughput", "\n".join(lines))
        if not SMOKE:
            JSON_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
