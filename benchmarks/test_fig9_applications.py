"""Figure 9: overhead of the four retrofitted applications.

Paper totals (relative to each unmodified original): GradeSheet 7%,
Battleship 56%, Calendar 14%, FreeCS <1% — with each bar decomposed into
Start/end SR, Alloc barriers, Static barriers, and Dynamic barriers.

Reproduction strategy: each app runs its deterministic workload in four
configurations —

1. the unmodified original,
2. Laminar with barriers disabled (isolates Start/end SR + security ops),
3. Laminar with static barriers (adds alloc + static read/write barriers),
4. Laminar with dynamic barriers (adds the runtime context dispatch)

— so the deltas between consecutive configurations reproduce the paper's
stacked components.  Absolute percentages are far larger than the paper's
(Python region machinery vs. compiled barrier stubs), so assertions target
the *shape*:

* Battleship (no display) has the largest overhead of the four apps, and
  spends the most time in security regions (paper: 54%);
* FreeCS has the smallest overhead and <10% time in regions (paper: <1%);
* re-enabling Battleship's per-move board display slashes its relative
  overhead (the paper's 56% → ~1% observation).
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from conftest import publish
from repro.apps import (
    LaminarBattleship,
    LaminarCalendar,
    LaminarFreeCS,
    LaminarGradeSheet,
    UnmodifiedBattleship,
    UnmodifiedCalendar,
    UnmodifiedFreeCS,
    UnmodifiedGradeSheet,
    run_request_mix,
)
from repro.runtime import BarrierMode

pytestmark = pytest.mark.bench

TRIALS = 3

#: Paper Fig. 9 totals for the report column.
PAPER_TOTALS = {
    "GradeSheet": 7.0,
    "Battleship": 56.0,
    "Calendar": 14.0,
    "FreeCS": 1.0,
}


def _measure(build_unmodified, build_laminar, run) -> dict[str, object]:
    """Time the four configurations back-to-back per trial."""
    configs = {
        "unmodified": lambda: build_unmodified(),
        "no-barriers": lambda: build_laminar(BarrierMode.NONE),
        "static": lambda: build_laminar(BarrierMode.STATIC),
        "dynamic": lambda: build_laminar(BarrierMode.DYNAMIC),
    }
    samples: dict[str, list[float]] = {name: [] for name in configs}
    apps: dict[str, object] = {}
    for trial in range(TRIALS + 1):
        for name, build in configs.items():
            app = build()
            if hasattr(app, "vm"):
                app.vm.reset_stats()  # exclude construction-time regions
            gc.collect()
            start = time.perf_counter()
            run(app)
            elapsed = time.perf_counter() - start
            if trial > 0:
                samples[name].append(elapsed)
            apps[name] = app
    medians = {name: statistics.median(s) for name, s in samples.items()}
    laminar = apps["static"]
    region_fraction = (
        laminar.vm.stats.region_seconds / medians["static"]
        if medians["static"] > 0
        else 0.0
    )
    return {
        "times": medians,
        "region_fraction": min(region_fraction, 1.0),
        "stats": laminar.vm.barriers.stats,
    }


def _app_measurements():
    measurements = {}
    measurements["GradeSheet"] = _measure(
        lambda: UnmodifiedGradeSheet(students=20, projects=4),
        lambda mode: LaminarGradeSheet(students=20, projects=4, mode=mode),
        lambda app: app.run_query_mix(250),
    )
    measurements["Battleship"] = _measure(
        lambda: UnmodifiedBattleship(seed=5),
        lambda mode: LaminarBattleship(seed=5, mode=mode),
        lambda app: app.play(),
    )
    measurements["Calendar"] = _measure(
        lambda: _calendar_app(None),
        lambda mode: _calendar_app(mode),
        lambda app: [app.schedule_meeting("alice", "bob") for _ in range(40)],
    )
    measurements["FreeCS"] = _measure(
        lambda: UnmodifiedFreeCS(),
        lambda mode: LaminarFreeCS(mode=mode),
        lambda app: run_request_mix(app, users=300),
    )
    return measurements


def _calendar_app(mode):
    if mode is None:
        app = UnmodifiedCalendar(seed=17)
    else:
        app = LaminarCalendar(seed=17, mode=mode)
    app.add_user("alice")
    app.add_user("bob")
    return app


@pytest.fixture(scope="module")
def measurements():
    return _app_measurements()


def test_fig9_report(measurements):
    lines = [
        "Figure 9 — application overheads (vs each unmodified original)",
        "=" * 64,
        f"{'app':<12}{'total':>9}{'start/end SR':>14}{'barriers':>11}"
        f"{'dyn extra':>11}{'%time in SR':>13}{'paper':>8}",
        "-" * 75,
    ]
    for name, m in measurements.items():
        t = m["times"]
        base = t["unmodified"]
        total = (t["dynamic"] / base - 1) * 100
        sr_part = (t["no-barriers"] - base) / base * 100
        barrier_part = (t["static"] - t["no-barriers"]) / base * 100
        dyn_part = (t["dynamic"] - t["static"]) / base * 100
        lines.append(
            f"{name:<12}{total:>8.1f}%{sr_part:>13.1f}%{barrier_part:>10.1f}%"
            f"{dyn_part:>10.1f}%{m['region_fraction'] * 100:>12.1f}%"
            f"{PAPER_TOTALS[name]:>7.1f}%"
        )
    publish("fig9_applications", "\n".join(lines))


def test_fig9_battleship_has_highest_overhead(measurements):
    overheads = {
        name: m["times"]["static"] / m["times"]["unmodified"]
        for name, m in measurements.items()
    }
    assert overheads["Battleship"] == max(overheads.values()), overheads


def test_fig9_freecs_has_lowest_overhead(measurements):
    overheads = {
        name: m["times"]["static"] / m["times"]["unmodified"]
        for name, m in measurements.items()
    }
    assert overheads["FreeCS"] == min(overheads.values()), overheads


def test_fig9_region_time_fractions(measurements):
    """Table 3's '% time in SRs' column: Battleship ~54% dwarfs GradeSheet
    (6%) and FreeCS (<1%).  Calendar is excluded — our Calendar workload
    is the (fully region-bound) scheduling operation itself; see
    EXPERIMENTS.md."""
    fractions = {
        name: m["region_fraction"] for name, m in measurements.items()
    }
    assert fractions["Battleship"] > 0.30, fractions
    assert fractions["GradeSheet"] < fractions["Battleship"]
    assert fractions["FreeCS"] < 0.10
    assert fractions["FreeCS"] < fractions["Battleship"]


def test_fig9_display_restores_battleship(benchmark=None):
    """'In an experiment where we display the shot location after each
    move, the run time increases, and Laminar overhead drops to 1%.'"""

    def run_pair(render: bool) -> float:
        samples = []
        for trial in range(TRIALS + 1):
            legacy = UnmodifiedBattleship(seed=5, render=render)
            laminar = LaminarBattleship(seed=5, render=render)
            gc.collect()
            start = time.perf_counter()
            legacy.play()
            legacy_t = time.perf_counter() - start
            start = time.perf_counter()
            laminar.play()
            laminar_t = time.perf_counter() - start
            if trial > 0:
                samples.append(laminar_t / legacy_t)
        return statistics.median(samples)

    quiet = run_pair(render=False)
    displayed = run_pair(render=True)
    publish(
        "fig9_battleship_display",
        "Battleship overhead, no display vs per-move display\n"
        "====================================================\n"
        f"no display:  {(quiet - 1) * 100:7.1f}%   (paper: 56%)\n"
        f"with display:{(displayed - 1) * 100:7.1f}%   (paper: ~1%)",
    )
    assert displayed < quiet, (
        f"display should mask the overhead: quiet ×{quiet:.2f} vs "
        f"displayed ×{displayed:.2f}"
    )


def test_fig9_benchmark_battleship(benchmark):
    """pytest-benchmark hook: the hottest app under static barriers."""
    benchmark(lambda: LaminarBattleship(seed=5, grid=8, fleet=(3, 2)).play())
