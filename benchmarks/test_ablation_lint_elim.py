"""Ablation: interprocedural barrier elimination driven by lamlint's
whole-program label-flow facts.

The intraprocedural pass (see ``test_ablation_barrier_elim``) can only
see redundancy inside a single method body; inlining recovers some
cross-call redundancy by erasing the call. The interprocedural pass goes
the other way: `compute_interprocedural_facts` propagates must-checked
facts from every call site into the callee's entry, so a helper's
barriers fall *without* duplicating its body. This ablation quantifies
the extra static barriers removed on the workload suite, in all four
corners of (intra vs interproc) x (inline off vs on), and checks the
acceptance criterion: strictly more barriers removed on at least one
existing workload with behavior unchanged.
"""

from __future__ import annotations

import pytest

from conftest import publish
from repro.baselines import vanilla_kernel
from repro.bench import ALL_WORKLOADS
from repro.jit import Compiler, Interpreter, JITConfig
from repro.runtime import LaminarVM

pytestmark = pytest.mark.bench


def _compile(name: str, mode, inline: bool):
    compiler = Compiler(
        JITConfig.DYNAMIC, optimize_barriers=mode, inline=inline
    )
    return compiler.compile(ALL_WORKLOADS[name]())


def _execute(program):
    vm = LaminarVM(vanilla_kernel())
    interp = Interpreter(program, vm)
    result = interp.run("main")
    return result, list(interp.output), vm.barriers.stats.total


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    for name in ALL_WORKLOADS:
        row = {}
        for inline in (False, True):
            suffix = "_inl" if inline else ""
            intra_prog, intra_rep = _compile(name, True, inline)
            inter_prog, inter_rep = _compile(name, "interprocedural", inline)
            intra_result, intra_out, intra_execs = _execute(intra_prog)
            inter_result, inter_out, inter_execs = _execute(inter_prog)
            assert (intra_result, intra_out) == (inter_result, inter_out), (
                f"{name}: interprocedural elimination changed behavior"
            )
            row[f"static_intra{suffix}"] = intra_rep.barriers_final
            row[f"static_inter{suffix}"] = inter_rep.barriers_final
            row[f"extra{suffix}"] = inter_rep.barriers_removed_interproc
            row[f"exec_intra{suffix}"] = intra_execs
            row[f"exec_inter{suffix}"] = inter_execs
        rows[name] = row
    return rows


def test_interproc_elimination_report(sweep):
    lines = [
        "Ablation — interprocedural barrier elimination (lamlint facts)",
        "=" * 70,
        f"{'workload':<11}{'intra':>7}{'inter':>7}{'extra':>7}"
        f"{'intra+inl':>11}{'inter+inl':>11}{'extra':>7}"
        f"{'exec saved':>12}",
        "-" * 76,
    ]
    for name, row in sweep.items():
        saved = row["exec_intra"] - row["exec_inter"]
        lines.append(
            f"{name:<11}{row['static_intra']:>7}{row['static_inter']:>7}"
            f"{row['extra']:>7}{row['static_intra_inl']:>11}"
            f"{row['static_inter_inl']:>11}{row['extra_inl']:>7}"
            f"{saved:>12}"
        )
    total_extra = sum(r["extra"] for r in sweep.values())
    total_extra_inl = sum(r["extra_inl"] for r in sweep.values())
    lines.append(
        f"\nstatic barriers removed beyond the intraprocedural pass: "
        f"{total_extra} (no inlining), {total_extra_inl} (with inlining)"
    )
    publish("ablation_lint_elim", "\n".join(lines))


def test_interproc_never_adds_barriers(sweep):
    for name, row in sweep.items():
        assert row["static_inter"] <= row["static_intra"], name
        assert row["static_inter_inl"] <= row["static_intra_inl"], name
        assert row["exec_inter"] <= row["exec_intra"], name


def test_interproc_strictly_better_somewhere(sweep):
    """Acceptance criterion: on at least one existing workload, the
    interprocedural pass removes strictly more static barriers than the
    intraprocedural pass alone — with behavior unchanged (asserted for
    every workload inside the sweep fixture)."""
    winners = [
        name for name, row in sweep.items()
        if row["static_inter"] < row["static_intra"]
    ]
    assert winners, "interprocedural elimination never beat intra-only"
    # The win survives inlining on at least one workload: the helper
    # facts it uses are not merely inlining-in-disguise.
    winners_inl = [
        name for name, row in sweep.items()
        if row["static_inter_inl"] < row["static_intra_inl"]
    ]
    assert winners_inl, "interprocedural wins were subsumed by inlining"


def test_interproc_saves_runtime_checks(sweep):
    """Fewer static barriers in hot helpers means fewer executed checks."""
    total_intra = sum(r["exec_intra"] for r in sweep.values())
    total_inter = sum(r["exec_inter"] for r in sweep.values())
    assert total_inter < total_intra


def test_interproc_benchmark(benchmark):
    """pytest-benchmark hook: sortbench under interprocedural elimination."""
    program, _ = Compiler(
        JITConfig.DYNAMIC, optimize_barriers="interprocedural"
    ).compile(ALL_WORKLOADS["sortbench"]())

    def run():
        vm = LaminarVM(vanilla_kernel())
        return Interpreter(program, vm).run("main")

    benchmark(run)
