"""Table 1: the DIFC design-issue taxonomy, as executable claims.

The table contrasts PL solutions, OS solutions, and Laminar on six design
issues.  Each test demonstrates the row's claim on the running systems:

* *Securing individual application data structures* — Laminar labels
  individual heap objects; the page-granularity baseline fragments and the
  Flume baseline can't distinguish objects at all.
* *Securing files and OS resources* — Laminar's kernel module mediates
  them; a pure language-level system (modeled by a VM with no kernel
  module, i.e. a vanilla kernel) would let tainted threads write files.
* *Implicit information flow* — handled dynamically by regions (Fig. 5
  semantics), shown in the test suite; here we confirm the mechanism's
  counters exist on the running app.
* *Deployment* — Laminar coexists with unlabeled code: the same process
  freely mixes labeled and unlabeled data, and threads carry heterogeneous
  labels (impossible under address-space labels).
"""

from __future__ import annotations

import pytest

from conftest import publish
from repro.baselines import FlumeMonitor, PagedHeap, PagedThread, vanilla_kernel
from repro.core import (
    CapabilitySet,
    IFCViolation,
    Label,
    LabelPair,
    RegionViolation,
    Tag,
)
from repro.osim import Kernel, SyscallError
from repro.runtime import BarrierMode, LaminarAPI, LaminarVM

pytestmark = pytest.mark.bench


def test_row_fine_grained_data_structures():
    """Laminar: object granularity.  Page-level: fragmentation.  Flume:
    one label for everything."""
    # Laminar: two adjacent objects with different labels, no waste.
    vm = LaminarVM(Kernel())
    api = LaminarAPI(vm)
    a = api.create_and_add_capability("a")
    b = api.create_and_add_capability("b")
    with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
        obj_a = vm.alloc({"v": 1}, labels=LabelPair(Label.of(a)))
    with vm.region(secrecy=Label.of(b), caps=CapabilitySet.dual(b)):
        obj_b = vm.alloc({"v": 2}, labels=LabelPair(Label.of(b)))
    assert obj_a.labels != obj_b.labels

    # Page-level: the same two objects burn a page each.
    heap = PagedHeap(page_slots=64)
    heap.allocate(LabelPair(Label.of(Tag(901))), 1)
    heap.allocate(LabelPair(Label.of(Tag(902))), 2)
    assert heap.stats.pages == 2
    assert heap.fragmentation() > 0.9

    # Flume: the process label is all there is.
    flume = FlumeMonitor()
    proc = flume.spawn("app")
    tag = flume.create_tag(proc)
    proc.raise_label(Label.of(tag))
    assert proc.labels.secrecy == Label.of(tag)  # everything tainted at once


def test_row_os_resources_need_the_kernel_module():
    """A language-only DIFC (VM enforcement, vanilla kernel) cannot stop a
    tainted thread from writing files; Laminar's kernel module can."""
    # Language-level only: vanilla kernel under a Laminar VM.
    vm = LaminarVM(vanilla_kernel())
    api = LaminarAPI(vm)
    tag = api.create_and_add_capability("t")
    with vm.region(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)):
        api.transmit(b"secret")  # vanilla kernel: leak succeeds
    assert vm.kernel.net.transmitted == [b"secret"]

    # Full Laminar: the same flow is stopped by the LSM.
    vm2 = LaminarVM(Kernel())
    api2 = LaminarAPI(vm2)
    tag2 = api2.create_and_add_capability("t")
    with vm2.region(secrecy=Label.of(tag2), caps=CapabilitySet.dual(tag2)):
        with pytest.raises(SyscallError):
            api2.transmit(b"secret")
    assert vm2.kernel.net.transmitted == []


def test_row_heterogeneous_threads_in_one_process():
    """'All of our application case studies use threads with different
    labels' — impossible when the label is per address space."""
    vm = LaminarVM(Kernel())
    api = LaminarAPI(vm)
    a = api.create_and_add_capability("a")
    b = api.create_and_add_capability("b")
    t1 = vm.create_thread("t1", caps_subset=CapabilitySet.dual(a))
    t2 = vm.create_thread("t2", caps_subset=CapabilitySet.dual(b))
    with vm.running(t1):
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            assert t1.labels.secrecy == Label.of(a)
            # t2 concurrently holds a different label in the same process
            with vm.running(t2):
                with vm.region(secrecy=Label.of(b), caps=CapabilitySet.dual(b)):
                    assert t2.labels.secrecy == Label.of(b)
                    assert t1.labels.secrecy == Label.of(a)
    assert t1.task.pgid == t2.task.pgid  # same address space


def test_row_incremental_deployment():
    """Unlabeled code and data need no modification: a VM with enforcement
    runs plain object code identically to the vanilla VM."""
    results = []
    for mode in (BarrierMode.NONE, BarrierMode.STATIC, BarrierMode.DYNAMIC):
        vm = LaminarVM(Kernel(), mode=mode)
        obj = vm.alloc({"total": 0})
        for i in range(50):
            obj.set("total", obj.get("total") + i)
        results.append(obj.get("total"))
    assert len(set(results)) == 1


def test_row_page_label_switching_cost():
    """HiStar-style page enforcement couples label changes to mapping
    flushes; Laminar regions switch labels without touching any mapping."""
    heap = PagedHeap()
    pair1 = LabelPair(Label.of(Tag(911)))
    pair2 = LabelPair(Label.of(Tag(912)))
    obj1 = heap.allocate(pair1, 1)
    obj2 = heap.allocate(pair2, 2)
    thread = PagedThread("t")
    for _ in range(10):  # region-style alternation between two labels
        thread.set_labels(pair1, heap.stats)
        heap.read(thread, obj1)
        thread.set_labels(pair2, heap.stats)
        heap.read(thread, obj2)
    assert heap.stats.flushes == 20
    assert heap.stats.faults == 20  # every access re-faults

    vm = LaminarVM(Kernel())
    api = LaminarAPI(vm)
    a = api.create_and_add_capability("a")
    b = api.create_and_add_capability("b")
    with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
        la = vm.alloc({"v": 1})
    with vm.region(secrecy=Label.of(b), caps=CapabilitySet.dual(b)):
        lb = vm.alloc({"v": 2})
    vm.reset_stats()
    for _ in range(10):
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            la.get("v")
        with vm.region(secrecy=Label.of(b), caps=CapabilitySet.dual(b)):
            lb.get("v")
    # label checks, yes — but no mapping faults/flushes exist at all
    assert vm.barriers.stats.label_checks == 20


def test_table1_report():
    text = (
        "Table 1 — taxonomy rows demonstrated\n"
        "====================================\n"
        "fine-grained data structures : Laminar per-object; page-level "
        "fragments; Flume per-address-space\n"
        "OS resources                 : VM-only leaks to net; kernel module "
        "blocks it\n"
        "heterogeneous threads        : two threads, two labels, one "
        "address space\n"
        "incremental deployment       : unlabeled code identical under all "
        "modes\n"
        "label switching              : page mappings flush per switch; "
        "regions pay label checks only\n"
        "(see test bodies in benchmarks/test_table1_taxonomy.py)"
    )
    publish("table1_taxonomy", text)
