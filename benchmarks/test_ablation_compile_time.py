"""Ablation: compilation-time overhead (Section 6.1).

"We also measure compilation time and find that, on average, static
barriers double it, and dynamic barriers triple it ... in large part
because we instruct the compiler to inline the barriers aggressively,
which bloats the code and slows downstream optimizations."

Reproduction: compile the whole workload suite under the three configs and
compare (a) real compile seconds and (b) deterministic lowered-code size
(pseudo-machine ops).  Asserted shape: baseline < static < dynamic on
both measures, with static ≥ ~1.5x and dynamic strictly above static.

A second sweep measures cloning (the production alternative): cloning
compiles two variants per method, so its code size doubles relative to
single-variant static compilation — the tradeoff the paper describes.
"""

from __future__ import annotations

import statistics
import time

import pytest

from conftest import publish
from repro.bench import ALL_WORKLOADS
from repro.jit import Compiler, JITConfig

pytestmark = pytest.mark.bench

TRIALS = 5


def _compile_suite(config: JITConfig, clone: bool = False):
    seconds = []
    ops = 0
    for trial in range(TRIALS + 1):
        total_ops = 0
        start = time.perf_counter()
        for gen in ALL_WORKLOADS.values():
            compiler = Compiler(config, clone=clone)
            _, report = compiler.compile(gen())
            total_ops += report.machine_ops
        elapsed = time.perf_counter() - start
        if trial > 0:
            seconds.append(elapsed)
        ops = total_ops
    return statistics.median(seconds), ops


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for config in JITConfig:
        results[config.value] = _compile_suite(config)
    results["static+clone"] = _compile_suite(JITConfig.STATIC, clone=True)
    return results


def test_compile_time_report(sweep):
    base_s, base_ops = sweep["baseline"]
    lines = [
        "Ablation — compilation time (paper: static 2x, dynamic 3x)",
        "=" * 62,
        f"{'config':<14}{'seconds':>10}{'vs base':>9}{'machine ops':>13}"
        f"{'vs base':>9}",
        "-" * 55,
    ]
    for name, (secs, ops) in sweep.items():
        lines.append(
            f"{name:<14}{secs:>10.4f}{secs / base_s:>8.2f}x{ops:>13}"
            f"{ops / base_ops:>8.2f}x"
        )
    publish("ablation_compile_time", "\n".join(lines))


def test_compile_cost_ordering(sweep):
    base_s, base_ops = sweep["baseline"]
    static_s, static_ops = sweep["static"]
    dynamic_s, dynamic_ops = sweep["dynamic"]
    # deterministic measure: lowered code size
    assert base_ops < static_ops < dynamic_ops
    # the dynamic barrier body is the dispatch plus *both* variants, so
    # its expansion dominates static's (the 2x-vs-3x gap's mechanism)
    assert dynamic_ops / static_ops > 1.5
    # wall-clock: same ordering, with tolerance for timer noise on the
    # cheap baseline
    assert static_s > base_s
    assert dynamic_s > static_s * 0.95


def test_cloning_doubles_static_code(sweep):
    _, static_ops = sweep["static"]
    _, cloned_ops = sweep["static+clone"]
    ratio = cloned_ops / static_ops
    assert 1.6 < ratio < 2.4, (
        f"cloning should ~double compiled code, got {ratio:.2f}x"
    )


def test_compile_benchmark(benchmark):
    """pytest-benchmark hook: dynamic-config compilation of treebuild."""
    src = ALL_WORKLOADS["treebuild"]()
    benchmark(lambda: Compiler(JITConfig.DYNAMIC).compile(src))
