"""Figure 8: VM overhead on programs without security regions.

The paper runs DaCapo + pseudojbb under three JVM configurations and
reports normalized run time: **static barriers ≈ +6% average, dynamic
barriers ≈ +17% average** over the unmodified JVM.

Reproduction: the synthetic workload suite runs under the mini-JIT's three
configurations on the IR interpreter.  Trials are interleaved round-robin
(machine drift on a shared box otherwise dwarfs the effect) and the medians
feed a paper-shaped table.  Asserted shape:

* every configuration computes identical results (enforcement is
  behavior-preserving on barrier-clean programs);
* geometric-mean overhead: baseline < static < dynamic;
* the no-heap workload (``arith``) shows negligible overhead in both
  configurations — barriers only tax heap traffic.
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from conftest import publish
from repro.baselines import vanilla_kernel
from repro.bench import ALL_WORKLOADS, Row, geometric_mean, render_table
from repro.jit import Interpreter, JITConfig, compile_source
from repro.runtime import LaminarVM

pytestmark = pytest.mark.bench

TRIALS = 3
#: The paper's averages, for the report column.
PAPER_STATIC_PCT = 6.0
PAPER_DYNAMIC_PCT = 17.0


def _measure_all() -> dict[str, dict[JITConfig, float]]:
    programs: dict[str, dict[JITConfig, object]] = {}
    results: dict[str, dict[JITConfig, object]] = {}
    for name, gen in ALL_WORKLOADS.items():
        programs[name] = {
            cfg: compile_source(gen(), cfg)[0] for cfg in JITConfig
        }
        results[name] = {}
    samples: dict[str, dict[JITConfig, list[float]]] = {
        name: {cfg: [] for cfg in JITConfig} for name in ALL_WORKLOADS
    }
    # warmup + interleaved trials
    for trial in range(TRIALS + 1):
        for name in ALL_WORKLOADS:
            for cfg in JITConfig:
                vm = LaminarVM(vanilla_kernel())
                interp = Interpreter(programs[name][cfg], vm)
                gc.collect()
                start = time.perf_counter()
                result = interp.run("main")
                elapsed = time.perf_counter() - start
                if trial > 0:
                    samples[name][cfg].append(elapsed)
                results[name][cfg] = result
    for name in ALL_WORKLOADS:
        values = set(results[name].values())
        assert len(values) == 1, (
            f"{name}: configurations disagree on the result: {results[name]}"
        )
    return {
        name: {
            cfg: statistics.median(samples[name][cfg]) for cfg in JITConfig
        }
        for name in ALL_WORKLOADS
    }


@pytest.fixture(scope="module")
def medians():
    return _measure_all()


def test_fig8_report_and_shape(medians):
    static_rows, dynamic_rows = [], []
    for name, times in medians.items():
        base = times[JITConfig.BASELINE]
        static_rows.append(Row(name, base, times[JITConfig.STATIC]))
        dynamic_rows.append(Row(name, base, times[JITConfig.DYNAMIC]))
    static_g = geometric_mean(r.measured / r.baseline for r in static_rows)
    dynamic_g = geometric_mean(r.measured / r.baseline for r in dynamic_rows)
    text = render_table(
        "Figure 8 — JVM overhead, static barriers (paper avg: +6%)",
        static_rows, "baseline", "static",
    )
    text += "\n\n" + render_table(
        "Figure 8 — JVM overhead, dynamic barriers (paper avg: +17%)",
        dynamic_rows, "baseline", "dynamic",
    )
    text += (
        f"\n\ngeomean: static +{(static_g - 1) * 100:.1f}% "
        f"(paper +{PAPER_STATIC_PCT:.0f}%), "
        f"dynamic +{(dynamic_g - 1) * 100:.1f}% "
        f"(paper +{PAPER_DYNAMIC_PCT:.0f}%)"
    )
    publish("fig8_jvm_overhead", text)
    # Shape assertions (noise tolerance: gmeans over the whole suite).
    assert static_g > 1.0, "static barriers should cost something"
    assert dynamic_g > static_g, (
        "dynamic barriers must cost more than static (the paper's 17% vs 6%)"
    )


def test_fig8_no_heap_workload_unaffected(medians):
    times = medians["arith"]
    base = times[JITConfig.BASELINE]
    for cfg in (JITConfig.STATIC, JITConfig.DYNAMIC):
        overhead = times[cfg] / base - 1
        assert overhead < 0.10, (
            f"arith has no heap accesses; {cfg.value} overhead "
            f"{overhead:.1%} must be noise-level"
        )


def test_fig8_benchmark_representative(benchmark):
    """pytest-benchmark hook: the static-barrier listsum workload."""
    program, _ = compile_source(ALL_WORKLOADS["listsum"](), JITConfig.STATIC)

    def run():
        vm = LaminarVM(vanilla_kernel())
        return Interpreter(program, vm).run("main")

    assert benchmark(run) == 3192000
